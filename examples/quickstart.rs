//! Quickstart: tune one benchmark kernel end-to-end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full PEAK flow on the SWIM `calc3` tuning section:
//! 1. the Rating Approach Consultant analyzes the TS and picks a method,
//! 2. Iterative Elimination searches the 38-flag space with that method,
//! 3. the tuned binary is compared against `-O3` on the production input.

use peak_opt::OptConfig;
use peak_sim::MachineSpec;
use peak_workloads::{swim::SwimCalc3, Dataset, Workload};

fn main() {
    let workload = SwimCalc3::new();
    let spec = MachineSpec::sparc_ii();
    println!(
        "== PEAK quickstart: {} / {} on {} ==",
        workload.name(),
        workload.ts_name(),
        spec.kind.name()
    );

    // 1. Consult: which rating methods apply to this tuning section?
    let consultation = peak_core::consult(&workload, &spec);
    println!("\nRating Approach Consultant:");
    println!(
        "  applicable methods (least overhead first): {:?}",
        consultation.order.iter().map(|m| m.name()).collect::<Vec<_>>()
    );
    if let Some(cbr) = &consultation.cbr {
        println!(
            "  CBR: {} context variable(s), {} distinct context(s) in the profile",
            cbr.sources.len(),
            cbr.contexts.len()
        );
    }
    println!(
        "  RBR: save/restore {} region(s), {} elements{}",
        consultation.rbr.modified_regions.len(),
        consultation.rbr.modified_elems,
        if consultation.rbr.inspector { " (write inspector)" } else { "" }
    );
    let method = consultation.order[0];

    // 2. Tune: Iterative Elimination over the 38 -O3 flags, rating each
    //    flag-removal candidate with the chosen method on the train input.
    println!("\nTuning with {} on the train input…", method.name());
    let report = peak_core::tune(&workload, &spec, method, Dataset::Train);
    println!("  ratings performed: {}", report.search.ratings);
    println!("  application runs:  {}", report.search.runs);
    println!("  tuning cycles:     {}", report.search.tuning_cycles);
    println!(
        "  flags disabled:    {:?}",
        if report.search.disabled_flags.is_empty() {
            vec!["(none — -O3 already optimal here)".to_string()]
        } else {
            report.search.disabled_flags.clone()
        }
    );

    // 3. Production comparison on the ref input.
    println!("\nProduction (ref input):");
    println!("  -O3 baseline: {:>12} cycles", report.baseline_cycles);
    println!("  tuned:        {:>12} cycles", report.tuned_cycles);
    println!("  improvement:  {:+.2}%", report.improvement_pct);

    // Bonus: what one WHL rating would have cost.
    let whl = peak_core::production_time(&workload, &spec, OptConfig::o3(), Dataset::Train);
    println!(
        "\n(One full train run costs {whl} cycles — the WHL baseline pays that for every one of the {} ratings.)",
        report.search.ratings
    );
}
