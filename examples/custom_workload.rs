//! Tune a user-defined kernel: shows how to write your own tuning section
//! in the PEAK IR, wrap it as a [`Workload`], and run the full pipeline.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The kernel is a dot product with a data-dependent clamp — regular
//! enough for CBR to apply, and with a strided load the prefetch and
//! unroll flags genuinely affect.

use peak_ir::{BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value};
use peak_sim::MachineSpec;
use peak_workloads::{Dataset, PaperRow, Workload};
use rand::rngs::StdRng;
use rand::Rng;

const LEN: usize = 4096;

/// A user-defined workload: `clamped_dot(n, lo)`.
struct ClampedDot {
    program: Program,
    ts: FuncId,
}

impl ClampedDot {
    fn new() -> Self {
        let mut program = Program::new();
        let xs = program.add_mem("xs", Type::F64, LEN);
        let ys = program.add_mem("ys", Type::F64, LEN);
        let out = program.add_mem("out", Type::F64, 1);
        let mut b = FunctionBuilder::new("clamped_dot", None);
        let n = b.param("n", Type::I64);
        let lo = b.param("lo", Type::F64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::F64, MemRef::global(xs, i));
            let y = b.load(Type::F64, MemRef::global(ys, i));
            let p = b.binary(BinOp::FMul, x, y);
            // Clamp negative contributions to `lo` — a branch the
            // if-conversion flag will happily turn into a select.
            let neg = b.binary(BinOp::FLt, p, 0.0f64);
            let clamped = b.var("clamped", Type::F64);
            b.copy(clamped, p);
            b.if_then(neg, |b| b.copy(clamped, lo));
            b.binary_into(acc, BinOp::FAdd, acc, clamped);
        });
        b.store(MemRef::global(out, 0i64), peak_ir::Operand::Var(acc));
        b.ret(None);
        let ts = program.add_func(b.finish());
        ClampedDot { program, ts }
    }
}

impl Workload for ClampedDot {
    fn name(&self) -> &'static str {
        "CUSTOM"
    }
    fn ts_name(&self) -> &'static str {
        "clamped_dot"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn ts(&self) -> FuncId {
        self.ts
    }
    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 600,
            Dataset::Ref => 1800,
        }
    }
    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        for name in ["xs", "ys"] {
            let m = self.program.mem_by_name(name).unwrap();
            for i in 0..LEN as i64 {
                mem.store(m, i, Value::F64(rng.gen_range(-1.0..1.0)));
            }
        }
    }
    fn args(
        &self,
        ds: Dataset,
        _inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Refresh part of one vector between calls.
        let m = self.program.mem_by_name("xs").unwrap();
        for _ in 0..16 {
            let i = rng.gen_range(0..LEN as i64);
            mem.store(m, i, Value::F64(rng.gen_range(-1.0..1.0)));
        }
        let n = match ds {
            Dataset::Train => 2000,
            Dataset::Ref => 4000,
        };
        vec![Value::I64(n), Value::F64(0.0)]
    }
    fn other_cycles(&self, _ds: Dataset) -> u64 {
        8_000
    }
    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "CBR", invocations_paper: 0, contexts: 1 }
    }
}

fn main() {
    let w = ClampedDot::new();
    peak_ir::validate_program(w.program()).expect("well-formed IR");
    println!("== Tuning a custom kernel: {} ==", w.ts_name());
    println!("\nIR of the tuning section:\n{}", w.program().func(w.ts()));

    for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
        let consultation = peak_core::consult(&w, &spec);
        let method = consultation.order[0];
        let report = peak_core::tune(&w, &spec, method, Dataset::Train);
        println!(
            "{}: method={}, improvement {:+.2}%, flags off: {:?}",
            spec.kind.name(),
            method.name(),
            report.improvement_pct,
            report.search.disabled_flags
        );
    }
}
