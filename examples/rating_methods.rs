//! Compare all five rating approaches head-to-head on one benchmark:
//! what they decide, what they cost, and where the naive baseline goes
//! wrong.
//!
//! ```text
//! cargo run --release --example rating_methods [-- BENCH]
//! ```
//!
//! For the chosen benchmark (default MGRID), each applicable method rates
//! the same candidate set — `-O3` minus each of four interesting flags —
//! and the example prints the improvements each method reports along with
//! the invocations and cycles it burned to get them.

use peak_core::consultant::Method;
use peak_core::rating::TuningSetup;
use peak_opt::{Flag, OptConfig};
use peak_sim::MachineSpec;
use peak_workloads::Dataset;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "MGRID".into());
    let workload = peak_workloads::workload_by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let spec = MachineSpec::pentium_iv();
    println!(
        "== Rating-method comparison: {} / {} on {} ==",
        workload.name(),
        workload.ts_name(),
        spec.kind.name()
    );
    let base = OptConfig::o3();
    let flags = [
        Flag::LoopUnroll,
        Flag::PrefetchLoopArrays,
        Flag::StrictAliasing,
        Flag::IfConversion,
    ];
    let candidates: Vec<OptConfig> = flags.iter().map(|&f| base.without(f)).collect();
    println!("\ncandidates: -O3 minus each of {:?}", flags.map(|f| f.name()));
    println!(
        "\n{:<6} | {:>10} {:>10} {:>10} {:>10} | {:>8} {:>12} {:>6}",
        "method", "-unroll", "-prefetch", "-strictal", "-ifconv", "invocs", "cycles", "runs"
    );
    for method in [Method::Cbr, Method::Mbr, Method::Rbr, Method::Avg, Method::Whl] {
        let mut setup = TuningSetup::new(workload.as_ref(), spec.clone(), Dataset::Train);
        // Forced-CBR note: rate() uses any stored plan, even over budget.
        let Some(out) = peak_core::rate(&mut setup, method, base, &candidates) else {
            println!("{:<6} | (not applicable)", method.name());
            continue;
        };
        let imps: Vec<String> =
            out.improvements.iter().map(|i| format!("{:+9.2}%", (i - 1.0) * 100.0)).collect();
        println!(
            "{:<6} | {} | {:>8} {:>12} {:>6}",
            method.name(),
            imps.join(" "),
            setup.invocations_used,
            setup.tuning_cycles,
            setup.runs_used,
        );
    }
    println!("\nReading the table:");
    println!("  · methods should agree on the *sign* of each flag's effect;");
    println!("  · CBR/MBR burn far fewer cycles than WHL for the same decision;");
    println!("  · AVG is cheap but context-blind — on multi-context TSs its");
    println!("    numbers drift with whichever contexts it happened to sample.");
}
