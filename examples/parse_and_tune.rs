//! Write a kernel as *text*, parse it, and run the PEAK pipeline on it —
//! the quickest route from "I have a loop" to "which -O3 flags hurt it".
//!
//! ```text
//! cargo run --release --example parse_and_tune
//! ```

use peak_ir::{parse_program, FuncId, MemoryImage, Program, Value};
use peak_sim::MachineSpec;
use peak_workloads::{Dataset, PaperRow, Workload};
use rand::rngs::StdRng;
use rand::Rng;

/// A blocked moving-average kernel, in textual IR.
const KERNEL: &str = r#"
mem signal: f64[4096]
mem smooth: f64[4096]

fn moving_avg(v0: i64) -> f64 {
  locals v1: i64, v2: f64, v3: i64, v4: f64, v5: f64, v6: f64, v7: f64, v8: i64, v9: i64
b0: (entry)
  v2 = 0.0
  v1 = 1
  jump b1
b1:
  v3 = lt v1, v0
  br v3 ? b2 : b3
b2:
  v8 = sub v1, 1
  v9 = add v1, 1
  v4 = load signal[v8]
  v5 = load signal[v1]
  v6 = load signal[v9]
  v7 = fadd v4, v5
  v7 = fadd v7, v6
  v7 = fdiv v7, 4.0
  store smooth[v1] = v7
  v2 = fadd v2, v7
  v1 = add v1, 1
  jump b1
b3:
  ret v2
}
"#;

struct ParsedWorkload {
    program: Program,
    ts: FuncId,
}

impl Workload for ParsedWorkload {
    fn name(&self) -> &'static str {
        "PARSED"
    }
    fn ts_name(&self) -> &'static str {
        "moving_avg"
    }
    fn program(&self) -> &Program {
        &self.program
    }
    fn ts(&self) -> FuncId {
        self.ts
    }
    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 400,
            Dataset::Ref => 1200,
        }
    }
    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let signal = self.program.mem_by_name("signal").unwrap();
        for i in 0..4096 {
            mem.store(signal, i, Value::F64(rng.gen_range(-1.0..1.0)));
        }
    }
    fn args(
        &self,
        ds: Dataset,
        _inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        let signal = self.program.mem_by_name("signal").unwrap();
        for _ in 0..32 {
            let i = rng.gen_range(0..4096i64);
            mem.store(signal, i, Value::F64(rng.gen_range(-1.0..1.0)));
        }
        let n = match ds {
            Dataset::Train => 2000,
            Dataset::Ref => 4095,
        };
        vec![Value::I64(n)]
    }
    fn other_cycles(&self, _ds: Dataset) -> u64 {
        12_000
    }
    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "CBR", invocations_paper: 0, contexts: 1 }
    }
}

fn main() {
    let program = parse_program(KERNEL).expect("kernel parses");
    peak_ir::validate_program(&program).expect("kernel validates");
    let ts = program.func_by_name("moving_avg").expect("function present");
    let w = ParsedWorkload { program, ts };
    println!("parsed kernel:\n{}", w.program.func(ts));
    for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
        let consultation = peak_core::consult(&w, &spec);
        let method = consultation.order[0];
        let report = peak_core::tune(&w, &spec, method, Dataset::Train);
        println!(
            "{}: method={}, improvement {:+.2}%, flags off: {:?}",
            spec.kind.name(),
            method.name(),
            report.improvement_pct,
            report.search.disabled_flags
        );
    }
}
