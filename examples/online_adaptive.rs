//! Online, adaptive tuning demo — the paper's "future work" scenario
//! (§6): tune *while the application runs in production*, using CBR's
//! per-context winners so different contexts can use different versions.
//!
//! ```text
//! cargo run --release --example online_adaptive
//! ```
//!
//! The APSI radb4 kernel runs with three (ido, l1) shapes. The adaptive
//! driver (`peak_core::adaptive`) keeps a best + experimental version per
//! context (the ADAPT mechanism of paper Fig. 6), rates experiments in
//! vivo with CBR windows, and promotes winners — all inside one
//! continuous run. On the Pentium IV model the trip-1 shape (ido = 1)
//! genuinely prefers less optimization than the fat shapes, so the
//! winners *diverge by context*.

use peak_core::{AdaptiveTuner, RunHarness};
use peak_opt::{Flag, OptConfig};
use peak_sim::MachineSpec;
use peak_workloads::{apsi::ApsiRadb4, Dataset, Workload};

fn main() {
    let workload = ApsiRadb4::new();
    let spec = MachineSpec::pentium_iv();
    println!(
        "== Online adaptive tuning: {} / {} on {} ==",
        workload.name(),
        workload.ts_name(),
        spec.kind.name()
    );

    // Candidate pool: -O3 plus plausible variants (a production adaptive
    // system would generate these on the fly via the remote optimizer).
    let candidates = vec![
        OptConfig::o3(),
        OptConfig::o0(),
        OptConfig::o3().without(Flag::LoopUnroll),
        OptConfig::o3().without(Flag::PrefetchLoopArrays),
        OptConfig::o3().without(Flag::ScheduleInsns),
    ];
    println!("candidate pool:");
    for (i, c) in candidates.iter().enumerate() {
        println!("  #{i}: {c}");
    }

    let tuner = AdaptiveTuner::new(&workload, &spec, candidates);
    let mut h = RunHarness::new(&workload, Dataset::Ref, &spec, 7);
    let out = tuner.run(&mut h);

    println!("\nafter one continuous production run:");
    println!(
        "  {} invocations, {} ({:.1}%) spent sampling experiments",
        out.invocations,
        out.sampling_invocations,
        100.0 * out.sampling_invocations as f64 / out.invocations as f64
    );
    for (key, winner, promotions, decisions) in &out.winners {
        println!(
            "  context {:?}: best = #{winner} ({}), {promotions} promotion(s) over {decisions} decision(s)",
            key.0,
            tuner.candidates()[*winner],
        );
    }
    println!("\ntotal run cycles: {}", out.cycles);
    println!("(different contexts may settle on different winners — the per-context payoff of CBR, paper §2.2)");
}
