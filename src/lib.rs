//! # peak-repro — umbrella crate
//!
//! Reproduction of Pan & Eigenmann, *Rating Compiler Optimizations for
//! Automatic Performance Tuning* (SC 2004). This crate re-exports the
//! workspace members under one roof and hosts the runnable examples and
//! cross-crate integration tests; see the individual crates for the
//! substance:
//!
//! * [`ir`] — the IR + program analyses,
//! * [`opt`] — the 38-flag optimizing compiler,
//! * [`sim`] — the two-machine cycle simulator,
//! * [`workloads`] — the fourteen SPEC-like tuning sections,
//! * [`core`] — the PEAK tuning system (rating methods + search).

#![warn(missing_docs)]

pub use peak_core as core;
pub use peak_ir as ir;
pub use peak_opt as opt;
pub use peak_sim as sim;
pub use peak_workloads as workloads;

/// One-call demo: consult + tune + report for a named benchmark.
///
/// ```no_run
/// let report = peak_repro::tune_benchmark("SWIM", peak_sim::MachineKind::SparcII);
/// println!("{:+.1}%", report.improvement_pct);
/// ```
pub fn tune_benchmark(
    name: &str,
    machine: peak_sim::MachineKind,
) -> peak_core::TuneReport {
    let workload = peak_workloads::workload_by_name(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let spec = peak_sim::MachineSpec::of(machine);
    let consultation = peak_core::consult(workload.as_ref(), &spec);
    peak_core::tune(
        workload.as_ref(),
        &spec,
        consultation.order[0],
        peak_workloads::Dataset::Train,
    )
}
