#!/usr/bin/env bash
# Hot-path profiling recipe — the methodology behind the perf PRs
# (predecode, peak-jit, cost-model fast paths). Run it before and after
# a perf change; attach the before/after table to the PR.
#
# Usage:
#   scripts/profile.sh [workload] [tier] [seconds]
#     workload  one of the Table-1 names (default: swim)
#     tier      interp | predecoded | jit (default: jit)
#     seconds   sampling window per tool (default: 10)
#
# Tooling, in order of preference:
#   1. `perf record` (Linux) — cycle sampling with DWARF call graphs.
#      Needs perf_event_paranoid <= 2 (or CAP_PERFMON); the script
#      degrades gracefully when sampling is not permitted.
#   2. gprofng (binutils >= 2.39) — `gprofng collect app` + functions
#      report, when installed.
#   3. Always: the repo's own wall-clock A/B surfaces (hotpath bench).
#
# The invariant the profile must justify: any optimization of the cost
# model keeps observables bit-identical (DESIGN.md §16) — profile first,
# then write the fast path AND its differential gate.

set -euo pipefail
cd "$(dirname "$0")/.."

WORKLOAD="${1:-swim}"
TIER="${2:-jit}"
SECS="${3:-10}"
OUT="profile-out"
mkdir -p "$OUT"

echo "== build (release, symbols kept by profile.release debug=true) =="
cargo build --release -p peak-bench --bin hotpath

HOTPATH=target/release/hotpath
RUN=("$HOTPATH" --bench "$WORKLOAD" --tier "$TIER" --min-ms "$((SECS * 1000))")

if command -v perf >/dev/null 2>&1 && \
   perf record -o "$OUT/perf.data" -g --call-graph dwarf -F 997 \
        -- "${RUN[@]}" >/dev/null 2>&1; then
    echo "== perf: top cost centres ($WORKLOAD, $TIER tier) =="
    perf report -i "$OUT/perf.data" --stdio --percent-limit 1 \
        | head -60 | tee "$OUT/perf-report.txt"
else
    echo "perf sampling unavailable (not installed or not permitted); skipping"
fi

if command -v gprofng >/dev/null 2>&1; then
    rm -rf "$OUT/gprofng.er"
    if gprofng collect app -o "$OUT/gprofng.er" "${RUN[@]}" >/dev/null 2>&1; then
        echo "== gprofng: hot functions =="
        gprofng display text -functions "$OUT/gprofng.er" \
            | head -40 | tee "$OUT/gprofng-functions.txt"
    fi
fi

echo "== wall-clock A/B (the numbers CI actually gates on) =="
"$HOTPATH" --bench "$WORKLOAD" --min-ms 500 \
    --jit --jit-json "$OUT/BENCH_jit.json" \
    --costmodel --costmodel-json "$OUT/BENCH_costmodel.profile.json" || true

echo
echo "artifacts in $OUT/: perf-report.txt gprofng-functions.txt BENCH_jit.json"
echo "compare BENCH_costmodel.profile.json against the committed BENCH_costmodel.json"
