//! Integration tests for the paper's qualitative claims about the rating
//! methods themselves.

use peak_core::consultant::Method;
use peak_core::rating::TuningSetup;
use peak_opt::OptConfig;
use peak_sim::MachineSpec;
use peak_workloads::Dataset;

/// Paper §5.2: "AVG does not generally produce consistent ratings as the
/// other approaches do, because it ignores the context of each
/// invocation." Rating identical versions, CBR stays at 1.0 while AVG
/// drifts wildly on multi-context benchmarks.
#[test]
fn avg_is_inconsistent_on_multi_context_benchmarks() {
    let base = OptConfig::o3();
    let mut avg_worst = 0.0f64;
    let mut cbr_worst = 0.0f64;
    for name in ["WUPWISE", "MGRID"] {
        let w = peak_workloads::workload_by_name(name).unwrap();
        for (method, worst) in [(Method::Cbr, &mut cbr_worst), (Method::Avg, &mut avg_worst)] {
            let mut setup = TuningSetup::new(w.as_ref(), MachineSpec::pentium_iv(), Dataset::Train);
            let out = peak_core::rate(&mut setup, method, base, &[base, base, base])
                .expect("both methods have plans here");
            for imp in &out.improvements {
                *worst = worst.max((imp - 1.0).abs());
            }
        }
    }
    assert!(
        cbr_worst < 0.05,
        "CBR self-ratings must stay near 1: worst |bias| {cbr_worst:.4}"
    );
    assert!(
        avg_worst > 0.10,
        "AVG should visibly drift when contexts are ignored: worst |bias| {avg_worst:.4}"
    );
    assert!(avg_worst > 4.0 * cbr_worst);
}

/// Paper §3: "If the system cannot achieve enough accuracy … within some
/// number of invocations, it switches to the next applicable rating
/// method." Force the switch by giving the preferred method an impossible
/// variance target.
#[test]
fn rating_falls_back_down_the_method_order() {
    let w = peak_workloads::mgrid::MgridResid::new();
    let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
    // MGRID's order is [MBR, RBR]. Starting the fallback from a method not
    // in the order begins at the front; a preferred method later in the
    // order starts there.
    assert_eq!(setup.consult.order.first(), Some(&Method::Mbr));
    let base = OptConfig::o3();
    let cands = [base.without(peak_opt::Flag::PrefetchLoopArrays)];
    let mut switches = 0;
    let (out, used) =
        peak_core::search::rate_with_fallback(&mut setup, Method::Mbr, base, &cands, &mut switches);
    // MBR fits MGRID well, so normally no switch happens…
    assert!(out.improvements.len() == 1);
    assert!(used == Method::Mbr || switches > 0);
    // …and explicitly starting at RBR uses RBR.
    let (_, used_rbr) =
        peak_core::search::rate_with_fallback(&mut setup, Method::Rbr, base, &cands, &mut switches);
    assert_eq!(used_rbr, Method::Rbr);
}

/// The forced-CBR pathology of Figure 7: rating with CBR on MGRID (11
/// contexts) burns far more invocations than MBR for the same decision,
/// because only the most frequent context's invocations are usable.
#[test]
fn mgrid_cbr_wastes_invocations_vs_mbr() {
    let w = peak_workloads::mgrid::MgridResid::new();
    let base = OptConfig::o3();
    let cands = [base.without(peak_opt::Flag::PrefetchLoopArrays)];
    let mut cbr = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
    peak_core::rate(&mut cbr, Method::Cbr, base, &cands).expect("forced CBR plan exists");
    let mut mbr = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
    peak_core::rate(&mut mbr, Method::Mbr, base, &cands).expect("MBR applies");
    assert!(
        cbr.invocations_used > mbr.invocations_used,
        "CBR {} invocations should exceed MBR {} (context waste)",
        cbr.invocations_used,
        mbr.invocations_used
    );
}

/// RBR triples TS executions (precondition + two timed) and pays
/// save/restore, so its cost *per rated invocation* exceeds CBR's — the
/// overhead ordering behind the consultant's preference (paper §3).
/// (Total-cost comparisons can go either way: RBR's paired samples have
/// lower variance and may converge in fewer invocations.)
#[test]
fn overhead_ordering_cbr_below_rbr_per_invocation() {
    let w = peak_workloads::swim::SwimCalc3::new();
    let base = OptConfig::o3();
    let cands = [base.without(peak_opt::Flag::LoopUnroll)];
    let per_invocation = |method: Method| -> f64 {
        let mut s = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
        peak_core::rate(&mut s, method, base, &cands).unwrap();
        s.tuning_cycles as f64 / s.invocations_used.max(1) as f64
    };
    let cbr = per_invocation(Method::Cbr);
    let rbr = per_invocation(Method::Rbr);
    assert!(
        cbr * 1.5 < rbr,
        "per-invocation overhead must order CBR ≪ RBR: {cbr:.0} vs {rbr:.0}"
    );
}

/// Exhaustive search over the {strict-aliasing, register-promotion}
/// subspace agrees with Iterative Elimination on ART/P4.
#[test]
fn exhaustive_and_ie_agree_on_art() {
    use peak_opt::Flag;
    let w = peak_workloads::art::ArtMatch::new();
    let mut s1 = TuningSetup::new(&w, MachineSpec::pentium_iv(), Dataset::Train);
    let ex = peak_core::exhaustive(
        &mut s1,
        Method::Rbr,
        &[Flag::StrictAliasing, Flag::RegisterPromotion],
    );
    // Either flag (or both) off kills the promotion-induced spills.
    assert!(
        !ex.disabled_flags.is_empty(),
        "exhaustive must find the pressure fix: {:?}",
        ex.disabled_flags
    );
    let spec = MachineSpec::pentium_iv();
    let t_best = peak_core::production_time(&w, &spec, ex.best, Dataset::Ref);
    let t_o3 = peak_core::production_time(&w, &spec, OptConfig::o3(), Dataset::Ref);
    assert!(t_best * 3 < t_o3 * 2, "≥33% faster: {t_best} vs {t_o3}");
}
