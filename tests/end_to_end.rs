//! Integration tests spanning all crates: compile → simulate → rate →
//! search, on real workloads.

use peak_core::consultant::Method;
use peak_core::rating::TuningSetup;
use peak_opt::{Flag, OptConfig};
use peak_sim::MachineSpec;
use peak_workloads::{Dataset, Workload};

/// Every workload survives a full simulated run under -O3 and -O0 on both
/// machines, and the optimized run is never slower than the unoptimized
/// one.
#[test]
fn all_workloads_simulate_on_both_machines() {
    // -O3 occasionally LOSES to -O0 on a particular machine (GZIP and MCF
    // on the P4 model: if-conversion/prefetch/scheduling interactions
    // backfire on 6 registers) — that is the paper's founding observation
    // ("potential performance degradation from applying the highest
    // optimization level is not uncommon", §1), so the assertion is:
    // never absurdly worse, and strictly better in most cells.
    let mut strict_wins = 0;
    let mut cells = 0;
    let mut big_losses: Vec<String> = Vec::new();
    for w in peak_workloads::all_workloads() {
        for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
            let t3 = peak_core::production_time(w.as_ref(), &spec, OptConfig::o3(), Dataset::Train);
            let t0 = peak_core::production_time(w.as_ref(), &spec, OptConfig::o0(), Dataset::Train);
            cells += 1;
            if t3 < t0 {
                strict_wins += 1;
            } else if (t3 as f64) > t0 as f64 * 1.35 {
                big_losses.push(format!("{}/{}", w.name(), spec.kind.name()));
            }
        }
    }
    assert!(
        strict_wins * 10 >= cells * 7,
        "-O3 should win outright in most cells: {strict_wins}/{cells}"
    );
    // Big -O3 losses exist (that is the paper's founding observation and
    // ART/P4 is the designed +178% headline), but only on the Pentium IV
    // model, whose tiny register file + spill pathology is what the
    // aggressive flags trip over. The SPARC II model must stay robust.
    assert!(
        big_losses.iter().all(|c| c.ends_with("Pentium-IV")),
        "-O3 disasters must be P4-only: {big_losses:?}"
    );
    assert!(
        big_losses.iter().any(|c| c.starts_with("ART")),
        "ART/P4 is the designed pathology: {big_losses:?}"
    );
    assert!(big_losses.len() <= 4, "pathologies stay the exception: {big_losses:?}");
}

/// Optimized versions compute the same results as the reference
/// interpreter on the unoptimized program, across the invocation stream.
/// This is the cross-crate semantic-equivalence check: workload IR →
/// optimizer (all 38 flags) → simulator, against interp(original).
#[test]
fn optimized_versions_preserve_semantics_on_streams() {
    use peak_ir::{Interp, MemoryImage};
    use rand::SeedableRng;
    for w in peak_workloads::all_workloads() {
        let cv = peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3());
        peak_ir::validate_program(&cv.program).unwrap();
        let spec = MachineSpec::sparc_ii();
        let pv = peak_sim::PreparedVersion::prepare(cv, &spec);
        let amap = peak_sim::AddressMap::new(
            &w.program().mems.iter().map(|m| m.len).collect::<Vec<_>>(),
        );
        let mut state = peak_sim::MachineState::noiseless(spec);
        // Two streams with the same seed: one through the interpreter on
        // the original program, one through the simulator on -O3.
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let mut mem1 = MemoryImage::new(w.program());
        let mut mem2 = MemoryImage::new(&pv.version.program);
        w.setup(Dataset::Train, &mut mem1, &mut rng1);
        w.setup(Dataset::Train, &mut mem2, &mut rng2);
        let interp = Interp::default();
        for inv in 0..6 {
            let args1 = w.args(Dataset::Train, inv, &mut mem1, &mut rng1);
            let args2 = w.args(Dataset::Train, inv, &mut mem2, &mut rng2);
            assert_eq!(args1, args2, "{}: streams must agree", w.name());
            let r1 = interp.run(w.program(), w.ts(), &args1, &mut mem1).unwrap();
            let r2 = peak_sim::execute(
                &pv,
                &args2,
                &mut mem2,
                &amap,
                &mut state,
                &peak_sim::ExecOptions::default(),
            )
            .unwrap();
            assert_eq!(r1.ret, r2.ret, "{} inv {inv}: return values differ", w.name());
        }
        // Memory images agree afterwards.
        assert_eq!(mem1, mem2, "{}: memory diverged", w.name());
    }
}

/// The consultant's method assignment matches the paper's Table 1 for all
/// fourteen benchmarks.
#[test]
fn consultant_matches_paper_table1_methods() {
    let spec = MachineSpec::sparc_ii();
    for w in peak_workloads::all_workloads() {
        let consultation = peak_core::consult(w.as_ref(), &spec);
        let chosen = consultation.order[0].name();
        let expected = w.paper_row().method;
        assert_eq!(
            chosen,
            expected,
            "{}: paper assigns {expected}, consultant chose {chosen}",
            w.name()
        );
    }
}

/// Rating a version against itself is ≈1 for every applicable method on a
/// CBR benchmark, an MBR benchmark, and an RBR benchmark.
#[test]
fn self_ratings_are_unbiased_across_method_families() {
    let cases: Vec<(Box<dyn Workload>, Method)> = vec![
        (Box::new(peak_workloads::applu::AppluBlts::new()), Method::Cbr),
        (Box::new(peak_workloads::mgrid::MgridResid::new()), Method::Mbr),
        (Box::new(peak_workloads::twolf::TwolfNewDboxA::new()), Method::Rbr),
    ];
    for (w, method) in cases {
        let mut setup = TuningSetup::new(w.as_ref(), MachineSpec::sparc_ii(), Dataset::Train);
        let base = OptConfig::o3();
        let out = peak_core::rate(&mut setup, method, base, &[base])
            .unwrap_or_else(|| panic!("{} must rate with {}", w.name(), method.name()));
        assert!(
            (out.improvements[0] - 1.0).abs() < 0.05,
            "{} {}: self-rating {:?}",
            w.name(),
            method.name(),
            out.improvements
        );
    }
}

/// Methods agree on the *direction* of a large effect: removing
/// strict-aliasing on P4/ART is an improvement under both RBR and AVG
/// (paper: "AVG is able to pick out the optimization that significantly
/// hurts performance" — §5.2).
#[test]
fn methods_agree_on_large_effects() {
    let w = peak_workloads::art::ArtMatch::new();
    let base = OptConfig::o3();
    let cand = [base.without(Flag::StrictAliasing)];
    for method in [Method::Rbr, Method::Avg] {
        let mut setup = TuningSetup::new(&w, MachineSpec::pentium_iv(), Dataset::Train);
        let out = peak_core::rate(&mut setup, method, base, &cand).unwrap();
        assert!(
            out.improvements[0] > 1.3,
            "{}: removing strict aliasing must rate as a big win: {:?}",
            method.name(),
            out.improvements
        );
    }
}

/// Tuning-time hierarchy (Figure 7 c/d): the PEAK-suggested section-level
/// method uses far fewer cycles than WHL for the same rating job.
#[test]
fn section_rating_beats_whole_program_rating_in_cost() {
    let w = peak_workloads::swim::SwimCalc3::new();
    let base = OptConfig::o3();
    let cands: Vec<OptConfig> = [Flag::LoopUnroll, Flag::PrefetchLoopArrays, Flag::Gcse]
        .iter()
        .map(|&f| base.without(f))
        .collect();
    let spec = MachineSpec::sparc_ii();
    let mut cbr = TuningSetup::new(&w, spec.clone(), Dataset::Train);
    peak_core::rate(&mut cbr, Method::Cbr, base, &cands).unwrap();
    let mut whl = TuningSetup::new(&w, spec, Dataset::Train);
    peak_core::rate(&mut whl, Method::Whl, base, &cands).unwrap();
    let ratio = cbr.tuning_cycles as f64 / whl.tuning_cycles as f64;
    assert!(
        ratio < 0.6,
        "CBR should cost well under WHL: ratio {ratio:.3} ({} vs {})",
        cbr.tuning_cycles,
        whl.tuning_cycles
    );
}

/// Train-tuned configurations transfer to the ref input (the paper's
/// left-bar/right-bar comparison): tuning on train must not pick flags
/// that hurt on ref.
#[test]
fn train_tuning_transfers_to_ref() {
    let w = peak_workloads::art::ArtMatch::new();
    let spec = MachineSpec::pentium_iv();
    let report = peak_core::tune(&w, &spec, Method::Rbr, Dataset::Train);
    assert!(
        report.improvement_pct > 30.0,
        "ART P4 train-tuned must transfer: {:+.1}%",
        report.improvement_pct
    );
}
