//! CRAFTY `Attacked` — is a square attacked by a given side?
//!
//! Ray walks in eight directions over a board array, stopping at blockers
//! — branch-heavy, data-dependent control over loaded board state, with
//! (square, side) arguments giving 128 nominal contexts anyway. RBR per
//! Table 1 (12.3M invocations, scaled to 12 300).

use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Operand, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Board is 8×8 = 64 squares; we use a 10×12-like padded board of 120.
const BOARD: usize = 120;
/// Eight ray directions on the padded board.
const DIRS: [i64; 8] = [-11, -10, -9, -1, 1, 9, 10, 11];

/// The CRAFTY Attacked workload.
pub struct CraftyAttacked {
    program: Program,
    ts: FuncId,
}

impl Default for CraftyAttacked {
    fn default() -> Self {
        Self::new()
    }
}

impl CraftyAttacked {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        // board: 0 empty, negative = black piece kind, positive = white,
        // ±7 sentinel border.
        let board = program.add_mem("board", Type::I64, BOARD);
        let dirs = program.add_mem("dirs", Type::I64, 8);

        // attacked(sq, side) -> 1 if any slider of `side` sees `sq`.
        //   for d in 0..8:
        //     step = dirs[d]; pos = sq + step
        //     loop: piece = board[pos]
        //       if piece == 7 || piece == -7 -> border, next direction
        //       if piece == 0 { pos += step; continue }
        //       if side*piece > 0 -> attacker found (sliders only, kinds 4,5)
        //       break
        let mut b = FunctionBuilder::new("Attacked", Some(Type::I64));
        let sq = b.param("sq", Type::I64);
        let side = b.param("side", Type::I64);
        let d = b.var("d", Type::I64);
        let pos = b.var("pos", Type::I64);
        let hit = b.var("hit", Type::I64);
        let done = b.new_block();
        b.copy(hit, 0i64);
        b.for_loop(d, 0i64, 8i64, 1, |b| {
            let step = b.load(Type::I64, MemRef::global(dirs, d));
            b.binary_into(pos, BinOp::Add, sq, step);
            let next_dir = b.new_block();
            b.while_loop(
                |b| {
                    let piece = b.load(Type::I64, MemRef::global(board, pos));
                    let absb = b.binary(BinOp::Mul, piece, piece);
                    b.binary(BinOp::Lt, absb, 49i64).into() // not a border sentinel
                },
                |b| {
                    let piece = b.load(Type::I64, MemRef::global(board, pos));
                    let empty = b.binary(BinOp::Eq, piece, 0i64);
                    b.if_then_else(
                        empty,
                        |b| {
                            b.binary_into(pos, BinOp::Add, pos, step);
                        },
                        |b| {
                            let signed = b.binary(BinOp::Mul, piece, side);
                            let friendly_slider = b.binary(BinOp::Ge, signed, 4i64);
                            b.if_then(friendly_slider, |b| {
                                b.copy(hit, 1i64);
                            });
                            b.jump(next_dir); // blocker ends the ray
                            let unreachable = b.new_block();
                            b.switch_to(unreachable);
                        },
                    );
                },
            );
            b.jump(next_dir);
            // If an attacker was found, stop scanning directions.
            b.branch_out_if(hit, done);
        });
        b.jump(done);
        b.ret(Some(Operand::Var(hit)));
        let ts = program.add_func(b.finish());
        CraftyAttacked { program, ts }
    }
}

impl Workload for CraftyAttacked {
    fn name(&self) -> &'static str {
        "CRAFTY"
    }

    fn ts_name(&self) -> &'static str {
        "Attacked"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 12_300, // Table 1 scaled ÷1000
            Dataset::Ref => 37_000,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let board = self.program.mem_by_name("board").unwrap();
        let dirs = self.program.mem_by_name("dirs").unwrap();
        for (i, step) in DIRS.iter().enumerate() {
            mem.store(dirs, i as i64, Value::I64(*step));
        }
        // Borders (two outer rings of the 10×12 board).
        for i in 0..BOARD as i64 {
            let row = i / 10;
            let col = i % 10;
            let border = !(2..=9).contains(&row) || !(1..=8).contains(&col);
            let v = if border {
                7
            } else if rng.gen_bool(0.25) {
                // A piece: kind 1..=5, signed by colour.
                let kind = rng.gen_range(1..=5);
                if rng.gen_bool(0.5) {
                    kind
                } else {
                    -kind
                }
            } else {
                0
            };
            mem.store(board, i, Value::I64(v));
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Occasionally make a "move" so board state evolves.
        if inv.is_multiple_of(16) {
            let board = self.program.mem_by_name("board").unwrap();
            let row = rng.gen_range(2..=9);
            let col = rng.gen_range(1..=8);
            let v = if rng.gen_bool(0.3) { 0 } else { rng.gen_range(1..=5) };
            mem.store(board, row * 10 + col, Value::I64(v));
        }
        let row = rng.gen_range(2..=9i64);
        let col = rng.gen_range(1..=8i64);
        let side = if rng.gen_bool(0.5) { 1 } else { -1 };
        vec![Value::I64(row * 10 + col), Value::I64(side)]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // Search bookkeeping per attack query.
        160
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 12_300_000, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_inapplicable() {
        let w = CraftyAttacked::new();
        assert!(matches!(
            context_set(w.program().func(w.ts())),
            ContextAnalysis::NotApplicable(_)
        ));
    }

    #[test]
    fn returns_boolean_and_terminates() {
        let w = CraftyAttacked::new();
        let mut rng = StdRng::seed_from_u64(13);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        let mut hits = 0;
        for inv in 0..60 {
            let args = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            let r = interp
                .run(w.program(), w.ts(), &args, &mut mem)
                .unwrap()
                .ret
                .unwrap()
                .as_i64();
            assert!(r == 0 || r == 1);
            hits += r;
        }
        assert!(hits > 0, "some squares are attacked");
        assert!(hits < 60, "not every square is attacked");
    }

    #[test]
    fn empty_board_never_attacked() {
        let w = CraftyAttacked::new();
        let mut rng = StdRng::seed_from_u64(13);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        // Clear all pieces.
        let board = w.program().mem_by_name("board").unwrap();
        for i in 0..BOARD as i64 {
            if mem.load(board, i).as_i64().abs() != 7 {
                mem.store(board, i, Value::I64(0));
            }
        }
        let r = Interp::default()
            .run(w.program(), w.ts(), &[Value::I64(45), Value::I64(1)], &mut mem)
            .unwrap()
            .ret
            .unwrap();
        assert_eq!(r, Value::I64(0));
    }
}
