//! Memoized argument streams.
//!
//! A workload's invocation stream is fully deterministic per (workload,
//! dataset): `setup` and every `args` call draw from one seeded RNG and
//! write memory only through [`MemoryImage::store`]. Crucially, argument
//! generation never *reads* memory content (the fill helpers in
//! [`crate::common`] consult only static buffer lengths), so the values
//! it produces — the argument vectors and the between-invocation memory
//! writes — do not depend on what the tuning section wrote in between.
//! That makes the stream recordable: run the generator once against a
//! scratch image with the write journal armed, and the recording is
//! *exactly* what the generator would produce live in any run, no matter
//! which TS versions execute between invocations.
//!
//! Replaying is a memcpy-grade loop ([`MemoryImage::replay`]) plus an
//! args clone — no RNG, no trait dispatch, no fill-helper arithmetic.
//! `RunHarness` uses a process-wide pool of these streams (built once,
//! `Arc`-shared) to delete per-run setup and per-invocation generation
//! from the tuning hot path.
//!
//! The oracle for this fast path is the live generator itself:
//! `arg_stream_differential` in peak-core runs memoized and live
//! harnesses side by side over every workload × dataset and requires
//! identical args, memory evolution, and cycle observables.

use crate::{Dataset, Workload};
use peak_ir::{MemId, MemoryImage, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload-stream seed for the train dataset (fixed: every train run
/// sees identical input, like re-running a benchmark binary).
pub const STREAM_SEED_TRAIN: u64 = 0x7472_6169_6e00;
/// Workload-stream seed for the ref dataset.
pub const STREAM_SEED_REF: u64 = 0x7265_6600;

/// The stream RNG seed for a dataset — the single definition both the
/// live path and the recorder use.
pub fn stream_seed(ds: Dataset) -> u64 {
    match ds {
        Dataset::Train => STREAM_SEED_TRAIN,
        Dataset::Ref => STREAM_SEED_REF,
    }
}

/// One recorded invocation: the argument vector plus the memory writes
/// the generator performed before handing the arguments out.
#[derive(Debug, Clone)]
pub struct InvRecord {
    /// TS arguments for this invocation.
    pub args: Vec<Value>,
    /// Memory writes `args()` performed, in order. Replayed verbatim;
    /// order matters because later writes to the same cell win.
    pub writes: Vec<(MemId, i64, Value)>,
}

/// A fully materialized invocation stream for one (workload, dataset):
/// the post-`setup` memory image plus every invocation's record.
#[derive(Debug, Clone)]
pub struct ArgStream {
    /// Memory image right after `setup` — the start-of-run state. Runs
    /// clone this instead of re-running `setup`.
    pub init_mem: MemoryImage,
    /// Per-invocation records, in stream order.
    pub invocations: Vec<InvRecord>,
}

impl ArgStream {
    /// Record the full stream by running the live generator once with
    /// the write journal armed.
    pub fn materialize(w: &dyn Workload, ds: Dataset) -> ArgStream {
        let mut mem = MemoryImage::new(w.program());
        let mut rng = StdRng::seed_from_u64(stream_seed(ds));
        w.setup(ds, &mut mem, &mut rng);
        let init_mem = mem.clone();
        let limit = w.invocations(ds);
        let mut invocations = Vec::with_capacity(limit);
        for inv in 0..limit {
            mem.begin_journal();
            let args = w.args(ds, inv, &mut mem, &mut rng);
            let writes = mem.end_journal();
            invocations.push(InvRecord { args, writes });
        }
        ArgStream { init_mem, invocations }
    }

    /// Approximate heap footprint in bytes (pool accounting).
    pub fn approx_bytes(&self) -> usize {
        let inv: usize = self
            .invocations
            .iter()
            .map(|r| {
                r.args.len() * std::mem::size_of::<Value>()
                    + r.writes.len() * std::mem::size_of::<(MemId, i64, Value)>()
            })
            .sum();
        inv + self.init_mem.bufs.iter().map(|b| b.len() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorded stream must match a live generator run step for
    /// step: same args, same memory evolution.
    #[test]
    fn recording_matches_live_generation() {
        for w in crate::all_workloads() {
            for ds in [Dataset::Train, Dataset::Ref] {
                let stream = ArgStream::materialize(w.as_ref(), ds);
                let mut live_mem = MemoryImage::new(w.program());
                let mut rng = StdRng::seed_from_u64(stream_seed(ds));
                w.setup(ds, &mut live_mem, &mut rng);
                assert!(stream.init_mem == live_mem, "{} {ds:?} init", w.name());
                let mut replay_mem = stream.init_mem.clone();
                let n = w.invocations(ds).min(25);
                for inv in 0..n {
                    let live_args = w.args(ds, inv, &mut live_mem, &mut rng);
                    let rec = &stream.invocations[inv];
                    replay_mem.replay(&rec.writes);
                    assert_eq!(live_args, rec.args, "{} {ds:?} inv {inv}", w.name());
                    assert!(
                        replay_mem == live_mem,
                        "{} {ds:?} inv {inv} memory diverged",
                        w.name()
                    );
                }
            }
        }
    }
}
