//! WUPWISE `zgemm` — complex matrix-matrix multiply.
//!
//! Called with two shapes by the lattice-QCD solver (Table 1 reports two
//! contexts with distinct consistency). Triple loop, fully scalar control
//! → CBR with 2 contexts. (Complex numbers stored as interleaved
//! real/imag pairs.)

use crate::common::{fill_f64, ContextCycle};
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Maximum matrix dimension.
const DIM_MAX: usize = 16;
/// Element capacity (interleaved complex).
const CAP: usize = DIM_MAX * DIM_MAX * 2;

/// The WUPWISE zgemm workload.
pub struct WupwiseZgemm {
    program: Program,
    ts: FuncId,
    contexts: ContextCycle,
}

impl Default for WupwiseZgemm {
    fn default() -> Self {
        Self::new()
    }
}

impl WupwiseZgemm {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let a = program.add_mem("za", Type::F64, CAP);
        let bm = program.add_mem("zb", Type::F64, CAP);
        let c = program.add_mem("zc", Type::F64, CAP);

        // zgemm(m, n, k): C[m×n] += A[m×k] · B[k×n], complex.
        let mut b = FunctionBuilder::new("zgemm", None);
        let m = b.param("m", Type::I64);
        let n = b.param("n", Type::I64);
        let kk = b.param("k", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        let l = b.var("l", Type::I64);
        let sum_re = b.var("sum_re", Type::F64);
        let sum_im = b.var("sum_im", Type::F64);
        b.for_loop(i, 0i64, m, 1, |b| {
            b.for_loop(j, 0i64, n, 1, |b| {
                b.copy(sum_re, 0.0f64);
                b.copy(sum_im, 0.0f64);
                b.for_loop(l, 0i64, kk, 1, |b| {
                    // A[i,l] — interleaved index 2*(i*k + l)
                    let arow = b.binary(BinOp::Mul, i, kk);
                    let ai = b.binary(BinOp::Add, arow, l);
                    let ai2 = b.binary(BinOp::Mul, ai, 2i64);
                    let ai2p = b.binary(BinOp::Add, ai2, 1i64);
                    let are = b.load(Type::F64, MemRef::global(a, ai2));
                    let aim = b.load(Type::F64, MemRef::global(a, ai2p));
                    // B[l,j]
                    let brow = b.binary(BinOp::Mul, l, n);
                    let bi = b.binary(BinOp::Add, brow, j);
                    let bi2 = b.binary(BinOp::Mul, bi, 2i64);
                    let bi2p = b.binary(BinOp::Add, bi2, 1i64);
                    let bre = b.load(Type::F64, MemRef::global(bm, bi2));
                    let bim = b.load(Type::F64, MemRef::global(bm, bi2p));
                    // Complex multiply-add.
                    let rr = b.binary(BinOp::FMul, are, bre);
                    let ii = b.binary(BinOp::FMul, aim, bim);
                    let ri = b.binary(BinOp::FMul, are, bim);
                    let ir = b.binary(BinOp::FMul, aim, bre);
                    let re = b.binary(BinOp::FSub, rr, ii);
                    let im = b.binary(BinOp::FAdd, ri, ir);
                    b.binary_into(sum_re, BinOp::FAdd, sum_re, re);
                    b.binary_into(sum_im, BinOp::FAdd, sum_im, im);
                });
                // C[i,j] +=
                let crow = b.binary(BinOp::Mul, i, n);
                let ci = b.binary(BinOp::Add, crow, j);
                let ci2 = b.binary(BinOp::Mul, ci, 2i64);
                let ci2p = b.binary(BinOp::Add, ci2, 1i64);
                let cre = b.load(Type::F64, MemRef::global(c, ci2));
                let cim = b.load(Type::F64, MemRef::global(c, ci2p));
                let nre = b.binary(BinOp::FAdd, cre, sum_re);
                let nim = b.binary(BinOp::FAdd, cim, sum_im);
                b.store(MemRef::global(c, ci2), nre);
                b.store(MemRef::global(c, ci2p), nim);
            });
        });
        b.ret(None);
        let ts = program.add_func(b.finish());
        // Two contexts: 12×12×12 (dominant) and 4×4×16.
        let big = [Value::I64(12), Value::I64(12), Value::I64(12)];
        let small = [Value::I64(4), Value::I64(4), Value::I64(16)];
        let contexts = ContextCycle::new(&[(&big, 3), (&small, 1)]);
        WupwiseZgemm { program, ts, contexts }
    }
}

impl Workload for WupwiseZgemm {
    fn name(&self) -> &'static str {
        "WUPWISE"
    }

    fn ts_name(&self) -> &'static str {
        "zgemm"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 11_250, // Table 1: 22.5M, scaled ÷2000
            Dataset::Ref => 33_750,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        for name in ["za", "zb", "zc"] {
            let m = self.program.mem_by_name(name).unwrap();
            fill_f64(mem, m, rng, -1.0..1.0);
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Fresh gauge-field block between multiplies; also keep C bounded.
        let a = self.program.mem_by_name("za").unwrap();
        for _ in 0..8 {
            let i = rng.gen_range(0..CAP as i64);
            mem.store(a, i, Value::F64(rng.gen_range(-1.0..1.0)));
        }
        if inv.is_multiple_of(64) {
            let c = self.program.mem_by_name("zc").unwrap();
            for i in 0..CAP as i64 {
                mem.store(c, i, Value::F64(0.0));
            }
        }
        self.contexts.get(inv)
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // zaxpy/zcopy glue between multiplies.
        4_200
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "CBR", invocations_paper: 22_500_000, contexts: 2 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn cbr_applicable_three_scalars() {
        let w = WupwiseZgemm::new();
        match context_set(w.program().func(w.ts())) {
            ContextAnalysis::Applicable(srcs) => {
                assert_eq!(srcs.len(), 3);
            }
            ContextAnalysis::NotApplicable(why) => panic!("{why}"),
        }
    }

    #[test]
    fn two_contexts_cycle() {
        let w = WupwiseZgemm::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let mut seen = HashSet::new();
        for inv in 0..40 {
            let a = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            seen.insert((a[0].as_i64(), a[1].as_i64(), a[2].as_i64()));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn identity_multiply() {
        let w = WupwiseZgemm::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let a = w.program().mem_by_name("za").unwrap();
        let bm = w.program().mem_by_name("zb").unwrap();
        let c = w.program().mem_by_name("zc").unwrap();
        // A = 2×2 identity (complex), B arbitrary known, C zero.
        for i in 0..CAP as i64 {
            mem.store(a, i, Value::F64(0.0));
            mem.store(c, i, Value::F64(0.0));
        }
        // k=2: A[0,0]=1, A[1,1]=1 (real parts).
        mem.store(a, 0, Value::F64(1.0)); // (0*2+0)*2
        mem.store(a, 6, Value::F64(1.0)); // (1*2+1)*2
        mem.store(bm, 0, Value::F64(3.0)); // B[0,0].re
        mem.store(bm, 1, Value::F64(4.0)); // B[0,0].im
        Interp::default()
            .run(
                w.program(),
                w.ts(),
                &[Value::I64(2), Value::I64(2), Value::I64(2)],
                &mut mem,
            )
            .unwrap();
        assert_eq!(mem.load(c, 0), Value::F64(3.0));
        assert_eq!(mem.load(c, 1), Value::F64(4.0));
    }
}
