//! TWOLF `new_dbox_a` — incremental bounding-box cost of a net.
//!
//! For each terminal of a net, chase the terminal → cell → position
//! indirection and accumulate the half-perimeter change. Net sizes vary
//! and every load is a dependent pointer chase — RBR (Table 1: 3.19M
//! invocations, scaled to 3 190).

use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Operand, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of nets.
const NETS: usize = 512;
/// Terminals per net (max).
const MAX_TERMS: usize = 24;
/// Number of cells.
const CELLS: usize = 2_048;

/// The TWOLF new_dbox_a workload.
pub struct TwolfNewDboxA {
    program: Program,
    ts: FuncId,
}

impl Default for TwolfNewDboxA {
    fn default() -> Self {
        Self::new()
    }
}

impl TwolfNewDboxA {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        // net_len[n]: terminal count; net_terms[n*MAX_TERMS + t]: cell id.
        let net_len = program.add_mem("net_len", Type::I64, NETS);
        let net_terms = program.add_mem("net_terms", Type::I64, NETS * MAX_TERMS);
        let cell_x = program.add_mem("cell_x", Type::I64, CELLS);
        let cell_y = program.add_mem("cell_y", Type::I64, CELLS);

        // new_dbox_a(net) -> half-perimeter:
        //   len = net_len[net]; base = net*MAX_TERMS
        //   minx=maxx=first cell x …
        //   for t in 0..len: c = net_terms[base+t]
        //     x = cell_x[c]; y = cell_y[c]; min/max updates via if
        //   return (maxx-minx) + (maxy-miny)
        let mut b = FunctionBuilder::new("new_dbox_a", Some(Type::I64));
        let net = b.param("net", Type::I64);
        let t = b.var("t", Type::I64);
        let minx = b.var("minx", Type::I64);
        let maxx = b.var("maxx", Type::I64);
        let miny = b.var("miny", Type::I64);
        let maxy = b.var("maxy", Type::I64);
        let len = b.load(Type::I64, MemRef::global(net_len, net));
        let base = b.binary(BinOp::Mul, net, MAX_TERMS as i64);
        b.copy(minx, 1_000_000i64);
        b.copy(maxx, Operand::Const(Value::I64(-1_000_000)));
        b.copy(miny, 1_000_000i64);
        b.copy(maxy, Operand::Const(Value::I64(-1_000_000)));
        b.for_loop(t, 0i64, len, 1, |b| {
            let idx = b.binary(BinOp::Add, base, t);
            let c = b.load(Type::I64, MemRef::global(net_terms, idx));
            let x = b.load(Type::I64, MemRef::global(cell_x, c));
            let y = b.load(Type::I64, MemRef::global(cell_y, c));
            let ltx = b.binary(BinOp::Lt, x, minx);
            b.if_then(ltx, |b| b.copy(minx, x));
            let gtx = b.binary(BinOp::Gt, x, maxx);
            b.if_then(gtx, |b| b.copy(maxx, x));
            let lty = b.binary(BinOp::Lt, y, miny);
            b.if_then(lty, |b| b.copy(miny, y));
            let gty = b.binary(BinOp::Gt, y, maxy);
            b.if_then(gty, |b| b.copy(maxy, y));
        });
        let dx = b.binary(BinOp::Sub, maxx, minx);
        let dy = b.binary(BinOp::Sub, maxy, miny);
        let hp = b.binary(BinOp::Add, dx, dy);
        b.ret(Some(hp.into()));
        let ts = program.add_func(b.finish());
        TwolfNewDboxA { program, ts }
    }
}

impl Workload for TwolfNewDboxA {
    fn name(&self) -> &'static str {
        "TWOLF"
    }

    fn ts_name(&self) -> &'static str {
        "new_dbox_a"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 3_190, // Table 1 scaled ÷1000
            Dataset::Ref => 9_600,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let net_len = self.program.mem_by_name("net_len").unwrap();
        let net_terms = self.program.mem_by_name("net_terms").unwrap();
        let cell_x = self.program.mem_by_name("cell_x").unwrap();
        let cell_y = self.program.mem_by_name("cell_y").unwrap();
        for n in 0..NETS as i64 {
            // Net sizes: mostly small, occasionally large (Rent-like).
            let len = if rng.gen_bool(0.8) {
                rng.gen_range(2..6)
            } else {
                rng.gen_range(6..MAX_TERMS as i64)
            };
            mem.store(net_len, n, Value::I64(len));
            for t in 0..MAX_TERMS as i64 {
                mem.store(
                    net_terms,
                    n * MAX_TERMS as i64 + t,
                    Value::I64(rng.gen_range(0..CELLS as i64)),
                );
            }
        }
        for c in 0..CELLS as i64 {
            mem.store(cell_x, c, Value::I64(rng.gen_range(0..4000)));
            mem.store(cell_y, c, Value::I64(rng.gen_range(0..4000)));
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        _inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Simulated annealing moves a cell between cost evaluations.
        let cell_x = self.program.mem_by_name("cell_x").unwrap();
        let cell_y = self.program.mem_by_name("cell_y").unwrap();
        let c = rng.gen_range(0..CELLS as i64);
        mem.store(cell_x, c, Value::I64(rng.gen_range(0..4000)));
        mem.store(cell_y, c, Value::I64(rng.gen_range(0..4000)));
        vec![Value::I64(rng.gen_range(0..NETS as i64))]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // Move generation + acceptance logic per cost query.
        450
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 3_190_000, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_inapplicable_loop_bound_loaded() {
        let w = TwolfNewDboxA::new();
        assert!(matches!(
            context_set(w.program().func(w.ts())),
            ContextAnalysis::NotApplicable(_)
        ));
    }

    #[test]
    fn half_perimeter_nonnegative_and_bounded() {
        let w = TwolfNewDboxA::new();
        let mut rng = StdRng::seed_from_u64(8);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        for inv in 0..30 {
            let args = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            let hp = interp
                .run(w.program(), w.ts(), &args, &mut mem)
                .unwrap()
                .ret
                .unwrap()
                .as_i64();
            assert!((0..=8000).contains(&hp), "hp={hp}");
        }
    }

    #[test]
    fn known_two_terminal_net() {
        let w = TwolfNewDboxA::new();
        let mut rng = StdRng::seed_from_u64(8);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let net_len = w.program().mem_by_name("net_len").unwrap();
        let net_terms = w.program().mem_by_name("net_terms").unwrap();
        let cell_x = w.program().mem_by_name("cell_x").unwrap();
        let cell_y = w.program().mem_by_name("cell_y").unwrap();
        mem.store(net_len, 0, Value::I64(2));
        mem.store(net_terms, 0, Value::I64(10));
        mem.store(net_terms, 1, Value::I64(11));
        mem.store(cell_x, 10, Value::I64(100));
        mem.store(cell_y, 10, Value::I64(200));
        mem.store(cell_x, 11, Value::I64(150));
        mem.store(cell_y, 11, Value::I64(260));
        let hp = Interp::default()
            .run(w.program(), w.ts(), &[Value::I64(0)], &mut mem)
            .unwrap()
            .ret
            .unwrap();
        assert_eq!(hp, Value::I64(50 + 60));
    }
}
