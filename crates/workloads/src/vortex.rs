//! VORTEX `ChkGetChunk` — object-store chunk validation.
//!
//! A tiny accessor (the paper's highest invocation count: 80.4M, scaled
//! to 20 100): bounds checks and status-field tests on loaded descriptor
//! fields. Small body + loaded-data branches → RBR.

use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Operand, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of chunk descriptors.
const CHUNKS: usize = 4_096;
/// Fields per descriptor: [status, size, owner, generation].
const FIELDS: usize = 4;

/// The VORTEX ChkGetChunk workload.
pub struct VortexChkGetChunk {
    program: Program,
    ts: FuncId,
}

impl Default for VortexChkGetChunk {
    fn default() -> Self {
        Self::new()
    }
}

impl VortexChkGetChunk {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let table = program.add_mem("chunk_table", Type::I64, CHUNKS * FIELDS);

        // ChkGetChunk(id, expect_gen) -> status code
        //   if id < 0 || id >= CHUNKS: return -1
        //   status = table[id*4]; if status == 0: return -2   (free)
        //   gen = table[id*4+3];  if gen != expect_gen: return -3
        //   size = table[id*4+1]; if size <= 0: return -4
        //   return size
        let mut b = FunctionBuilder::new("ChkGetChunk", Some(Type::I64));
        let id = b.param("id", Type::I64);
        let expect_gen = b.param("expect_gen", Type::I64);
        let res = b.var("res", Type::I64);
        let done = b.new_block();
        let neg = b.binary(BinOp::Lt, id, 0i64);
        b.copy(res, Operand::Const(Value::I64(-1)));
        b.branch_out_if(neg, done);
        let too_big = b.binary(BinOp::Ge, id, CHUNKS as i64);
        b.branch_out_if(too_big, done);
        let base = b.binary(BinOp::Mul, id, FIELDS as i64);
        let status = b.load(Type::I64, MemRef::global(table, base));
        let free = b.binary(BinOp::Eq, status, 0i64);
        b.copy(res, Operand::Const(Value::I64(-2)));
        b.branch_out_if(free, done);
        let gidx = b.binary(BinOp::Add, base, 3i64);
        let gen = b.load(Type::I64, MemRef::global(table, gidx));
        let stale = b.binary(BinOp::Ne, gen, expect_gen);
        b.copy(res, Operand::Const(Value::I64(-3)));
        b.branch_out_if(stale, done);
        let sidx = b.binary(BinOp::Add, base, 1i64);
        let size = b.load(Type::I64, MemRef::global(table, sidx));
        let bad = b.binary(BinOp::Le, size, 0i64);
        b.copy(res, Operand::Const(Value::I64(-4)));
        b.branch_out_if(bad, done);
        b.copy(res, size);
        b.jump(done);
        b.ret(Some(Operand::Var(res)));
        let ts = program.add_func(b.finish());
        VortexChkGetChunk { program, ts }
    }
}

impl Workload for VortexChkGetChunk {
    fn name(&self) -> &'static str {
        "VORTEX"
    }

    fn ts_name(&self) -> &'static str {
        "ChkGetChunk"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 20_100, // Table 1 scaled (capped)
            Dataset::Ref => 60_300,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let table = self.program.mem_by_name("chunk_table").unwrap();
        for c in 0..CHUNKS as i64 {
            let status = i64::from(!rng.gen_bool(0.1)); // 10% free
            mem.store(table, c * 4, Value::I64(status));
            mem.store(table, c * 4 + 1, Value::I64(rng.gen_range(1..65536)));
            mem.store(table, c * 4 + 2, Value::I64(rng.gen_range(0..64)));
            mem.store(table, c * 4 + 3, Value::I64(rng.gen_range(0..4)));
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // The object manager occasionally reallocates a chunk.
        if inv.is_multiple_of(64) {
            let table = self.program.mem_by_name("chunk_table").unwrap();
            let c = rng.gen_range(0..CHUNKS as i64);
            mem.store(table, c * 4 + 3, Value::I64(rng.gen_range(0..4)));
        }
        // Mostly valid lookups with locality; a few wild ids.
        let id = if rng.gen_bool(0.95) {
            rng.gen_range(0..CHUNKS as i64)
        } else {
            rng.gen_range(-10..(CHUNKS as i64 + 10))
        };
        vec![Value::I64(id), Value::I64(rng.gen_range(0..4))]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // The accessor is called from everywhere; little code between
        // calls.
        90
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 80_400_000, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_inapplicable_status_checks() {
        let w = VortexChkGetChunk::new();
        assert!(matches!(
            context_set(w.program().func(w.ts())),
            ContextAnalysis::NotApplicable(_)
        ));
    }

    #[test]
    fn error_codes() {
        let w = VortexChkGetChunk::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        let run = |mem: &mut MemoryImage, id: i64, gen: i64| {
            interp
                .run(w.program(), w.ts(), &[Value::I64(id), Value::I64(gen)], mem)
                .unwrap()
                .ret
                .unwrap()
                .as_i64()
        };
        assert_eq!(run(&mut mem, -5, 0), -1, "negative id");
        assert_eq!(run(&mut mem, CHUNKS as i64 + 3, 0), -1, "id too large");
        // Make chunk 7 free.
        let table = w.program().mem_by_name("chunk_table").unwrap();
        mem.store(table, 7 * 4, Value::I64(0));
        assert_eq!(run(&mut mem, 7, 0), -2, "free chunk");
        // Valid chunk returns its size.
        mem.store(table, 9 * 4, Value::I64(1));
        mem.store(table, 9 * 4 + 1, Value::I64(777));
        mem.store(table, 9 * 4 + 3, Value::I64(2));
        assert_eq!(run(&mut mem, 9, 2), 777);
        assert_eq!(run(&mut mem, 9, 3), -3, "stale generation");
    }
}
