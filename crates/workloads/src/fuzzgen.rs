//! # Deterministic seeded IR program generator for differential fuzzing
//!
//! The shared generator behind the `passfuzz` differential-fuzz fleet and
//! the property-based equivalence tests: structured random programs
//! (straight-line int/float arithmetic, bounded counted loops, guards,
//! masked in-bounds memory accesses, pointer accesses with precise
//! points-to targets) over a fixed two-region memory layout. Every
//! generated program terminates and never traps, so the whole `-O3`
//! pipeline must preserve its semantics *exactly*.
//!
//! Determinism is the point: a program is identified by a single `u64`
//! seed (expanded with splitmix64), so a failing case is reproducible
//! from one number, shrinkable at the [`GStmt`] level, and replayable in
//! CI without storing the full IR.

use peak_ir::{
    BinOp, FuncId, FunctionBuilder, Interp, MemId, MemRef, MemoryImage, Operand, Program, Type,
    UnOp, Value, VarId,
};

/// Region length; all global indexes are masked with `& (REGION_LEN-1)`.
pub const REGION_LEN: usize = 16;
/// Integer variable pool size (vars 0/1 are the I64 params).
pub const NI: usize = 5;
/// Float variable pool size (var 0 is the F64 param).
pub const NF: usize = 3;

/// A generated statement over the fixed variable pools and regions.
///
/// Indices are always taken modulo the pool size when emitted, so any
/// byte soup decodes to a valid statement — which keeps shrinking simple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GStmt {
    /// `ivar[d] = ivar[a] op ivar[b]`
    IntOp(u8, usize, usize, usize),
    /// `fvar[d] = fvar[a] op fvar[b]`
    FloatOp(u8, usize, usize, usize),
    /// `ivar[d] = unop ivar[a]`
    IntUn(u8, usize, usize),
    /// `ivar[d] = region[r][ivar[i] & mask]`
    Load(usize, usize, usize),
    /// `region[r][ivar[i] & mask] = ivar[s]`
    Store(usize, usize, usize),
    /// `if ivar[c] > 0 { body }`
    If(usize, Vec<GStmt>),
    /// `for t in 0..k { body }` (2 ≤ k < 6; nesting capped at 2)
    Loop(u8, Vec<GStmt>),
    /// `ivar[d] = ptr[ivar[i] & 7]` (pointer into region `r` at offset `off`)
    PtrLoad(usize, u8, usize, usize),
    /// `ptr[ivar[i] & 7] = ivar[s]`
    PtrStore(usize, u8, usize, usize),
}

/// Minimal splitmix64 PRNG — the same expander the battery generator and
/// workload memory fills use, so one seed pins the whole scenario.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (n > 0). Modulo bias is irrelevant here —
    /// all ranges are tiny relative to 2^64.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn gen_leaf(rng: &mut SplitMix64) -> GStmt {
    match rng.below(7) {
        0 => GStmt::IntOp(
            rng.below(8) as u8,
            rng.below(NI as u64) as usize,
            rng.below(NI as u64) as usize,
            rng.below(NI as u64) as usize,
        ),
        1 => GStmt::FloatOp(
            rng.below(3) as u8,
            rng.below(NF as u64) as usize,
            rng.below(NF as u64) as usize,
            rng.below(NF as u64) as usize,
        ),
        2 => GStmt::IntUn(
            rng.below(2) as u8,
            rng.below(NI as u64) as usize,
            rng.below(NI as u64) as usize,
        ),
        3 => GStmt::Load(
            rng.below(2) as usize,
            rng.below(NI as u64) as usize,
            rng.below(NI as u64) as usize,
        ),
        4 => GStmt::Store(
            rng.below(2) as usize,
            rng.below(NI as u64) as usize,
            rng.below(NI as u64) as usize,
        ),
        5 => GStmt::PtrLoad(
            rng.below(2) as usize,
            rng.below(8) as u8,
            rng.below(NI as u64) as usize,
            rng.below(NI as u64) as usize,
        ),
        _ => GStmt::PtrStore(
            rng.below(2) as usize,
            rng.below(8) as u8,
            rng.below(NI as u64) as usize,
            rng.below(NI as u64) as usize,
        ),
    }
}

fn gen_stmt(rng: &mut SplitMix64, depth: u32) -> GStmt {
    if depth == 0 {
        return gen_leaf(rng);
    }
    // Weights 4 : 1 : 1 (leaf : if : loop), mirroring the proptest
    // strategy so both explore the same program distribution.
    match rng.below(6) {
        0..=3 => gen_leaf(rng),
        4 => {
            let c = rng.below(NI as u64) as usize;
            let n = 1 + rng.below(3) as usize;
            let body = (0..n).map(|_| gen_stmt(rng, depth - 1)).collect();
            GStmt::If(c, body)
        }
        _ => {
            let k = 2 + rng.below(4) as u8;
            let n = 1 + rng.below(3) as usize;
            let body = (0..n).map(|_| gen_stmt(rng, depth - 1)).collect();
            GStmt::Loop(k, body)
        }
    }
}

/// Generate the statement list for `seed`: 3..14 statements, each with
/// structural depth ≤ 2.
pub fn gen_stmts(seed: u64) -> Vec<GStmt> {
    let mut rng = SplitMix64::new(seed);
    let n = 3 + rng.below(11) as usize;
    (0..n).map(|_| gen_stmt(&mut rng, 2)).collect()
}

fn int_op(code: u8) -> BinOp {
    [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Min,
        BinOp::Max,
    ][code as usize % 8]
}

fn float_op(code: u8) -> BinOp {
    [BinOp::FAdd, BinOp::FSub, BinOp::FMul][code as usize % 3]
}

fn int_un(code: u8) -> UnOp {
    [UnOp::Neg, UnOp::Not][code as usize % 2]
}

fn emit(
    b: &mut FunctionBuilder,
    ivars: &[VarId],
    fvars: &[VarId],
    regions: &[MemId],
    stmts: &[GStmt],
    loop_depth: u32,
) {
    for s in stmts {
        match s {
            GStmt::IntOp(o, d, a, c) => {
                b.binary_into(ivars[*d % NI], int_op(*o), ivars[*a % NI], ivars[*c % NI]);
            }
            GStmt::FloatOp(o, d, a, c) => {
                b.binary_into(fvars[*d % NF], float_op(*o), fvars[*a % NF], fvars[*c % NF]);
            }
            GStmt::IntUn(o, d, a) => {
                let t = b.unary(int_un(*o), ivars[*a % NI]);
                b.copy(ivars[*d % NI], t);
            }
            GStmt::Load(r, d, i) => {
                let idx = b.binary(BinOp::And, ivars[*i % NI], (REGION_LEN as i64) - 1);
                b.load_into(ivars[*d % NI], MemRef::global(regions[*r % 2], idx));
            }
            GStmt::Store(r, s, i) => {
                let idx = b.binary(BinOp::And, ivars[*i % NI], (REGION_LEN as i64) - 1);
                b.store(MemRef::global(regions[*r % 2], idx), ivars[*s % NI]);
            }
            GStmt::If(c, body) => {
                let cond = b.binary(BinOp::Gt, ivars[*c % NI], 0i64);
                b.if_then(cond, |b| emit(b, ivars, fvars, regions, body, loop_depth));
            }
            GStmt::Loop(k, body) => {
                if loop_depth >= 2 {
                    emit(b, ivars, fvars, regions, body, loop_depth);
                    continue;
                }
                // Fresh iteration variable per loop site.
                let iv = b.temp(Type::I64);
                b.for_loop(iv, 0i64, (*k).clamp(2, 5) as i64, 1, |b| {
                    emit(b, ivars, fvars, regions, body, loop_depth + 1);
                });
            }
            GStmt::PtrLoad(r, off, d, i) => {
                // Pointer with a precise points-to target; index masked so
                // base offset (≤7) + index (≤7) stays in bounds.
                let p = b.addr_of(regions[*r % 2], (*off % 8) as i64);
                let idx = b.binary(BinOp::And, ivars[*i % NI], 7i64);
                b.load_into(ivars[*d % NI], MemRef::ptr(p, idx));
            }
            GStmt::PtrStore(r, off, s, i) => {
                let p = b.addr_of(regions[*r % 2], (*off % 8) as i64);
                let idx = b.binary(BinOp::And, ivars[*i % NI], 7i64);
                b.store(MemRef::ptr(p, idx), ivars[*s % NI]);
            }
        }
    }
}

/// Build the complete test program for a statement list: two `i64[16]`
/// regions, params `(p0: i64, p1: i64, pf: f64)`, the generated body, and
/// an epilogue that folds integer and float state into the return value
/// and stores it so memory comparison observes it too.
pub fn build_program(stmts: &[GStmt]) -> (Program, FuncId) {
    let mut prog = Program::new();
    let r0 = prog.add_mem("r0", Type::I64, REGION_LEN);
    let r1 = prog.add_mem("r1", Type::I64, REGION_LEN);
    let mut b = FunctionBuilder::new("gen", Some(Type::I64));
    let p0 = b.param("p0", Type::I64);
    let p1 = b.param("p1", Type::I64);
    let pf = b.param("pf", Type::F64);
    let mut ivars = vec![p0, p1];
    for j in 2..NI {
        let v = b.var(format!("iv{j}"), Type::I64);
        b.copy(v, (j as i64) * 3 - 7);
        ivars.push(v);
    }
    let mut fvars = vec![pf];
    for j in 1..NF {
        let v = b.var(format!("fv{j}"), Type::F64);
        b.copy(v, j as f64 * 0.5 - 0.3);
        fvars.push(v);
    }
    emit(&mut b, &ivars, &fvars, &[r0, r1], stmts, 0);
    // Fold everything observable into the return value; floats are also
    // stored so memory comparison covers them.
    let fbits = b.unary(UnOp::FToInt, fvars[1]);
    let mixed = b.binary(BinOp::Xor, ivars[2], fbits);
    let mixed2 = b.binary(BinOp::Add, mixed, ivars[3]);
    b.store(MemRef::global(r0, 0i64), mixed2);
    b.ret(Some(Operand::Var(mixed2)));
    let f = prog.add_func(b.finish());
    (prog, f)
}

/// The canonical initial memory image for generated programs:
/// `r0[i] = i*11 - 5`, `r1[i] = 100 - i`.
pub fn init_memory(prog: &Program) -> MemoryImage {
    let mut mem = MemoryImage::new(prog);
    for i in 0..REGION_LEN as i64 {
        mem.store(MemId(0), i, Value::I64(i * 11 - 5));
        mem.store(MemId(1), i, Value::I64(100 - i));
    }
    mem
}

/// Deterministic argument vector for `seed`: `p0, p1 ∈ [-40, 40)`,
/// `pf ∈ [-2.0, 2.0)` on a 1/64 grid (exactly representable).
pub fn gen_args(seed: u64) -> [Value; 3] {
    let mut rng = SplitMix64::new(seed ^ 0xA46_5EED);
    let a = rng.below(80) as i64 - 40;
    let b = rng.below(80) as i64 - 40;
    let x = (rng.below(256) as i64 - 128) as f64 / 64.0;
    [Value::I64(a), Value::I64(b), Value::F64(x)]
}

/// Run the program on the reference interpreter from the canonical
/// initial memory; generated programs never trap.
pub fn run_reference(prog: &Program, f: FuncId, args: &[Value]) -> (Option<Value>, MemoryImage) {
    let mut mem = init_memory(prog);
    let out = Interp::default()
        .run(prog, f, args, &mut mem)
        .expect("generated programs never trap");
    (out.ret, mem)
}

/// Render a program to the textual IR format (memory declarations plus
/// every function); `peak_ir::parse_program` round-trips the result.
pub fn render_program(prog: &Program) -> String {
    let mut text = String::new();
    for m in &prog.mems {
        text.push_str(&format!("mem {}: {}[{}]\n", m.name, m.elem, m.len));
    }
    for f in &prog.funcs {
        text.push_str(&format!("{f}\n"));
    }
    text
}

/// One greedy shrinking round: every candidate statement list strictly
/// smaller (by node count) than `stmts` reachable by one edit — dropping
/// a statement, hoisting a container's body in its place, or shrinking
/// inside a container. Ordered roughly most-aggressive first so greedy
/// search converges quickly.
pub fn shrink_candidates(stmts: &[GStmt]) -> Vec<Vec<GStmt>> {
    let mut out = Vec::new();
    // Drop each statement.
    for i in 0..stmts.len() {
        let mut c = stmts.to_vec();
        c.remove(i);
        out.push(c);
    }
    for (i, s) in stmts.iter().enumerate() {
        let bodies: Option<&Vec<GStmt>> = match s {
            GStmt::If(_, body) | GStmt::Loop(_, body) => Some(body),
            _ => None,
        };
        if let Some(body) = bodies {
            // Replace the container by its body (removes the guard/loop).
            let mut c = stmts.to_vec();
            c.splice(i..=i, body.iter().cloned());
            out.push(c);
            // Shrink within the body, keeping the container.
            for smaller in shrink_candidates(body) {
                let mut c = stmts.to_vec();
                c[i] = match s {
                    GStmt::If(v, _) => GStmt::If(*v, smaller),
                    GStmt::Loop(k, _) => GStmt::Loop(*k, smaller),
                    _ => unreachable!(),
                };
                out.push(c);
            }
        }
    }
    // Empty If/Loop bodies are not emittable (builder bodies must be
    // non-empty is not required, but an empty body is useless); drop them.
    out.retain(|c| {
        fn ok(s: &GStmt) -> bool {
            match s {
                GStmt::If(_, b) | GStmt::Loop(_, b) => !b.is_empty() && b.iter().all(ok),
                _ => true,
            }
        }
        c.iter().all(ok)
    });
    out
}

/// Total `GStmt` node count (containers count themselves plus their
/// bodies) — the measure greedy shrinking minimises.
pub fn node_count(stmts: &[GStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            GStmt::If(_, b) | GStmt::Loop(_, b) => 1 + node_count(b),
            _ => 1,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(gen_stmts(seed), gen_stmts(seed));
            assert_eq!(gen_args(seed), gen_args(seed));
        }
        assert_ne!(gen_stmts(1), gen_stmts(2));
    }

    #[test]
    fn generated_programs_validate_and_run() {
        for seed in 0..50u64 {
            let stmts = gen_stmts(seed);
            let (prog, f) = build_program(&stmts);
            peak_ir::validate_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let args = gen_args(seed);
            let (ret, _mem) = run_reference(&prog, f, &args);
            assert!(ret.is_some(), "seed {seed}: no return value");
        }
    }

    #[test]
    fn rendered_programs_reparse() {
        for seed in 0..10u64 {
            let (prog, _) = build_program(&gen_stmts(seed));
            let text = render_program(&prog);
            let reparsed = peak_ir::parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(text, render_program(&reparsed), "seed {seed}");
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let stmts = gen_stmts(7);
        let n = node_count(&stmts);
        for c in shrink_candidates(&stmts) {
            assert!(node_count(&c) < n);
            // Every candidate must still build into a valid program.
            let (prog, _) = build_program(&c);
            peak_ir::validate_program(&prog).unwrap();
        }
    }
}
