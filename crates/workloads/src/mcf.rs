//! MCF `primal_bea_mpp` — pricing scan of the network-simplex solver.
//!
//! Scans a block of arcs computing reduced costs from node potentials
//! (pointer-style indirection), tracking the most negative one. The
//! conditional update and the indirect potential loads make timing
//! data-dependent → RBR (Table 1: 105K invocations — the smallest
//! integer-benchmark count, kept at 2 100 here).

use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Operand, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Total arcs.
const ARCS: usize = 12_000;
/// Nodes.
const NODES: usize = 1_500;
/// Arcs examined per invocation (the "block" in block pricing).
const BLOCK: i64 = 300;

/// The MCF primal_bea_mpp workload.
pub struct McfPrimalBeaMpp {
    program: Program,
    ts: FuncId,
}

impl Default for McfPrimalBeaMpp {
    fn default() -> Self {
        Self::new()
    }
}

impl McfPrimalBeaMpp {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let cost = program.add_mem("cost", Type::I64, ARCS);
        let tail = program.add_mem("tail", Type::I64, ARCS);
        let head = program.add_mem("head", Type::I64, ARCS);
        let potential = program.add_mem("potential", Type::I64, NODES);
        let out = program.add_mem("out", Type::I64, 4);

        // primal_bea_mpp(start):
        //   best = 0; besta = -1
        //   for a in start..start+BLOCK:
        //     red = cost[a] - potential[tail[a]] + potential[head[a]]
        //     if red < best { best = red; besta = a }
        //   out[0] = best; out[1] = besta
        let mut b = FunctionBuilder::new("primal_bea_mpp", Some(Type::I64));
        let start = b.param("start", Type::I64);
        let a = b.var("a", Type::I64);
        let best = b.var("best", Type::I64);
        let besta = b.var("besta", Type::I64);
        b.copy(best, 0i64);
        b.copy(besta, Operand::Const(Value::I64(-1)));
        let end = b.binary(BinOp::Add, start, BLOCK);
        b.for_loop(a, start, end, 1, |b| {
            let c = b.load(Type::I64, MemRef::global(cost, a));
            let t = b.load(Type::I64, MemRef::global(tail, a));
            let h = b.load(Type::I64, MemRef::global(head, a));
            let pt = b.load(Type::I64, MemRef::global(potential, t));
            let ph = b.load(Type::I64, MemRef::global(potential, h));
            let d1 = b.binary(BinOp::Sub, c, pt);
            let red = b.binary(BinOp::Add, d1, ph);
            let lt = b.binary(BinOp::Lt, red, best);
            b.if_then(lt, |b| {
                b.copy(best, red);
                b.copy(besta, a);
            });
        });
        b.store(MemRef::global(out, 0i64), best);
        b.store(MemRef::global(out, 1i64), besta);
        b.ret(Some(Operand::Var(besta)));
        let ts = program.add_func(b.finish());
        McfPrimalBeaMpp { program, ts }
    }
}

impl Workload for McfPrimalBeaMpp {
    fn name(&self) -> &'static str {
        "MCF"
    }

    fn ts_name(&self) -> &'static str {
        "primal_bea_mpp"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 2_100, // Table 1: 105K, scaled ÷50
            Dataset::Ref => 6_300,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let cost = self.program.mem_by_name("cost").unwrap();
        let tail = self.program.mem_by_name("tail").unwrap();
        let head = self.program.mem_by_name("head").unwrap();
        let potential = self.program.mem_by_name("potential").unwrap();
        for i in 0..ARCS as i64 {
            mem.store(cost, i, Value::I64(rng.gen_range(0..10_000)));
            mem.store(tail, i, Value::I64(rng.gen_range(0..NODES as i64)));
            mem.store(head, i, Value::I64(rng.gen_range(0..NODES as i64)));
        }
        for i in 0..NODES as i64 {
            mem.store(potential, i, Value::I64(rng.gen_range(0..10_000)));
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Simplex pivots update a few potentials between scans.
        let potential = self.program.mem_by_name("potential").unwrap();
        for _ in 0..6 {
            let i = rng.gen_range(0..NODES as i64);
            mem.store(potential, i, Value::I64(rng.gen_range(0..10_000)));
        }
        let start = ((inv as i64) * BLOCK) % (ARCS as i64 - BLOCK);
        vec![Value::I64(start)]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // Basis update + tree manipulation between pricing scans.
        5_500
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 105_000, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_inapplicable_via_indirect_potentials() {
        let w = McfPrimalBeaMpp::new();
        assert!(matches!(
            context_set(w.program().func(w.ts())),
            ContextAnalysis::NotApplicable(_)
        ));
    }

    #[test]
    fn finds_most_negative_reduced_cost() {
        let w = McfPrimalBeaMpp::new();
        let mut rng = StdRng::seed_from_u64(31);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        // Plant a hugely negative arc inside the first block.
        let cost = w.program().mem_by_name("cost").unwrap();
        mem.store(cost, 42, Value::I64(-1_000_000));
        let r = Interp::default()
            .run(w.program(), w.ts(), &[Value::I64(0)], &mut mem)
            .unwrap()
            .ret
            .unwrap();
        assert_eq!(r, Value::I64(42));
    }

    #[test]
    fn scan_covers_distinct_blocks() {
        let w = McfPrimalBeaMpp::new();
        let mut rng = StdRng::seed_from_u64(31);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let s0 = w.args(Dataset::Train, 0, &mut mem, &mut rng)[0].as_i64();
        let s1 = w.args(Dataset::Train, 1, &mut mem, &mut rng)[0].as_i64();
        assert_ne!(s0, s1);
    }
}
