//! MESA `sample_1d_linear` — linearly interpolated 1D texture sampling.
//!
//! A tiny function called enormously often (Table 1: 193M invocations,
//! by far the most; scaled to 19 300 here). The texel index derives from
//! a continuous float coordinate, so contexts never repeat; the wrap-mode
//! branch depends on the computed index. RBR.

use crate::common::fill_f64;
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, UnOp, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Texture size (texels).
const TEX: usize = 1024;

/// The MESA sample_1d_linear workload.
pub struct MesaSample1dLinear {
    program: Program,
    ts: FuncId,
}

impl Default for MesaSample1dLinear {
    fn default() -> Self {
        Self::new()
    }
}

impl MesaSample1dLinear {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let texture = program.add_mem("texture", Type::F64, TEX);
        let out = program.add_mem("sample_out", Type::F64, 2);

        // sample_1d_linear(s) -> lerp(texture[i], texture[i+1], frac)
        //   u = s * TEX - 0.5 ; i = floor(u) ; frac = u - i
        //   wrap i into [0, TEX-2] (clamp mode, branchy)
        let mut b = FunctionBuilder::new("sample_1d_linear", Some(Type::F64));
        let s = b.param("s", Type::F64);
        let i = b.var("i", Type::I64);
        let scaled = b.binary(BinOp::FMul, s, TEX as f64);
        let u = b.binary(BinOp::FSub, scaled, 0.5f64);
        let i0 = b.unary(UnOp::FToInt, u);
        b.copy(i, i0);
        // Clamp: if i < 0 { i = 0 } ; if i > TEX-2 { i = TEX-2 }
        let neg = b.binary(BinOp::Lt, i, 0i64);
        b.if_then(neg, |b| b.copy(i, 0i64));
        let hi = b.binary(BinOp::Gt, i, (TEX - 2) as i64);
        b.if_then(hi, |b| b.copy(i, (TEX - 2) as i64));
        let fi = b.unary(UnOp::IntToF, i);
        let frac = b.var("frac", Type::F64);
        b.binary_into(frac, BinOp::FSub, u, fi);
        // Clamp the fraction too (out-of-range coordinates, clamp mode).
        let fneg = b.binary(BinOp::FLt, frac, 0.0f64);
        b.if_then(fneg, |b| b.copy(frac, 0.0f64));
        let fhi = b.binary(BinOp::FGt, frac, 1.0f64);
        b.if_then(fhi, |b| b.copy(frac, 1.0f64));
        let ip1 = b.binary(BinOp::Add, i, 1i64);
        let t0 = b.load(Type::F64, MemRef::global(texture, i));
        let t1 = b.load(Type::F64, MemRef::global(texture, ip1));
        let d = b.binary(BinOp::FSub, t1, t0);
        let lerp = b.binary(BinOp::FMul, frac, d);
        let result = b.binary(BinOp::FAdd, t0, lerp);
        b.store(MemRef::global(out, 0i64), peak_ir::Operand::Var(result));
        b.ret(Some(peak_ir::Operand::Var(result)));
        let ts = program.add_func(b.finish());
        MesaSample1dLinear { program, ts }
    }
}

impl Workload for MesaSample1dLinear {
    fn name(&self) -> &'static str {
        "MESA"
    }

    fn ts_name(&self) -> &'static str {
        "sample_1d_linear"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 19_300, // Table 1: 193M, scaled (capped)
            Dataset::Ref => 58_000,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let texture = self.program.mem_by_name("texture").unwrap();
        fill_f64(mem, texture, rng, 0.0..1.0);
    }

    fn args(
        &self,
        _ds: Dataset,
        inv: usize,
        _mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Rasterization walks texture coordinates with spans of locality
        // plus occasional out-of-range values that exercise the clamps.
        let base = (inv % 97) as f64 / 97.0;
        let s = if rng.gen_bool(0.9) {
            base + rng.gen_range(-0.01..0.01)
        } else {
            rng.gen_range(-0.3..1.3)
        };
        vec![Value::F64(s)]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // Span setup and fragment processing per texel fetch.
        70
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 193_000_000, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::Interp;
    use rand::SeedableRng;

    #[test]
    fn interpolation_within_texel_range() {
        let w = MesaSample1dLinear::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        for inv in 0..50 {
            let args = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            let r = interp
                .run(w.program(), w.ts(), &args, &mut mem)
                .unwrap()
                .ret
                .unwrap()
                .as_f64();
            assert!((-0.5..1.5).contains(&r), "interpolant near texel range: {r}");
        }
    }

    #[test]
    fn clamping_handles_out_of_range_coords() {
        let w = MesaSample1dLinear::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        for s in [-2.0f64, -0.1, 0.0, 1.0, 1.7] {
            interp
                .run(w.program(), w.ts(), &[Value::F64(s)], &mut mem)
                .unwrap_or_else(|e| panic!("s={s}: {e}"));
        }
    }

    #[test]
    fn known_texels_interpolate_linearly() {
        let w = MesaSample1dLinear::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let texture = w.program().mem_by_name("texture").unwrap();
        mem.store(texture, 99, Value::F64(0.0));
        mem.store(texture, 100, Value::F64(1.0));
        // s such that u = 99.5 → i=99, frac=0.5 → result 0.5.
        let s = 100.0 / TEX as f64;
        let r = Interp::default()
            .run(w.program(), w.ts(), &[Value::F64(s)], &mut mem)
            .unwrap()
            .ret
            .unwrap()
            .as_f64();
        assert!((r - 0.5).abs() < 1e-9, "r={r}");
    }
}
