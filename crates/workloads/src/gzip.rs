//! GZIP `longest_match` — find the longest match in the LZ77 window.
//!
//! Walks the hash chain, comparing window substrings; both the chain walk
//! and each comparison exit on loaded data. RBR per Table 1 (82.6M
//! invocations, the scaled stream capped at 20 600 per run).

use crate::common::fill_runs;
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Operand, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// LZ77 window size.
const WINDOW: usize = 8192;
/// Chain table size.
const CHAIN: usize = 8192;
/// Maximum match length.
const MAX_MATCH: i64 = 32;
/// Maximum chain steps.
const MAX_CHAIN: i64 = 16;

/// The GZIP longest_match workload.
pub struct GzipLongestMatch {
    program: Program,
    ts: FuncId,
}

impl Default for GzipLongestMatch {
    fn default() -> Self {
        Self::new()
    }
}

impl GzipLongestMatch {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let window = program.add_mem("window", Type::I64, WINDOW + MAX_MATCH as usize);
        let chain = program.add_mem("chain", Type::I64, CHAIN);

        // longest_match(strstart, cur_match) -> best_len
        //   best = 2; steps = 0
        //   while cur_match > 0 && steps < MAX_CHAIN:
        //     len = compare window[strstart..] with window[cur_match..]
        //     if len > best { best = len }
        //     cur_match = chain[cur_match]; steps += 1
        //   return best
        let mut b = FunctionBuilder::new("longest_match", Some(Type::I64));
        let strstart = b.param("strstart", Type::I64);
        let cur0 = b.param("cur_match", Type::I64);
        let cur = b.var("cur", Type::I64);
        let best = b.var("best", Type::I64);
        let steps = b.var("steps", Type::I64);
        let len = b.var("len", Type::I64);
        let k = b.var("k", Type::I64);
        b.copy(cur, cur0);
        b.copy(best, 2i64);
        b.copy(steps, 0i64);
        b.while_loop(
            |b| {
                let pos_ok = b.binary(BinOp::Gt, cur, 0i64);
                let step_ok = b.binary(BinOp::Lt, steps, MAX_CHAIN);
                b.binary(BinOp::And, pos_ok, step_ok).into()
            },
            |b| {
                // Inner comparison loop.
                b.copy(len, 0i64);
                let cmp_done = b.new_block();
                b.for_loop(k, 0i64, MAX_MATCH, 1, |b| {
                    let a1 = b.binary(BinOp::Add, strstart, k);
                    let a2 = b.binary(BinOp::Add, cur, k);
                    let c1 = b.load(Type::I64, MemRef::global(window, a1));
                    let c2 = b.load(Type::I64, MemRef::global(window, a2));
                    let ne = b.binary(BinOp::Ne, c1, c2);
                    b.branch_out_if(ne, cmp_done);
                    b.binary_into(len, BinOp::Add, len, 1i64);
                });
                b.jump(cmp_done);
                let better = b.binary(BinOp::Gt, len, best);
                b.if_then(better, |b| b.copy(best, len));
                let nxt = b.load(Type::I64, MemRef::global(chain, cur));
                b.copy(cur, nxt);
                b.binary_into(steps, BinOp::Add, steps, 1i64);
            },
        );
        b.ret(Some(Operand::Var(best)));
        let ts = program.add_func(b.finish());
        GzipLongestMatch { program, ts }
    }
}

impl Workload for GzipLongestMatch {
    fn name(&self) -> &'static str {
        "GZIP"
    }

    fn ts_name(&self) -> &'static str {
        "longest_match"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 20_600, // Table 1 scaled (capped)
            Dataset::Ref => 62_000,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let window = self.program.mem_by_name("window").unwrap();
        fill_runs(mem, window, rng, 20);
        // Hash chains: each position points to an earlier one (or 0).
        let chain = self.program.mem_by_name("chain").unwrap();
        for i in 0..CHAIN as i64 {
            let prev = if i < 8 || rng.gen_bool(0.2) {
                0
            } else {
                i - rng.gen_range(1..(i.min(512)))
            };
            mem.store(chain, i, Value::I64(prev));
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        _inv: usize,
        _mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        let strstart = rng.gen_range(256..WINDOW as i64 - 1);
        let cur = rng.gen_range(1..strstart);
        vec![Value::I64(strstart), Value::I64(cur)]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // deflate() hash insertion + literal emission per match query.
        190
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 82_600_000, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_inapplicable() {
        let w = GzipLongestMatch::new();
        assert!(matches!(
            context_set(w.program().func(w.ts())),
            ContextAnalysis::NotApplicable(_)
        ));
    }

    #[test]
    fn match_length_bounded_and_sane() {
        let w = GzipLongestMatch::new();
        let mut rng = StdRng::seed_from_u64(21);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        for _ in 0..40 {
            let args = w.args(Dataset::Train, 0, &mut mem, &mut rng);
            let best = interp
                .run(w.program(), w.ts(), &args, &mut mem)
                .unwrap()
                .ret
                .unwrap()
                .as_i64();
            assert!((2..=MAX_MATCH).contains(&best), "best={best}");
        }
    }

    #[test]
    fn identical_suffix_gives_max_match() {
        let w = GzipLongestMatch::new();
        let mut rng = StdRng::seed_from_u64(21);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let window = w.program().mem_by_name("window").unwrap();
        // Force two identical substrings.
        for k in 0..MAX_MATCH {
            let v = mem.load(window, 100 + k);
            mem.store(window, 5000 + k, v);
        }
        let best = Interp::default()
            .run(
                w.program(),
                w.ts(),
                &[Value::I64(5000), Value::I64(100)],
                &mut mem,
            )
            .unwrap()
            .ret
            .unwrap()
            .as_i64();
        assert_eq!(best, MAX_MATCH);
    }
}
