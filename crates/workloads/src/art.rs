//! ART `match` — adaptive-resonance F1-layer match scan.
//!
//! The kernel accumulates per-category activations into a set of global
//! f64 scalars while scanning permuted weights (gather) and writing a
//! "bus" vector through an opaque pointer parameter. This reproduces the
//! paper's headline §5.2 anecdote:
//!
//! * the control flow depends on loaded data → CBR inapplicable; MBR's
//!   linear model fits poorly (gather-dependent per-iteration time) → the
//!   system lands on **RBR** (Table 1);
//! * the opaque f64 pointer store can only be disambiguated from the
//!   accumulators under `strict-aliasing`, which then register-promotes
//!   ~10 f64 accumulators: free on SPARC II (32 FP regs), disastrous on
//!   Pentium IV (8 FP regs → spill/fill storms), so tuning discovers that
//!   turning **off** strict aliasing is a huge win on P4 only.

use crate::common::{fill_f64, fill_permutation};
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// F1 layer size, train input.
const NUMF1_TRAIN: i64 = 600;
/// F1 layer size, ref input.
const NUMF1_REF: i64 = 1400;
/// Array capacity.
const F1_MAX: usize = 1400;
/// Number of category accumulators (g[0..CATS]); chosen to exceed the P4
/// FP register budget once promoted.
const CATS: usize = 12;

/// The ART match workload.
pub struct ArtMatch {
    program: Program,
    ts: FuncId,
}

impl Default for ArtMatch {
    fn default() -> Self {
        Self::new()
    }
}

impl ArtMatch {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let weights = program.add_mem("weights", Type::F64, F1_MAX);
        let input = program.add_mem("input", Type::F64, F1_MAX);
        let perm = program.add_mem("perm", Type::I64, F1_MAX);
        let _bus = program.add_mem("bus", Type::I64, F1_MAX);
        let acc = program.add_mem("acc", Type::F64, CATS + 2);

        // match(numf1, busp, rho):
        //   for j in 0..numf1:
        //     k = perm[j]                    (gather index)
        //     w = weights[k]; x = input[j]
        //     m = w * x
        //     acc[j % CATS_pattern]: accumulate into the CATS globals via
        //       an unrolled if-ladder on (j & (CATS-1))? — instead, all
        //       CATS accumulators are touched with distinct multipliers
        //       (like ART's per-field Y updates), keeping addresses
        //       loop-invariant (promotable).
        //     busp[j] = m                    (⊤-pointer f64 store)
        //     if m > acc[CATS] { acc[CATS] = m }   (winner, data-dependent)
        let mut b = FunctionBuilder::new("match", None);
        let numf1 = b.param("numf1", Type::I64);
        let busp = b.param("busp", Type::Ptr);
        let rho = b.param("rho", Type::F64);
        let j = b.var("j", Type::I64);
        b.for_loop(j, 0i64, numf1, 1, |b| {
            let k = b.load(Type::I64, MemRef::global(perm, j));
            let w = b.load(Type::F64, MemRef::global(weights, k));
            let x = b.load(Type::F64, MemRef::global(input, j));
            let m = b.binary(BinOp::FMul, w, x);
            // Per-category activations: acc[c] += m * coeff_c. Addresses
            // are constant → register-promotion candidates.
            for c in 0..CATS {
                let coeff = 0.05 + c as f64 * 0.09;
                let term = b.binary(BinOp::FMul, m, coeff);
                let cur = b.load(Type::F64, MemRef::global(acc, c as i64));
                let nxt = b.binary(BinOp::FAdd, cur, term);
                b.store(MemRef::global(acc, c as i64), nxt);
            }
            // Opaque bus write: a quantized (integer) activation stored
            // through a pointer the compiler cannot resolve. Without
            // strict aliasing this store may alias the f64 accumulators
            // and blocks their promotion; with strict aliasing the
            // int-vs-float type distinction licenses promotion — the
            // exact C `int* / double*` reasoning of GCC's
            // `-fstrict-aliasing`.
            let scaled1000 = b.binary(BinOp::FMul, m, 1000.0f64);
            let mi = b.unary(peak_ir::UnOp::FToInt, scaled1000);
            b.store(MemRef::ptr(busp, j), mi);
            // Winner tracking: data-dependent branch (RBR trigger).
            let best = b.load(Type::F64, MemRef::global(acc, CATS as i64));
            let scaled = b.binary(BinOp::FMul, m, rho);
            let gt = b.binary(BinOp::FGt, scaled, best);
            b.if_then(gt, |b| {
                b.store(MemRef::global(acc, CATS as i64), scaled);
                let widx = b.unary(peak_ir::UnOp::IntToF, j);
                b.store(MemRef::global(acc, (CATS + 1) as i64), widx);
            });
        });
        b.ret(None);
        let ts = program.add_func(b.finish());
        ArtMatch { program, ts }
    }

    fn numf1(ds: Dataset) -> i64 {
        match ds {
            Dataset::Train => NUMF1_TRAIN,
            Dataset::Ref => NUMF1_REF,
        }
    }
}

impl Workload for ArtMatch {
    fn name(&self) -> &'static str {
        "ART"
    }

    fn ts_name(&self) -> &'static str {
        "match"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 250, // Table 1
            Dataset::Ref => 750,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let weights = self.program.mem_by_name("weights").unwrap();
        let input = self.program.mem_by_name("input").unwrap();
        let perm = self.program.mem_by_name("perm").unwrap();
        fill_f64(mem, weights, rng, 0.0..1.0);
        fill_f64(mem, input, rng, 0.0..1.0);
        fill_permutation(mem, perm, rng);
        let acc = self.program.mem_by_name("acc").unwrap();
        for c in 0..(CATS + 2) {
            mem.store(acc, c as i64, Value::F64(0.0));
        }
    }

    fn args(
        &self,
        ds: Dataset,
        _inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // New scan pattern each invocation: fresh input vector and reset
        // winner (the rest of ART's F1/F2 processing).
        let input = self.program.mem_by_name("input").unwrap();
        for _ in 0..32 {
            let i = rng.gen_range(0..F1_MAX as i64);
            mem.store(input, i, Value::F64(rng.gen_range(0.0..1.0)));
        }
        let acc = self.program.mem_by_name("acc").unwrap();
        mem.store(acc, CATS as i64, Value::F64(0.0));
        let bus = self.program.mem_by_name("bus").unwrap();
        vec![
            Value::I64(Self::numf1(ds)),
            Value::Ptr(peak_ir::PtrVal { mem: bus, offset: 0 }),
            Value::F64(rng.gen_range(0.9..1.1)),
        ]
    }

    fn other_cycles(&self, ds: Dataset) -> u64 {
        // ART is scan-dominated; the F2 layer and weight adaptation
        // between scans are comparatively light.
        Self::numf1(ds) as u64 * 18
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 250, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_inapplicable_due_to_data_dependent_winner() {
        let w = ArtMatch::new();
        assert!(
            matches!(
                context_set(w.program().func(w.ts())),
                ContextAnalysis::NotApplicable(_)
            ),
            "winner branch reads loaded data"
        );
    }

    #[test]
    fn accumulators_accumulate() {
        let w = ArtMatch::new();
        let mut rng = StdRng::seed_from_u64(9);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let args = w.args(Dataset::Train, 0, &mut mem, &mut rng);
        Interp::default().run(w.program(), w.ts(), &args, &mut mem).unwrap();
        let acc = w.program().mem_by_name("acc").unwrap();
        for c in 0..CATS {
            assert!(mem.load(acc, c as i64).as_f64() > 0.0, "category {c} active");
        }
        assert!(mem.load(acc, CATS as i64).as_f64() > 0.0, "winner recorded");
    }

    #[test]
    fn strict_aliasing_changes_p4_spills() {
        // The load-bearing mechanism of Figure 7(b): compile the TS with
        // and without strict aliasing; on the P4 model the strict version
        // must spill FP registers, on SPARC II neither should.
        let w = ArtMatch::new();
        let strict = peak_opt::optimize(w.program(), w.ts(), &peak_opt::OptConfig::o3());
        let relaxed = peak_opt::optimize(
            w.program(),
            w.ts(),
            &peak_opt::OptConfig::o3().without(peak_opt::Flag::StrictAliasing),
        );
        let p4 = peak_sim::MachineSpec::pentium_iv();
        let sparc = peak_sim::MachineSpec::sparc_ii();
        let strict_p4 = peak_sim::PreparedVersion::prepare(strict.clone(), &p4);
        let relaxed_p4 = peak_sim::PreparedVersion::prepare(relaxed, &p4);
        let strict_sparc = peak_sim::PreparedVersion::prepare(strict, &sparc);
        assert!(
            strict_p4.entry_spills() > relaxed_p4.entry_spills(),
            "strict aliasing must raise P4 spills: strict={} relaxed={}",
            strict_p4.entry_spills(),
            relaxed_p4.entry_spills()
        );
        assert_eq!(strict_sparc.entry_spills(), 0, "SPARC II absorbs the pressure");
    }
}
