//! EQUAKE `smvp` — sparse matrix-vector product.
//!
//! A flat scan over the nonzeros with indirect row/column indexing:
//! control depends only on the scalar nonzero count (constant across
//! invocations → CBR with **one context**), but the gather/scatter memory
//! traffic is irregular — the paper attributes EQUAKE's relatively high
//! rating variance to exactly this (§5.1).

use crate::common::fill_f64;
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Nonzeros, train input.
const NNZ_TRAIN: i64 = 2200;
/// Nonzeros, ref input.
const NNZ_REF: i64 = 6400;
/// Matrix dimension (node count).
const NODES: usize = 1600;
/// Nonzero capacity.
const NNZ_MAX: usize = 6400;

/// The EQUAKE smvp workload.
pub struct EquakeSmvp {
    program: Program,
    ts: FuncId,
}

impl Default for EquakeSmvp {
    fn default() -> Self {
        Self::new()
    }
}

impl EquakeSmvp {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let aval = program.add_mem("aval", Type::F64, NNZ_MAX);
        let arow = program.add_mem("arow", Type::I64, NNZ_MAX);
        let acol = program.add_mem("acol", Type::I64, NNZ_MAX);
        let vin = program.add_mem("vin", Type::F64, NODES);
        let vout = program.add_mem("vout", Type::F64, NODES);

        // smvp(nnz): for e in 0..nnz:
        //   r = arow[e]; c = acol[e]
        //   vout[r] += aval[e] * vin[c]
        let mut b = FunctionBuilder::new("smvp", None);
        let nnz = b.param("nnz", Type::I64);
        let e = b.var("e", Type::I64);
        b.for_loop(e, 0i64, nnz, 1, |b| {
            let r = b.load(Type::I64, MemRef::global(arow, e));
            let c = b.load(Type::I64, MemRef::global(acol, e));
            let a = b.load(Type::F64, MemRef::global(aval, e));
            let x = b.load(Type::F64, MemRef::global(vin, c));
            let prod = b.binary(BinOp::FMul, a, x);
            let cur = b.load(Type::F64, MemRef::global(vout, r));
            let nxt = b.binary(BinOp::FAdd, cur, prod);
            b.store(MemRef::global(vout, r), nxt);
        });
        b.ret(None);
        let ts = program.add_func(b.finish());
        EquakeSmvp { program, ts }
    }

    fn nnz(ds: Dataset) -> i64 {
        match ds {
            Dataset::Train => NNZ_TRAIN,
            Dataset::Ref => NNZ_REF,
        }
    }
}

impl Workload for EquakeSmvp {
    fn name(&self) -> &'static str {
        "EQUAKE"
    }

    fn ts_name(&self) -> &'static str {
        "smvp"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 2709, // Table 1
            Dataset::Ref => 8100,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let aval = self.program.mem_by_name("aval").unwrap();
        let vin = self.program.mem_by_name("vin").unwrap();
        let vout = self.program.mem_by_name("vout").unwrap();
        fill_f64(mem, aval, rng, -1.0..1.0);
        fill_f64(mem, vin, rng, -1.0..1.0);
        fill_f64(mem, vout, rng, 0.0..0.0001);
        // Sparse structure: banded-random pattern like a 3D FEM mesh —
        // mostly local with occasional long-range couplings.
        let arow = self.program.mem_by_name("arow").unwrap();
        let acol = self.program.mem_by_name("acol").unwrap();
        for e in 0..NNZ_MAX as i64 {
            let r = rng.gen_range(0..NODES as i64);
            let c = if rng.gen_bool(0.8) {
                (r + rng.gen_range(-12..=12)).clamp(0, NODES as i64 - 1)
            } else {
                rng.gen_range(0..NODES as i64)
            };
            mem.store(arow, e, Value::I64(r));
            mem.store(acol, e, Value::I64(c));
        }
    }

    fn args(
        &self,
        ds: Dataset,
        _inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Time integration refreshes the input vector between products.
        let vin = self.program.mem_by_name("vin").unwrap();
        for _ in 0..16 {
            let i = rng.gen_range(0..NODES as i64);
            mem.store(vin, i, Value::F64(rng.gen_range(-1.0..1.0)));
        }
        vec![Value::I64(Self::nnz(ds))]
    }

    fn other_cycles(&self, ds: Dataset) -> u64 {
        // Element processing + time integration around each product.
        Self::nnz(ds) as u64 * 14
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "CBR", invocations_paper: 2709, contexts: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_applicable_single_scalar_context() {
        let w = EquakeSmvp::new();
        match context_set(w.program().func(w.ts())) {
            ContextAnalysis::Applicable(srcs) => {
                assert_eq!(srcs, vec![peak_ir::ContextSource::Param(0)]);
            }
            ContextAnalysis::NotApplicable(why) => panic!("{why}"),
        }
    }

    #[test]
    fn gather_scatter_touches_vout() {
        let w = EquakeSmvp::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let vout = w.program().mem_by_name("vout").unwrap();
        let sum_before: f64 = (0..NODES as i64).map(|i| mem.load(vout, i).as_f64()).sum();
        let args = w.args(Dataset::Train, 0, &mut mem, &mut rng);
        Interp::default().run(w.program(), w.ts(), &args, &mut mem).unwrap();
        let sum_after: f64 = (0..NODES as i64).map(|i| mem.load(vout, i).as_f64()).sum();
        assert_ne!(sum_before, sum_after);
    }

    #[test]
    fn flat_loop_steps_proportional_to_nnz() {
        let w = EquakeSmvp::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        let s1 = interp
            .run(w.program(), w.ts(), &[Value::I64(1000)], &mut mem)
            .unwrap()
            .steps;
        let s2 = interp
            .run(w.program(), w.ts(), &[Value::I64(2000)], &mut mem)
            .unwrap()
            .steps;
        let ratio = s2 as f64 / s1 as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio={ratio}");
    }
}
