//! BZIP2 `fullGtU` — greater-than comparison of two block suffixes.
//!
//! The hottest function of bzip2's block sort: compare bytes at two
//! offsets until they differ, with a bound. The exit is data-dependent
//! (text-like data with long common runs), so context analysis fails and
//! per-invocation time varies wildly with (i1, i2) — the canonical RBR
//! case. Table 1: 24.2M invocations (scaled here to 24 200 per run).

use crate::common::fill_runs;
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Operand, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Block size (bytes under sort).
const BLOCK: usize = 16384;
/// Comparison bound (bzip2 compares in quadrant-sized chunks).
const LIMIT: i64 = 48;

/// The BZIP2 fullGtU workload.
pub struct Bzip2FullGtU {
    program: Program,
    ts: FuncId,
}

impl Default for Bzip2FullGtU {
    fn default() -> Self {
        Self::new()
    }
}

impl Bzip2FullGtU {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let block = program.add_mem("block", Type::I64, BLOCK + LIMIT as usize + 1);

        // fullGtU(i1, i2) -> i64:
        //   for k in 0..LIMIT:
        //     c1 = block[i1 + k]; c2 = block[i2 + k]
        //     if c1 != c2 { return (c1 > c2) }
        //   return 0
        let mut b = FunctionBuilder::new("fullGtU", Some(Type::I64));
        let i1 = b.param("i1", Type::I64);
        let i2 = b.param("i2", Type::I64);
        let k = b.var("k", Type::I64);
        let ret_blk = b.new_block();
        let result = b.var("result", Type::I64);
        b.copy(result, 0i64);
        b.for_loop(k, 0i64, LIMIT, 1, |b| {
            let a1 = b.binary(BinOp::Add, i1, k);
            let a2 = b.binary(BinOp::Add, i2, k);
            let c1 = b.load(Type::I64, MemRef::global(block, a1));
            let c2 = b.load(Type::I64, MemRef::global(block, a2));
            let ne = b.binary(BinOp::Ne, c1, c2);
            b.if_then(ne, |b| {
                let gt = b.binary(BinOp::Gt, c1, c2);
                b.copy(result, gt);
            });
            // Break out once decided.
            let done = b.binary(BinOp::Ne, c1, c2);
            b.branch_out_if(done, ret_blk);
        });
        b.jump(ret_blk);
        b.ret(Some(Operand::Var(result)));
        let ts = program.add_func(b.finish());
        Bzip2FullGtU { program, ts }
    }
}

impl Workload for Bzip2FullGtU {
    fn name(&self) -> &'static str {
        "BZIP2"
    }

    fn ts_name(&self) -> &'static str {
        "fullGtU"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 24_200, // Table 1 scaled ÷1000
            Dataset::Ref => 72_000,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        let block = self.program.mem_by_name("block").unwrap();
        fill_runs(mem, block, rng, 24);
    }

    fn args(
        &self,
        _ds: Dataset,
        _inv: usize,
        _mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Sorting compares nearby suffixes most of the time.
        let i1 = rng.gen_range(0..BLOCK as i64);
        let i2 = if rng.gen_bool(0.7) {
            (i1 + rng.gen_range(1..256)).min(BLOCK as i64 - 1)
        } else {
            rng.gen_range(0..BLOCK as i64)
        };
        vec![Value::I64(i1), Value::I64(i2)]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // The surrounding quicksort bookkeeping is small per comparison.
        220
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "RBR", invocations_paper: 24_200_000, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_inapplicable_control_reads_block_data() {
        let w = Bzip2FullGtU::new();
        assert!(matches!(
            context_set(w.program().func(w.ts())),
            ContextAnalysis::NotApplicable(_)
        ));
    }

    #[test]
    fn comparison_is_antisymmetric() {
        let w = Bzip2FullGtU::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        let run = |mem: &mut MemoryImage, a: i64, b: i64| {
            interp
                .run(w.program(), w.ts(), &[Value::I64(a), Value::I64(b)], mem)
                .unwrap()
                .ret
                .unwrap()
                .as_i64()
        };
        let mut checked = 0;
        for _ in 0..50 {
            let a = rng.gen_range(0..BLOCK as i64);
            let b = rng.gen_range(0..BLOCK as i64);
            let ab = run(&mut mem, a, b);
            let ba = run(&mut mem, b, a);
            if ab == 1 {
                assert_eq!(ba, 0, "a>b implies !(b>a)");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn iteration_count_varies_with_inputs() {
        // The RBR trigger: per-invocation work depends on the data.
        let w = Bzip2FullGtU::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        let mut steps = std::collections::HashSet::new();
        for _ in 0..40 {
            let args = w.args(Dataset::Train, 0, &mut mem, &mut rng);
            steps.insert(interp.run(w.program(), w.ts(), &args, &mut mem).unwrap().steps);
        }
        assert!(steps.len() >= 3, "step counts should vary: {steps:?}");
    }
}
