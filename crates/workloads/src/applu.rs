//! APPLU `blts` — block lower-triangular solve sweep.
//!
//! A wavefront-free simplification: a forward substitution sweep over a
//! 2D grid where each cell combines its west and north neighbours.
//! Completely regular, control driven by the constant grid size → CBR
//! with one context; Table 1's most consistent row (250 invocations,
//! σ down to 0.18 at w=160).

use crate::common::fill_f64;
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Grid side, train.
const N_TRAIN: i64 = 20;
/// Grid side, ref.
const N_REF: i64 = 28;
/// Capacity.
const N_MAX: usize = 28;

/// The APPLU blts workload.
pub struct AppluBlts {
    program: Program,
    ts: FuncId,
}

impl Default for AppluBlts {
    fn default() -> Self {
        Self::new()
    }
}

impl AppluBlts {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let cells = N_MAX * N_MAX;
        let rhs = program.add_mem("rhs", Type::F64, cells);
        let sol = program.add_mem("sol", Type::F64, cells);
        let dl = program.add_mem("dl", Type::F64, cells);

        // blts(n, omega): for j in 1..n, i in 1..n:
        //   idx = j*N_MAX + i
        //   sol[idx] = (rhs[idx] - omega*(dl[idx]*(sol[idx-1] + sol[idx-N])))
        let mut b = FunctionBuilder::new("blts", None);
        let n = b.param("n", Type::I64);
        let omega = b.param("omega", Type::F64);
        let j = b.var("j", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(j, 1i64, n, 1, |b| {
            let row = b.binary(BinOp::Mul, j, N_MAX as i64);
            b.for_loop(i, 1i64, n, 1, |b| {
                let idx = b.binary(BinOp::Add, row, i);
                let iw = b.binary(BinOp::Sub, idx, 1i64);
                let in_ = b.binary(BinOp::Sub, idx, N_MAX as i64);
                let sw = b.load(Type::F64, MemRef::global(sol, iw));
                let sn = b.load(Type::F64, MemRef::global(sol, in_));
                let nb = b.binary(BinOp::FAdd, sw, sn);
                let d = b.load(Type::F64, MemRef::global(dl, idx));
                let coupled = b.binary(BinOp::FMul, d, nb);
                let relaxed = b.binary(BinOp::FMul, omega, coupled);
                let r = b.load(Type::F64, MemRef::global(rhs, idx));
                let out = b.binary(BinOp::FSub, r, relaxed);
                b.store(MemRef::global(sol, idx), out);
            });
        });
        b.ret(None);
        let ts = program.add_func(b.finish());
        AppluBlts { program, ts }
    }

    fn n(ds: Dataset) -> i64 {
        match ds {
            Dataset::Train => N_TRAIN,
            Dataset::Ref => N_REF,
        }
    }
}

impl Workload for AppluBlts {
    fn name(&self) -> &'static str {
        "APPLU"
    }

    fn ts_name(&self) -> &'static str {
        "blts"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 250, // Table 1
            Dataset::Ref => 750,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        for name in ["rhs", "sol", "dl"] {
            let m = self.program.mem_by_name(name).unwrap();
            fill_f64(mem, m, rng, -0.5..0.5);
        }
    }

    fn args(
        &self,
        ds: Dataset,
        _inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // New right-hand side each SSOR iteration.
        let rhs = self.program.mem_by_name("rhs").unwrap();
        for _ in 0..8 {
            let i = rng.gen_range(0..(N_MAX * N_MAX) as i64);
            mem.store(rhs, i, Value::F64(rng.gen_range(-0.5..0.5)));
        }
        vec![Value::I64(Self::n(ds)), Value::F64(1.2)]
    }

    fn other_cycles(&self, ds: Dataset) -> u64 {
        // Jacobian assembly + buts (upper solve) around each lower solve.
        let n = Self::n(ds) as u64;
        (n - 1) * (n - 1) * 130
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "CBR", invocations_paper: 250, contexts: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_applicable() {
        let w = AppluBlts::new();
        match context_set(w.program().func(w.ts())) {
            ContextAnalysis::Applicable(srcs) => {
                assert_eq!(srcs, vec![peak_ir::ContextSource::Param(0)]);
            }
            ContextAnalysis::NotApplicable(why) => panic!("{why}"),
        }
    }

    #[test]
    fn forward_substitution_propagates() {
        let w = AppluBlts::new();
        let mut rng = StdRng::seed_from_u64(17);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let sol = w.program().mem_by_name("sol").unwrap();
        let before = mem.load(sol, (N_MAX + 1) as i64);
        let args = w.args(Dataset::Train, 0, &mut mem, &mut rng);
        Interp::default().run(w.program(), w.ts(), &args, &mut mem).unwrap();
        assert_ne!(before, mem.load(sol, (N_MAX + 1) as i64));
    }
}
