//! MGRID `resid` — multigrid residual computation `r = v − A·u`.
//!
//! A regular 2D stencil, but invoked across the levels of a V-cycle: the
//! grid size parameter takes **many distinct values**, so CBR sees too
//! many contexts and wastes invocations (Figure 7's MGRID_CBR
//! pathology), while MBR models the time as `T_body·C_body + T_const`
//! with the body count derivable from the grid size (paper §2.3) — the
//! method the paper's system picks for MGRID.

use crate::common::fill_f64;
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Grid sizes cycled through one V-cycle (11 distinct contexts — past the
/// consultant's CBR context budget). Sized so even the largest level's
/// working set stays cache-resident, keeping the per-element time stable
/// across levels (the linearity MBR's model relies on).
const LEVELS: [i64; 11] = [4, 5, 6, 7, 8, 10, 12, 14, 16, 20, 24];
/// Maximum grid side (array sizing).
const N_MAX: usize = 24;

/// The MGRID resid workload.
pub struct MgridResid {
    program: Program,
    ts: FuncId,
}

impl Default for MgridResid {
    fn default() -> Self {
        Self::new()
    }
}

impl MgridResid {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let cells = N_MAX * N_MAX;
        let u = program.add_mem("u", Type::F64, cells);
        let v = program.add_mem("v", Type::F64, cells);
        let r = program.add_mem("r", Type::F64, cells);

        // resid(m): for j in 1..m-1, i in 1..m-1:
        //   idx = j*N_MAX + i
        //   r[idx] = v[idx] - a0*u[idx]
        //          - a1*(u[idx-1] + u[idx+1] + u[idx-N] + u[idx+N])
        let mut b = FunctionBuilder::new("resid", None);
        let m = b.param("m", Type::I64);
        let j = b.var("j", Type::I64);
        let i = b.var("i", Type::I64);
        let bound = b.binary(BinOp::Sub, m, 1i64);
        b.for_loop(j, 1i64, bound, 1, |b| {
            let row = b.binary(BinOp::Mul, j, N_MAX as i64);
            b.for_loop(i, 1i64, bound, 1, |b| {
                let idx = b.binary(BinOp::Add, row, i);
                let uc = b.load(Type::F64, MemRef::global(u, idx));
                let iw = b.binary(BinOp::Sub, idx, 1i64);
                let ie = b.binary(BinOp::Add, idx, 1i64);
                let in_ = b.binary(BinOp::Sub, idx, N_MAX as i64);
                let is_ = b.binary(BinOp::Add, idx, N_MAX as i64);
                let uw = b.load(Type::F64, MemRef::global(u, iw));
                let ue = b.load(Type::F64, MemRef::global(u, ie));
                let un = b.load(Type::F64, MemRef::global(u, in_));
                let us = b.load(Type::F64, MemRef::global(u, is_));
                let s1 = b.binary(BinOp::FAdd, uw, ue);
                let s2 = b.binary(BinOp::FAdd, un, us);
                let ssum = b.binary(BinOp::FAdd, s1, s2);
                let c0 = b.binary(BinOp::FMul, uc, -4.0f64);
                let lap = b.binary(BinOp::FAdd, c0, ssum);
                let vv = b.load(Type::F64, MemRef::global(v, idx));
                let scaled = b.binary(BinOp::FMul, lap, 0.25f64);
                let res = b.binary(BinOp::FSub, vv, scaled);
                b.store(MemRef::global(r, idx), res);
            });
        });
        b.ret(None);
        let ts = program.add_func(b.finish());
        MgridResid { program, ts }
    }
}

impl Workload for MgridResid {
    fn name(&self) -> &'static str {
        "MGRID"
    }

    fn ts_name(&self) -> &'static str {
        "resid"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 2410, // Table 1
            Dataset::Ref => 7200,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        for name in ["u", "v", "r"] {
            let m = self.program.mem_by_name(name).unwrap();
            fill_f64(mem, m, rng, -1.0..1.0);
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // V-cycle walk: descend then ascend through the levels.
        let cycle = LEVELS.len() * 2 - 2;
        let pos = inv % cycle;
        let level = if pos < LEVELS.len() { pos } else { cycle - pos };
        // Smoother between calls: touch a few cells.
        let u = self.program.mem_by_name("u").unwrap();
        for _ in 0..4 {
            let i = rng.gen_range(0..(N_MAX * N_MAX) as i64);
            mem.store(u, i, Value::F64(rng.gen_range(-1.0..1.0)));
        }
        vec![Value::I64(LEVELS[level])]
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // psinv + interp + rprj3 between resid calls.
        9_000
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "MBR", invocations_paper: 2410, contexts: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn cbr_technically_applicable_but_many_contexts() {
        let w = MgridResid::new();
        // Figure-1 analysis succeeds (scalar m drives control)…
        assert!(matches!(
            context_set(w.program().func(w.ts())),
            ContextAnalysis::Applicable(_)
        ));
        // …but the invocation stream produces 12 distinct contexts.
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let mut seen = HashSet::new();
        for inv in 0..100 {
            let a = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            seen.insert(a[0].as_i64());
        }
        assert_eq!(seen.len(), LEVELS.len());
    }

    #[test]
    fn body_count_is_model_friendly() {
        // Block-entry count of the inner body = (m-2)² — exactly the
        // linear structure MBR exploits.
        let w = MgridResid::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        for m in [4i64, 8, 16] {
            let out = interp
                .run(w.program(), w.ts(), &[Value::I64(m)], &mut mem)
                .unwrap();
            let expected = ((m - 2) * (m - 2)) as u64;
            assert!(
                out.block_entries.contains(&expected),
                "m={m}: no block executed exactly (m-2)^2 = {expected} times: {:?}",
                out.block_entries
            );
        }
    }

    #[test]
    fn v_cycle_descends_and_ascends() {
        let w = MgridResid::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let sizes: Vec<i64> = (0..24)
            .map(|inv| w.args(Dataset::Train, inv, &mut mem, &mut rng)[0].as_i64())
            .collect();
        assert_eq!(sizes[0], 4);
        assert_eq!(sizes[10], 24);
        assert_eq!(sizes[11], 20, "coming back down");
    }
}
