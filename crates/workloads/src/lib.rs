//! # peak-workloads — SPEC CPU 2000-like tuning-section workloads
//!
//! One synthetic workload per tuning section of the paper's Table 1,
//! written in the `peak-ir` IR with the qualitative traits the paper's
//! results depend on: context structure (how many distinct workload
//! contexts the TS sees), control regularity (does Figure-1 context
//! analysis apply), invocation counts (scaled down ~1000× from Table 1 so
//! the whole suite simulates in minutes), and memory behaviour (dense vs
//! sparse vs pointer-chasing).
//!
//! | Benchmark | TS | paper method | contexts |
//! |---|---|---|---|
//! | BZIP2 | fullGtU | RBR | — (irregular) |
//! | CRAFTY | Attacked | RBR | — (too many + irregular) |
//! | GZIP | longest_match | RBR | — (irregular) |
//! | MCF | primal_bea_mpp | RBR | — (irregular) |
//! | TWOLF | new_dbox_a | RBR | — (irregular) |
//! | VORTEX | ChkGetChunk | RBR | — (irregular) |
//! | APPLU | blts | CBR | 1 |
//! | APSI | radb4 | CBR | 3 |
//! | ART | match | RBR | — (irregular) |
//! | MGRID | resid | MBR | many (CBR pathological) |
//! | EQUAKE | smvp | CBR | 1 |
//! | MESA | sample_1d_linear | RBR | — (continuous) |
//! | SWIM | calc3 | CBR | 1 |
//! | WUPWISE | zgemm | CBR | 2 |

#![warn(missing_docs)]

pub mod common;
pub mod fuzzgen;
pub mod stream;

pub mod applu;
pub mod apsi;
pub mod art;
pub mod bzip2;
pub mod crafty;
pub mod equake;
pub mod gzip;
pub mod mcf;
pub mod mesa;
pub mod mgrid;
pub mod swim;
pub mod twolf;
pub mod vortex;
pub mod wupwise;

use peak_ir::{FuncId, MemoryImage, Program, Value};
use rand::rngs::StdRng;

/// Which input set drives the run (paper §5.2: tune on `train`, report on
/// `ref`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Training input (used during tuning).
    Train,
    /// Reference input (production runs / reported performance).
    Ref,
}

/// Paper Table 1 metadata for cross-checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Rating approach the paper's system chose.
    pub method: &'static str,
    /// Invocation count in the paper (one run, train input).
    pub invocations_paper: u64,
    /// Number of CBR contexts the paper reports (0 = not CBR).
    pub contexts: u32,
}

/// A benchmark workload: a program containing one tuning section plus the
/// invocation stream that drives it.
pub trait Workload: Send + Sync {
    /// Benchmark name (e.g. "SWIM").
    fn name(&self) -> &'static str;
    /// Tuning-section name (e.g. "calc3").
    fn ts_name(&self) -> &'static str;
    /// The program containing the TS (and any callees).
    fn program(&self) -> &Program;
    /// The tuning-section function.
    fn ts(&self) -> FuncId;
    /// TS invocations in one application run.
    fn invocations(&self, ds: Dataset) -> usize;
    /// Initialize memory at the start of an application run.
    fn setup(&self, ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng);
    /// Arguments for invocation `inv` (0-based); may mutate memory to
    /// model the rest of the program running between invocations.
    ///
    /// Contract (relied on by [`stream::ArgStream`]): implementations
    /// write memory only through [`MemoryImage::store`] and never read
    /// memory *content* (static shapes like buffer lengths are fine) —
    /// the produced values depend only on `(ds, inv)` and the RNG
    /// stream, which makes argument streams recordable and replayable.
    fn args(&self, ds: Dataset, inv: usize, mem: &mut MemoryImage, rng: &mut StdRng)
        -> Vec<Value>;
    /// Simulated cycles the rest of the program spends per TS invocation
    /// (drives the WHL-vs-section tuning-time gap).
    fn other_cycles(&self, ds: Dataset) -> u64;
    /// Paper metadata.
    fn paper_row(&self) -> PaperRow;
}

/// All fourteen workloads, in Table 1 order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(bzip2::Bzip2FullGtU::new()),
        Box::new(crafty::CraftyAttacked::new()),
        Box::new(gzip::GzipLongestMatch::new()),
        Box::new(mcf::McfPrimalBeaMpp::new()),
        Box::new(twolf::TwolfNewDboxA::new()),
        Box::new(vortex::VortexChkGetChunk::new()),
        Box::new(applu::AppluBlts::new()),
        Box::new(apsi::ApsiRadb4::new()),
        Box::new(art::ArtMatch::new()),
        Box::new(mgrid::MgridResid::new()),
        Box::new(equake::EquakeSmvp::new()),
        Box::new(mesa::MesaSample1dLinear::new()),
        Box::new(swim::SwimCalc3::new()),
        Box::new(wupwise::WupwiseZgemm::new()),
    ]
}

/// The four benchmarks tuned in Figure 7.
pub fn figure7_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(swim::SwimCalc3::new()),
        Box::new(mgrid::MgridResid::new()),
        Box::new(art::ArtMatch::new()),
        Box::new(equake::EquakeSmvp::new()),
    ]
}

/// Find a workload by benchmark name (case-insensitive).
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fourteen_workloads_cover_table1() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 14);
        let names: Vec<_> = ws.iter().map(|w| w.name()).collect();
        for expect in [
            "BZIP2", "CRAFTY", "GZIP", "MCF", "TWOLF", "VORTEX", "APPLU", "APSI", "ART",
            "MGRID", "EQUAKE", "MESA", "SWIM", "WUPWISE",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn all_programs_validate() {
        for w in all_workloads() {
            peak_ir::validate_program(w.program())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        }
    }

    #[test]
    fn every_workload_runs_a_few_invocations() {
        for w in all_workloads() {
            let mut rng = StdRng::seed_from_u64(1);
            let mut mem = MemoryImage::new(w.program());
            w.setup(Dataset::Train, &mut mem, &mut rng);
            let interp = peak_ir::Interp::default();
            for inv in 0..5.min(w.invocations(Dataset::Train)) {
                let args = w.args(Dataset::Train, inv, &mut mem, &mut rng);
                interp
                    .run(w.program(), w.ts(), &args, &mut mem)
                    .unwrap_or_else(|e| panic!("{} inv {inv}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn train_and_ref_differ() {
        for w in all_workloads() {
            assert!(
                w.invocations(Dataset::Ref) >= w.invocations(Dataset::Train),
                "{}: ref should be at least as large as train",
                w.name()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("swim").is_some());
        assert!(workload_by_name("SWIM").is_some());
        assert!(workload_by_name("nope").is_none());
    }
}
