//! Shared helpers for workload construction: data initializers and
//! context-stream utilities.

use peak_ir::{MemId, MemoryImage, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// Fill an integer region with uniform values in `range`.
pub fn fill_i64(mem: &mut MemoryImage, m: MemId, rng: &mut StdRng, range: std::ops::Range<i64>) {
    let len = mem.buf(m).len();
    for i in 0..len {
        mem.store(m, i as i64, Value::I64(rng.gen_range(range.clone())));
    }
}

/// Fill a float region with uniform values in `range`.
pub fn fill_f64(mem: &mut MemoryImage, m: MemId, rng: &mut StdRng, range: std::ops::Range<f64>) {
    let len = mem.buf(m).len();
    for i in 0..len {
        mem.store(m, i as i64, Value::F64(rng.gen_range(range.clone())));
    }
}

/// Fill an integer region with "text-like" data: runs of repeated symbols
/// with geometric run lengths, so suffix comparisons share long prefixes
/// (the BZIP2/GZIP workload shape).
pub fn fill_runs(mem: &mut MemoryImage, m: MemId, rng: &mut StdRng, alphabet: i64) {
    let len = mem.buf(m).len();
    let mut i = 0usize;
    while i < len {
        let sym = rng.gen_range(0..alphabet);
        let run = 1 + (rng.gen_range(0.0f64..1.0).powi(3) * 24.0) as usize;
        for _ in 0..run.min(len - i) {
            mem.store(m, i as i64, Value::I64(sym));
            i += 1;
        }
    }
}

/// Fill an integer region with a random permutation of `0..len` (index
/// arrays for gather/scatter workloads).
pub fn fill_permutation(mem: &mut MemoryImage, m: MemId, rng: &mut StdRng) {
    let len = mem.buf(m).len();
    let mut perm: Vec<i64> = (0..len as i64).collect();
    // Fisher–Yates.
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    for (i, v) in perm.into_iter().enumerate() {
        mem.store(m, i as i64, Value::I64(v));
    }
}

/// A cyclic context stream: invocation `inv` gets `tuples[inv % k]`,
/// with per-context weights so some contexts dominate (like radb4's
/// uneven context mix in Table 1).
#[derive(Debug, Clone)]
pub struct ContextCycle {
    expanded: Vec<Vec<Value>>,
}

impl ContextCycle {
    /// Build from (tuple, weight) pairs; a weight-w tuple appears w times
    /// per cycle.
    pub fn new(weighted: &[(&[Value], usize)]) -> Self {
        let mut expanded = Vec::new();
        for (tuple, w) in weighted {
            for _ in 0..*w {
                expanded.push(tuple.to_vec());
            }
        }
        assert!(!expanded.is_empty());
        ContextCycle { expanded }
    }

    /// Arguments for invocation `inv`.
    pub fn get(&self, inv: usize) -> Vec<Value> {
        self.expanded[inv % self.expanded.len()].clone()
    }

    /// Number of slots per cycle.
    pub fn cycle_len(&self) -> usize {
        self.expanded.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{Program, Type};
    use rand::SeedableRng;

    fn image_with(elem: Type, len: usize) -> (Program, MemId, MemoryImage) {
        let mut p = Program::new();
        let m = p.add_mem("m", elem, len);
        let img = MemoryImage::new(&p);
        (p, m, img)
    }

    #[test]
    fn runs_have_repeats() {
        let (_p, m, mut img) = image_with(Type::I64, 4096);
        let mut rng = StdRng::seed_from_u64(3);
        fill_runs(&mut img, m, &mut rng, 16);
        let mut repeats = 0;
        for i in 1..4096 {
            if img.load(m, i) == img.load(m, i - 1) {
                repeats += 1;
            }
        }
        assert!(repeats > 1000, "text-like data has long runs: {repeats}");
    }

    #[test]
    fn permutation_is_bijective() {
        let (_p, m, mut img) = image_with(Type::I64, 256);
        let mut rng = StdRng::seed_from_u64(5);
        fill_permutation(&mut img, m, &mut rng);
        let mut seen = vec![false; 256];
        for i in 0..256 {
            let v = img.load(m, i).as_i64() as usize;
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn context_cycle_weights() {
        let a = [Value::I64(1)];
        let b = [Value::I64(2)];
        let c = ContextCycle::new(&[(&a, 3), (&b, 1)]);
        assert_eq!(c.cycle_len(), 4);
        let ones = (0..100).filter(|&i| c.get(i)[0] == Value::I64(1)).count();
        assert_eq!(ones, 75);
    }
}
