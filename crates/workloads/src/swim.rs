//! SWIM `calc3` — shallow-water time-smoothing update.
//!
//! A dense 2D stencil sweep over three field triples (u, v, p). Perfectly
//! regular: all control derives from the scalar grid size `n`, which is
//! constant across invocations, so CBR applies with a **single context**
//! (Table 1: 198 invocations, the most consistent CBR row).

use crate::common::fill_f64;
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Grid side for the train input.
const N_TRAIN: i64 = 24;
/// Grid side for the ref input.
const N_REF: i64 = 32;
/// Maximum grid side (array sizing).
const N_MAX: usize = 32;

/// The SWIM calc3 workload.
pub struct SwimCalc3 {
    program: Program,
    ts: FuncId,
}

impl Default for SwimCalc3 {
    fn default() -> Self {
        Self::new()
    }
}

impl SwimCalc3 {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let cells = N_MAX * N_MAX;
        let u = program.add_mem("u", Type::F64, cells);
        let uold = program.add_mem("uold", Type::F64, cells);
        let unew = program.add_mem("unew", Type::F64, cells);
        let v = program.add_mem("v", Type::F64, cells);
        let vold = program.add_mem("vold", Type::F64, cells);
        let vnew = program.add_mem("vnew", Type::F64, cells);
        let p = program.add_mem("p", Type::F64, cells);
        let pold = program.add_mem("pold", Type::F64, cells);
        let pnew = program.add_mem("pnew", Type::F64, cells);

        // calc3(n, alpha):
        //   for j in 1..n-1: for i in 1..n-1:
        //     idx = j*N_MAX + i
        //     uold[idx] = u[idx] + alpha*(unew[idx] - 2*u[idx] + uold[idx])
        //     (same for v and p triples)
        //     u[idx] = unew[idx]; … (field rotation folded in)
        let mut b = FunctionBuilder::new("calc3", None);
        let n = b.param("n", Type::I64);
        let alpha = b.param("alpha", Type::F64);
        let j = b.var("j", Type::I64);
        let i = b.var("i", Type::I64);
        let bound = b.binary(BinOp::Sub, n, 1i64);
        b.for_loop(j, 1i64, bound, 1, |b| {
            let row = b.binary(BinOp::Mul, j, N_MAX as i64);
            b.for_loop(i, 1i64, bound, 1, |b| {
                let idx = b.binary(BinOp::Add, row, i);
                for (cur, old, new) in [(u, uold, unew), (v, vold, vnew), (p, pold, pnew)] {
                    let xc = b.load(Type::F64, MemRef::global(cur, idx));
                    let xo = b.load(Type::F64, MemRef::global(old, idx));
                    let xn = b.load(Type::F64, MemRef::global(new, idx));
                    let two = b.binary(BinOp::FMul, xc, 2.0f64);
                    let d1 = b.binary(BinOp::FSub, xn, two);
                    let d2 = b.binary(BinOp::FAdd, d1, xo);
                    let sm = b.binary(BinOp::FMul, alpha, d2);
                    let res = b.binary(BinOp::FAdd, xc, sm);
                    b.store(MemRef::global(old, idx), res);
                    b.store(MemRef::global(cur, idx), xn);
                }
            });
        });
        b.ret(None);
        let ts = program.add_func(b.finish());
        SwimCalc3 { program, ts }
    }

    fn n(ds: Dataset) -> i64 {
        match ds {
            Dataset::Train => N_TRAIN,
            Dataset::Ref => N_REF,
        }
    }
}

impl Workload for SwimCalc3 {
    fn name(&self) -> &'static str {
        "SWIM"
    }

    fn ts_name(&self) -> &'static str {
        "calc3"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 198, // Table 1
            Dataset::Ref => 600,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        for name in ["u", "uold", "unew", "v", "vold", "vnew", "p", "pold", "pnew"] {
            let m = self.program.mem_by_name(name).unwrap();
            fill_f64(mem, m, rng, -1.0..1.0);
        }
    }

    fn args(
        &self,
        ds: Dataset,
        _inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // The rest of the program (calc1/calc2) refreshes the "new" fields
        // between calls; emulate with a sparse perturbation.
        for name in ["unew", "vnew", "pnew"] {
            let m = self.program.mem_by_name(name).unwrap();
            for _ in 0..8 {
                let i = rng.gen_range(0..(N_MAX * N_MAX) as i64);
                mem.store(m, i, Value::F64(rng.gen_range(-1.0..1.0)));
            }
        }
        vec![Value::I64(Self::n(ds)), Value::F64(0.0625)]
    }

    fn other_cycles(&self, ds: Dataset) -> u64 {
        // calc1 + calc2 + boundary code: roughly 2.5× the calc3 work.
        let n = Self::n(ds) as u64;
        (n - 2) * (n - 2) * 110
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "CBR", invocations_paper: 198, contexts: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;

    #[test]
    fn cbr_applicable_with_scalar_context() {
        let w = SwimCalc3::new();
        let ca = context_set(w.program().func(w.ts()));
        match ca {
            ContextAnalysis::Applicable(srcs) => {
                // Only the grid size feeds control.
                assert_eq!(srcs, vec![peak_ir::ContextSource::Param(0)]);
            }
            ContextAnalysis::NotApplicable(why) => panic!("CBR must apply: {why}"),
        }
    }

    #[test]
    fn stencil_updates_old_fields() {
        let w = SwimCalc3::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let uold = w.program().mem_by_name("uold").unwrap();
        let before = mem.load(uold, (N_MAX + 1) as i64);
        let args = w.args(Dataset::Train, 0, &mut mem, &mut rng);
        Interp::default().run(w.program(), w.ts(), &args, &mut mem).unwrap();
        let after = mem.load(uold, (N_MAX + 1) as i64);
        assert_ne!(before, after, "interior cell smoothed");
    }

    #[test]
    fn work_scales_with_dataset() {
        let w = SwimCalc3::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        let a_train = w.args(Dataset::Train, 0, &mut mem, &mut rng);
        let s_train = interp.run(w.program(), w.ts(), &a_train, &mut mem).unwrap().steps;
        let a_ref = w.args(Dataset::Ref, 0, &mut mem, &mut rng);
        let s_ref = interp.run(w.program(), w.ts(), &a_ref, &mut mem).unwrap().steps;
        assert!(s_ref > s_train);
    }
}
