//! APSI `radb4` — radix-4 inverse FFT butterfly pass.
//!
//! The FFT factorization calls radb4 with a small set of `(ido, l1)`
//! shapes; Table 1 reports **three contexts** with different consistency
//! per context (context 1 is the noisiest). Control is fully scalar →
//! CBR; the three shapes appear with different frequencies.

use crate::common::{fill_f64, ContextCycle};
use crate::{Dataset, PaperRow, Workload};
use peak_ir::{
    BinOp, FuncId, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Transform length (ido × l1 × 4 per pass).
const CC_LEN: usize = 4096;

/// The APSI radb4 workload.
pub struct ApsiRadb4 {
    program: Program,
    ts: FuncId,
    contexts: ContextCycle,
}

impl Default for ApsiRadb4 {
    fn default() -> Self {
        Self::new()
    }
}

impl ApsiRadb4 {
    /// Build the workload.
    pub fn new() -> Self {
        let mut program = Program::new();
        let cc = program.add_mem("cc", Type::F64, CC_LEN);
        let ch = program.add_mem("ch", Type::F64, CC_LEN);

        // radb4(ido, l1): for k in 0..l1, for i in 0..ido:
        //   4-point butterfly between cc[(k*4+q)*ido + i], q=0..3
        //   written to ch[(q*l1+k)*ido + i]
        let mut b = FunctionBuilder::new("radb4", None);
        let ido = b.param("ido", Type::I64);
        let l1 = b.param("l1", Type::I64);
        let k = b.var("k", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(k, 0i64, l1, 1, |b| {
            let k4 = b.binary(BinOp::Mul, k, 4i64);
            b.for_loop(i, 0i64, ido, 1, |b| {
                // Load the four inputs.
                let mut ins = Vec::new();
                for q in 0..4i64 {
                    let row = b.binary(BinOp::Add, k4, q);
                    let off = b.binary(BinOp::Mul, row, ido);
                    let idx = b.binary(BinOp::Add, off, i);
                    ins.push(b.load(Type::F64, MemRef::global(cc, idx)));
                }
                // Radix-4 butterfly (real inverse form).
                let t0 = b.binary(BinOp::FAdd, ins[0], ins[2]);
                let t1 = b.binary(BinOp::FSub, ins[0], ins[2]);
                let t2 = b.binary(BinOp::FAdd, ins[1], ins[3]);
                let t3 = b.binary(BinOp::FSub, ins[1], ins[3]);
                let o0 = b.binary(BinOp::FAdd, t0, t2);
                let o1 = b.binary(BinOp::FSub, t1, t3);
                let o2 = b.binary(BinOp::FSub, t0, t2);
                let o3 = b.binary(BinOp::FAdd, t1, t3);
                for (q, o) in [o0, o1, o2, o3].into_iter().enumerate() {
                    let row = b.binary(BinOp::Mul, l1, q as i64);
                    let rk = b.binary(BinOp::Add, row, k);
                    let off = b.binary(BinOp::Mul, rk, ido);
                    let idx = b.binary(BinOp::Add, off, i);
                    b.store(MemRef::global(ch, idx), o);
                }
            });
        });
        b.ret(None);
        let ts = program.add_func(b.finish());
        // The three contexts of Table 1, weighted like an FFT
        // factorization (the innermost shape dominates).
        let c1 = [Value::I64(1), Value::I64(256)];
        let c2 = [Value::I64(8), Value::I64(32)];
        let c3 = [Value::I64(64), Value::I64(4)];
        let contexts = ContextCycle::new(&[(&c1, 4), (&c2, 2), (&c3, 1)]);
        ApsiRadb4 { program, ts, contexts }
    }
}

impl Workload for ApsiRadb4 {
    fn name(&self) -> &'static str {
        "APSI"
    }

    fn ts_name(&self) -> &'static str {
        "radb4"
    }

    fn program(&self) -> &Program {
        &self.program
    }

    fn ts(&self) -> FuncId {
        self.ts
    }

    fn invocations(&self, ds: Dataset) -> usize {
        match ds {
            Dataset::Train => 4_100, // Table 1: 1.37M, scaled
            Dataset::Ref => 12_300,
        }
    }

    fn setup(&self, _ds: Dataset, mem: &mut MemoryImage, rng: &mut StdRng) {
        for name in ["cc", "ch"] {
            let m = self.program.mem_by_name(name).unwrap();
            fill_f64(mem, m, rng, -1.0..1.0);
        }
    }

    fn args(
        &self,
        _ds: Dataset,
        inv: usize,
        mem: &mut MemoryImage,
        rng: &mut StdRng,
    ) -> Vec<Value> {
        // Spectral data refreshed between transforms.
        let cc = self.program.mem_by_name("cc").unwrap();
        for _ in 0..8 {
            let i = rng.gen_range(0..CC_LEN as i64);
            mem.store(cc, i, Value::F64(rng.gen_range(-1.0..1.0)));
        }
        self.contexts.get(inv)
    }

    fn other_cycles(&self, _ds: Dataset) -> u64 {
        // The other radix passes + physics around each call.
        6_000
    }

    fn paper_row(&self) -> PaperRow {
        PaperRow { method: "CBR", invocations_paper: 1_370_000, contexts: 3 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{context_set, ContextAnalysis, Interp};
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn cbr_applicable_two_scalar_params() {
        let w = ApsiRadb4::new();
        match context_set(w.program().func(w.ts())) {
            ContextAnalysis::Applicable(srcs) => {
                assert_eq!(
                    srcs,
                    vec![peak_ir::ContextSource::Param(0), peak_ir::ContextSource::Param(1)]
                );
            }
            ContextAnalysis::NotApplicable(why) => panic!("{why}"),
        }
    }

    #[test]
    fn exactly_three_contexts_with_weights() {
        let w = ApsiRadb4::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let mut seen = HashSet::new();
        let mut c1 = 0;
        for inv in 0..700 {
            let a = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            let key = (a[0].as_i64(), a[1].as_i64());
            if key == (1, 256) {
                c1 += 1;
            }
            seen.insert(key);
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(c1, 400, "context 1 appears 4/7 of the time");
    }

    #[test]
    fn butterfly_is_invertible_sum() {
        // o0+o1+o2+o3 = 4*in0 + 2*(in1-in3)… spot check energy moves.
        let w = ApsiRadb4::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let ch = w.program().mem_by_name("ch").unwrap();
        let before = mem.load(ch, 0);
        Interp::default()
            .run(w.program(), w.ts(), &[Value::I64(8), Value::I64(32)], &mut mem)
            .unwrap();
        assert_ne!(before, mem.load(ch, 0));
    }

    #[test]
    fn all_contexts_do_equal_total_work() {
        // ido*l1 is constant across the three shapes — the contexts differ
        // in loop structure, not volume (so their EVALs differ by loop
        // overhead, like the per-context σ differences in Table 1).
        let w = ApsiRadb4::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let interp = Interp::default();
        let steps: Vec<u64> = [(1i64, 256i64), (8, 32), (64, 4)]
            .iter()
            .map(|&(ido, l1)| {
                interp
                    .run(
                        w.program(),
                        w.ts(),
                        &[Value::I64(ido), Value::I64(l1)],
                        &mut mem,
                    )
                    .unwrap()
                    .steps
            })
            .collect();
        // Same inner-body executions; step totals differ only by loop
        // bookkeeping (≤ 35%).
        let max = *steps.iter().max().unwrap() as f64;
        let min = *steps.iter().min().unwrap() as f64;
        assert!(max / min < 1.35, "{steps:?}");
    }
}
