//! Cross-workload checks of the Table-1 traits each benchmark encodes.

use peak_ir::{context_set, ContextAnalysis, Interp, MemoryImage};
use peak_workloads::{all_workloads, Dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Figure-1 applicability matches each benchmark's paper method: CBR rows
/// must pass context analysis, RBR rows (except the scalar-driven MESA
/// and the over-budget MGRID) must fail it.
#[test]
fn context_analysis_matches_method_family() {
    for w in all_workloads() {
        let applicable =
            matches!(context_set(w.program().func(w.ts())), ContextAnalysis::Applicable(_));
        match w.paper_row().method {
            "CBR" => assert!(applicable, "{}: CBR needs Figure-1 applicability", w.name()),
            "MBR" => assert!(
                applicable,
                "{}: MGRID's analysis succeeds (the consultant rejects on context count)",
                w.name()
            ),
            "RBR" => {
                // MESA's control derives from its scalar parameter; its
                // RBR assignment comes from unbounded contexts, not from
                // analysis failure.
                if w.name() != "MESA" {
                    assert!(
                        !applicable,
                        "{}: integer/irregular codes fail the Figure-1 analysis",
                        w.name()
                    );
                }
            }
            other => panic!("unknown method {other}"),
        }
    }
}

/// CBR benchmarks expose exactly the context counts of Table 1.
#[test]
fn context_counts_match_table1() {
    for w in all_workloads() {
        let row = w.paper_row();
        if row.method != "CBR" {
            continue;
        }
        let ContextAnalysis::Applicable(sources) = context_set(w.program().func(w.ts()))
        else {
            panic!("{}: analysis must apply", w.name())
        };
        let mut rng = StdRng::seed_from_u64(0x7472_6169_6e00);
        let mut mem = MemoryImage::new(w.program());
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let mut seen = HashSet::new();
        let n = 300.min(w.invocations(Dataset::Train));
        for inv in 0..n {
            let args = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            // Count full-key contexts, with run-time constants folded the
            // way the profile does: constants make keys identical anyway.
            let key: Vec<u64> = sources
                .iter()
                .map(|s| match s {
                    peak_ir::ContextSource::Param(i) => args[*i].context_key(),
                    peak_ir::ContextSource::GlobalScalar { mem: m, index } => {
                        mem.load(*m, *index).context_key()
                    }
                })
                .collect();
            seen.insert(key);
        }
        assert_eq!(
            seen.len(),
            row.contexts as usize,
            "{}: Table 1 lists {} context(s)",
            w.name(),
            row.contexts
        );
    }
}

/// Invocation-count ordering mirrors the paper's: the scaled counts keep
/// MESA/VORTEX/BZIP2/GZIP huge and APPLU/ART/SWIM tiny.
#[test]
fn invocation_count_ordering_preserved() {
    let count = |name: &str| {
        peak_workloads::workload_by_name(name)
            .unwrap()
            .invocations(Dataset::Train)
    };
    // Small-count group exactly as in the paper.
    assert_eq!(count("SWIM"), 198);
    assert_eq!(count("APPLU"), 250);
    assert_eq!(count("ART"), 250);
    assert_eq!(count("MGRID"), 2410);
    assert_eq!(count("EQUAKE"), 2709);
    // Large-count group stays largest.
    for big in ["BZIP2", "GZIP", "VORTEX", "MESA", "WUPWISE"] {
        assert!(
            count(big) > 10_000,
            "{big} carries a paper-scale invocation count"
        );
    }
}

/// Workload streams are deterministic per dataset: two replays of the
/// same dataset produce identical argument sequences and memory effects.
#[test]
fn streams_are_replayable() {
    for w in all_workloads() {
        let replay = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut mem = MemoryImage::new(w.program());
            w.setup(Dataset::Train, &mut mem, &mut rng);
            let mut out = Vec::new();
            for inv in 0..10.min(w.invocations(Dataset::Train)) {
                out.push(w.args(Dataset::Train, inv, &mut mem, &mut rng));
            }
            out
        };
        assert_eq!(replay(42), replay(42), "{}", w.name());
    }
}

/// Every workload's ref input does strictly more total work than train
/// (the paper tunes on train and reports on ref; the datasets must
/// actually differ).
#[test]
fn ref_does_more_work_than_train() {
    let interp = Interp::default();
    for w in all_workloads() {
        let steps_of = |ds: Dataset| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut mem = MemoryImage::new(w.program());
            w.setup(ds, &mut mem, &mut rng);
            let mut total = 0u64;
            for inv in 0..5 {
                let args = w.args(ds, inv, &mut mem, &mut rng);
                total += interp.run(w.program(), w.ts(), &args, &mut mem).unwrap().steps;
            }
            (total, w.invocations(ds) as u64)
        };
        let (train_steps, train_inv) = steps_of(Dataset::Train);
        let (ref_steps, ref_inv) = steps_of(Dataset::Ref);
        // Per-invocation work and/or invocation count grows.
        assert!(
            ref_steps * ref_inv > train_steps * train_inv,
            "{}: ref run must outweigh train run",
            w.name()
        );
    }
}
