//! Textual IR round-trip over every workload program: Display → parse →
//! Display must be a fixpoint, and the reparsed program must validate and
//! execute identically.

use peak_ir::{parse_program, Interp, MemoryImage};
use peak_workloads::{all_workloads, Dataset};
use rand::SeedableRng;

fn render(prog: &peak_ir::Program) -> String {
    let mut text = String::new();
    for (mi, m) in prog.mems.iter().enumerate() {
        text.push_str(&format!("mem m{mi}: {}[{}]\n", m.elem, m.len));
    }
    for f in &prog.funcs {
        text.push_str(&format!("{f}\n"));
    }
    text
}

#[test]
fn every_workload_roundtrips_through_text() {
    for w in all_workloads() {
        let text = render(w.program());
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("{}: {e}\n--- source ---\n{text}", w.name()));
        peak_ir::validate_program(&reparsed).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let text2 = render(&reparsed);
        assert_eq!(text, text2, "{}: render→parse→render is a fixpoint", w.name());
    }
}

#[test]
fn reparsed_programs_execute_identically() {
    let interp = Interp::default();
    for w in all_workloads() {
        let reparsed = parse_program(&render(w.program())).unwrap();
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(3);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(3);
        let mut m1 = MemoryImage::new(w.program());
        let mut m2 = MemoryImage::new(&reparsed);
        w.setup(Dataset::Train, &mut m1, &mut rng1);
        w.setup(Dataset::Train, &mut m2, &mut rng2);
        for inv in 0..3 {
            let a1 = w.args(Dataset::Train, inv, &mut m1, &mut rng1);
            let a2 = w.args(Dataset::Train, inv, &mut m2, &mut rng2);
            let r1 = interp.run(w.program(), w.ts(), &a1, &mut m1).unwrap();
            let r2 = interp.run(&reparsed, w.ts(), &a2, &mut m2).unwrap();
            assert_eq!(r1.ret, r2.ret, "{} inv {inv}", w.name());
        }
        assert_eq!(m1, m2, "{}", w.name());
    }
}

#[test]
fn optimized_programs_roundtrip_too() {
    // Harder shapes: -O3 output has selects, prefetches, aligned blocks,
    // pointer constants.
    for w in all_workloads() {
        let cv = peak_opt::optimize(w.program(), w.ts(), &peak_opt::OptConfig::o3());
        let text = render(&cv.program);
        let reparsed = parse_program(&text)
            .unwrap_or_else(|e| panic!("{} (O3): {e}", w.name()));
        assert_eq!(text, render(&reparsed), "{} (O3)", w.name());
    }
}
