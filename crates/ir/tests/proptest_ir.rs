//! Property tests on core IR data structures and analyses.

use peak_ir::dataflow::BitSet;
use peak_ir::{BinOp, Cfg, Dominators, FunctionBuilder, LoopForest, Type};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// BitSet behaves like a reference set implementation.
    #[test]
    fn bitset_matches_btreeset(ops in prop::collection::vec((0usize..200, any::<bool>()), 0..300)) {
        let mut bs = BitSet::new(200);
        let mut reference = BTreeSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), reference.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), reference.remove(&v));
            }
        }
        prop_assert_eq!(bs.count(), reference.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), reference.iter().copied().collect::<Vec<_>>());
    }

    /// Union is commutative and idempotent at the set level.
    #[test]
    fn bitset_union_laws(a in prop::collection::btree_set(0usize..128, 0..40),
                         b in prop::collection::btree_set(0usize..128, 0..40)) {
        let mk = |s: &BTreeSet<usize>| {
            let mut bs = BitSet::new(128);
            for &v in s { bs.insert(v); }
            bs
        };
        let mut ab = mk(&a);
        ab.union_with(&mk(&b));
        let mut ba = mk(&b);
        ba.union_with(&mk(&a));
        prop_assert_eq!(ab.iter().collect::<Vec<_>>(), ba.iter().collect::<Vec<_>>());
        let mut aa = mk(&a);
        prop_assert!(!aa.union_with(&mk(&a)), "self-union changes nothing");
    }

    /// Interpreter arithmetic matches native Rust semantics.
    #[test]
    fn binop_eval_matches_rust(a in any::<i64>(), b in any::<i64>()) {
        use peak_ir::interp::eval_binop;
        use peak_ir::Value::I64;
        prop_assert_eq!(eval_binop(BinOp::Add, I64(a), I64(b)).unwrap(), I64(a.wrapping_add(b)));
        prop_assert_eq!(eval_binop(BinOp::Mul, I64(a), I64(b)).unwrap(), I64(a.wrapping_mul(b)));
        prop_assert_eq!(eval_binop(BinOp::Xor, I64(a), I64(b)).unwrap(), I64(a ^ b));
        prop_assert_eq!(eval_binop(BinOp::Min, I64(a), I64(b)).unwrap(), I64(a.min(b)));
        prop_assert_eq!(
            eval_binop(BinOp::Lt, I64(a), I64(b)).unwrap(),
            I64(i64::from(a < b))
        );
    }

    /// Loop nests of arbitrary depth are recognized with correct depths,
    /// and trip counts evaluate to the product structure.
    #[test]
    fn nested_loops_analyzed(depth in 1usize..4, trips in 1i64..5) {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        fn nest(b: &mut FunctionBuilder, acc: peak_ir::VarId, d: usize, trips: i64) {
            let iv = b.temp(Type::I64);
            b.for_loop(iv, 0i64, trips, 1, |b| {
                if d > 1 {
                    nest(b, acc, d - 1, trips);
                } else {
                    b.binary_into(acc, BinOp::Add, acc, 1i64);
                }
            });
        }
        nest(&mut b, acc, depth, trips);
        b.ret(None);
        let f = b.finish();
        let _ = n;
        let cfg = Cfg::build(&f);
        let dom = Dominators::build(&f, &cfg);
        let forest = LoopForest::build(&f, &cfg, &dom);
        prop_assert_eq!(forest.loops.len(), depth);
        let max_depth = forest.loops.iter().map(|l| l.depth).max().unwrap();
        prop_assert_eq!(max_depth as usize, depth);
        // The innermost body executes trips^depth times.
        let mut prog = peak_ir::Program::new();
        let fid = prog.add_func(f);
        let mut mem = peak_ir::MemoryImage::new(&prog);
        let out = peak_ir::Interp::default()
            .run(&prog, fid, &[peak_ir::Value::I64(0)], &mut mem)
            .unwrap();
        let innermost_body = *out.block_entries.iter().max().unwrap();
        prop_assert!(innermost_body >= trips.pow(depth as u32) as u64);
    }

    /// Dominator property: the entry dominates every reachable block, and
    /// idom is itself a dominator.
    #[test]
    fn dominators_sound(branches in prop::collection::vec(any::<bool>(), 1..6)) {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("p", Type::I64);
        for &two_sided in &branches {
            if two_sided {
                b.if_then_else(p, |_| {}, |_| {});
            } else {
                b.if_then(p, |_| {});
            }
        }
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let dom = Dominators::build(&f, &cfg);
        for &blk in &cfg.rpo {
            prop_assert!(dom.dominates(f.entry, blk));
            if blk != f.entry {
                let idom = dom.idom[blk.index()].unwrap();
                prop_assert!(dom.dominates(idom, blk));
            }
        }
    }
}
