//! Translation-validation support: a structural IR verifier that can run
//! between any two pipeline stages, and the *observation model* the
//! semantic oracle compares across them.
//!
//! [`validate`](crate::validate) checks well-formedness (dangling ids,
//! type mismatches). This module layers the stronger gates on top:
//!
//! * [`verify_function`] — CFG edge/terminator consistency, branch and
//!   select condition typing, loop-header invariants (every latch inside
//!   the loop body, dominated by the header, with a back edge to it), and
//!   an optional strict definite-initialization check (def-before-use).
//! * [`Observation`] — everything externally visible about one execution
//!   of a tuning section: return value, instrumentation counters, the
//!   ordered store and call event streams, the final memory image, and
//!   the trap (if any). Captured on the reference interpreter via
//!   [`ObsTrace`](crate::interp::ObsTrace).
//! * [`compare_observations`] — equality of two observations at a chosen
//!   [`ObsLevel`]. Passes legitimately differ in how much of the
//!   observation they preserve (dead-store elimination drops store
//!   events, inlining drops call events), so the level is per-pass
//!   metadata supplied by `peak-opt`.
//!
//! Float comparisons are *bitwise* (`f64::to_bits`): the oracle must not
//! treat two identical NaNs as diverging, nor `0.0` and `-0.0` as equal
//! when a pass flipped a sign.

use crate::cfg::{Cfg, Dominators};
use crate::func::Function;
use crate::interp::{ExecError, Interp, ObsTrace};
use crate::loops::LoopForest;
use crate::program::{MemoryImage, Program};
use crate::reaching::{DefSite, ReachingDefs, UseSite};
use crate::stmt::{Rvalue, Stmt, Terminator};
use crate::types::{FuncId, Operand, Type, Value, VarId};
use crate::validate::validate_function;

/// A verifier failure: which function, which check, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the failure occurred.
    pub func: String,
    /// Short name of the violated check (`"validate"`, `"cond-type"`,
    /// `"loop-header"`, `"def-before-use"`).
    pub check: &'static str,
    /// Description of the violation.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in {} [{}]: {}", self.func, self.check, self.msg)
    }
}

impl std::error::Error for VerifyError {}

/// Knobs for [`verify_function`].
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Reject uses of locals that are possibly uninitialized on some path
    /// (the reaching-defs entry definition reaches the use). The
    /// interpreter zero-initializes registers, so such programs still
    /// have defined behavior; strict mode is for generated programs whose
    /// producers guarantee definite initialization.
    pub strict_init: bool,
}

/// Verify a whole program. See [`verify_function`].
pub fn verify_program(prog: &Program, opts: &VerifyOptions) -> Result<(), VerifyError> {
    for (i, _) in prog.funcs.iter().enumerate() {
        verify_function(prog, FuncId(i as u32), opts)?;
    }
    Ok(())
}

/// Verify one function: structural well-formedness plus the
/// pipeline-stage invariants described in the module docs. Runnable after
/// any pass — every optimizer output must satisfy it.
pub fn verify_function(
    prog: &Program,
    func: FuncId,
    opts: &VerifyOptions,
) -> Result<(), VerifyError> {
    let f = prog.func(func);
    // Layer 1: dangling ids, types, terminator target ranges.
    validate_function(prog, func).map_err(|e| VerifyError {
        func: e.func,
        check: "validate",
        msg: e.msg,
    })?;
    check_cond_types(f)?;
    let cfg = Cfg::build(f);
    check_loop_invariants(f, &cfg)?;
    if opts.strict_init {
        check_definite_init(f, &cfg)?;
    }
    Ok(())
}

/// Branch and select conditions must be integers: the interpreter and the
/// simulator both decide them with `Value::is_true`, which is only
/// meaningful for `I64`.
fn check_cond_types(f: &Function) -> Result<(), VerifyError> {
    let err = |msg: String| VerifyError { func: f.name.clone(), check: "cond-type", msg };
    let op_ty = |op: &Operand| match op {
        Operand::Var(v) => f.var_ty(*v),
        Operand::Const(c) => c.ty(),
    };
    for b in f.block_ids() {
        let blk = f.block(b);
        for (si, s) in blk.stmts.iter().enumerate() {
            if let Stmt::Assign { rv: Rvalue::Select { cond, .. }, .. } = s {
                if op_ty(cond) != Type::I64 {
                    return Err(err(format!(
                        "non-integer select condition at b{}[{si}]",
                        b.0
                    )));
                }
            }
        }
        if let Terminator::Branch { cond, .. } = &blk.term {
            if op_ty(cond) != Type::I64 {
                return Err(err(format!("non-integer branch condition at b{}", b.0)));
            }
        }
    }
    Ok(())
}

/// Natural-loop invariants: every loop discovered in the CFG must have
/// its header inside its own body, every latch inside the body and
/// dominated by the header, and every latch must actually have the back
/// edge (header among its terminator successors). A pass that rewires
/// terminators while leaving a half-updated loop behind fails here.
fn check_loop_invariants(f: &Function, cfg: &Cfg) -> Result<(), VerifyError> {
    let err = |msg: String| VerifyError { func: f.name.clone(), check: "loop-header", msg };
    let dom = Dominators::build(f, cfg);
    let forest = LoopForest::build(f, cfg, &dom);
    for (li, l) in forest.loops.iter().enumerate() {
        if !l.body.contains(&l.header) {
            return Err(err(format!("loop {li}: header b{} not in its body", l.header.0)));
        }
        if l.latches.is_empty() {
            return Err(err(format!("loop {li}: no latches (header b{})", l.header.0)));
        }
        for &latch in &l.latches {
            if !l.body.contains(&latch) {
                return Err(err(format!(
                    "loop {li}: latch b{} outside the loop body",
                    latch.0
                )));
            }
            if !dom.dominates(l.header, latch) {
                return Err(err(format!(
                    "loop {li}: header b{} does not dominate latch b{}",
                    l.header.0, latch.0
                )));
            }
            if !f.block(latch).term.successors().any(|s| s == l.header) {
                return Err(err(format!(
                    "loop {li}: latch b{} has no back edge to header b{}",
                    latch.0, l.header.0
                )));
            }
        }
    }
    Ok(())
}

/// Strict definite initialization: no use of a non-parameter local may be
/// reached by its entry (uninitialized) definition.
fn check_definite_init(f: &Function, cfg: &Cfg) -> Result<(), VerifyError> {
    let err = |msg: String| VerifyError { func: f.name.clone(), check: "def-before-use", msg };
    let rd = ReachingDefs::build(f, cfg);
    let is_param = |v: VarId| v.index() < f.params.len();
    let mut uses: Vec<VarId> = Vec::new();
    for b in f.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        let blk = f.block(b);
        for (si, s) in blk.stmts.iter().enumerate() {
            uses.clear();
            s.uses(&mut uses);
            for &v in uses.iter().filter(|&&v| !is_param(v)) {
                let chain = rd.ud_chain(f, v, UseSite::Stmt { block: b, stmt: si });
                if chain.iter().any(|d| matches!(d, DefSite::Entry(_))) {
                    return Err(err(format!(
                        "possibly-uninitialized use of v{} at b{}[{si}]",
                        v.0, b.0
                    )));
                }
            }
        }
        uses.clear();
        blk.term.uses(&mut uses);
        for &v in uses.iter().filter(|&&v| !is_param(v)) {
            let chain = rd.ud_chain(f, v, UseSite::Term { block: b });
            if chain.iter().any(|d| matches!(d, DefSite::Entry(_))) {
                return Err(err(format!(
                    "possibly-uninitialized use of v{} in terminator of b{}",
                    v.0, b.0
                )));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Observation model
// ---------------------------------------------------------------------------

/// How much of the observation a transformation preserves. The levels
/// form a lattice over the two event streams; *every* level also demands
/// equal return value, counters, final memory, and trap behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Only final state: return value, counters, final memory, trap.
    FinalOnly,
    /// Final state plus the ordered call event stream (passes that remove
    /// or reorder stores but never touch calls, e.g. dead-store
    /// elimination).
    CallsExact,
    /// Final state plus the ordered store event stream (passes that
    /// remove call events but never stores, e.g. inlining).
    StoresExact,
    /// Full trace equality: stores and calls, in order.
    Exact,
}

/// Default cap on captured events per stream (stores and calls each).
pub const DEFAULT_TRACE_LIMIT: usize = 1 << 16;

/// Everything externally visible about one execution: the unit the
/// semantic oracle compares before and after a pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Return value (`None` for void functions or trapped executions).
    pub ret: Option<Value>,
    /// Instrumentation counters.
    pub counters: Vec<u64>,
    /// Why execution trapped, if it did.
    pub trap: Option<ExecError>,
    /// Ordered store events `(region, index, value)`, possibly truncated.
    pub stores: Vec<(crate::types::MemId, i64, Value)>,
    /// Ordered call events `(callee, args)`, possibly truncated.
    pub calls: Vec<(FuncId, Vec<Value>)>,
    /// True when either event stream hit the capture cap.
    pub truncated: bool,
    /// The memory image after execution (or at the trap point).
    pub final_mem: MemoryImage,
}

/// Execute `func(args)` on the reference interpreter against a *copy* of
/// `init` and capture the full observation. Traps are captured, not
/// propagated: a trapping execution still yields the events and memory
/// state up to the trap.
pub fn observe(
    interp: &Interp,
    prog: &Program,
    func: FuncId,
    args: &[Value],
    init: &MemoryImage,
    trace_limit: usize,
) -> Observation {
    let mut mem = init.clone();
    let mut trace = ObsTrace::new(trace_limit);
    match interp.run_observed(prog, func, args, &mut mem, &mut trace) {
        Ok(out) => Observation {
            ret: out.ret,
            counters: out.counters,
            trap: None,
            stores: trace.stores,
            calls: trace.calls,
            truncated: trace.truncated,
            final_mem: mem,
        },
        Err(e) => Observation {
            ret: None,
            counters: Vec::new(),
            trap: Some(e),
            stores: trace.stores,
            calls: trace.calls,
            truncated: trace.truncated,
            final_mem: mem,
        },
    }
}

/// Bitwise value equality: floats compare by bit pattern, so identical
/// NaNs are equal and `0.0 != -0.0`.
pub fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::I64(x), Value::I64(y)) => x == y,
        (Value::F64(x), Value::F64(y)) => x.to_bits() == y.to_bits(),
        (Value::Ptr(x), Value::Ptr(y)) => x == y,
        _ => false,
    }
}

fn buffers_eq(a: &crate::program::Buffer, b: &crate::program::Buffer) -> Option<usize> {
    use crate::program::Buffer;
    if a.len() != b.len() {
        return Some(0);
    }
    match (a, b) {
        (Buffer::I64(x), Buffer::I64(y)) => x.iter().zip(y).position(|(p, q)| p != q),
        (Buffer::F64(x), Buffer::F64(y)) => {
            x.iter().zip(y).position(|(p, q)| p.to_bits() != q.to_bits())
        }
        (Buffer::Ptr(x), Buffer::Ptr(y)) => x.iter().zip(y).position(|(p, q)| p != q),
        _ => Some(0),
    }
}

/// First divergence between two observations at `level`, or `Ok(())`.
///
/// `pre` is the reference (pre-pass) observation and `post` the candidate
/// (post-pass) one; the returned message names the first diverging
/// observable in checking order: trap, return value, counters, final
/// memory, then the event streams the level demands. Event streams are
/// only compared when neither side was truncated.
pub fn compare_observations(
    pre: &Observation,
    post: &Observation,
    level: ObsLevel,
) -> Result<(), String> {
    if pre.trap != post.trap {
        return Err(format!(
            "trap behavior diverged: reference {} vs candidate {}",
            fmt_trap(&pre.trap),
            fmt_trap(&post.trap)
        ));
    }
    match (&pre.ret, &post.ret) {
        (None, None) => {}
        (Some(a), Some(b)) if values_eq(a, b) => {}
        (a, b) => {
            return Err(format!("return value diverged: {a:?} vs {b:?}"));
        }
    }
    let nc = pre.counters.len().max(post.counters.len());
    for i in 0..nc {
        let a = pre.counters.get(i).copied().unwrap_or(0);
        let b = post.counters.get(i).copied().unwrap_or(0);
        if a != b {
            return Err(format!("counter c{i} diverged: {a} vs {b}"));
        }
    }
    for (mi, (a, b)) in pre.final_mem.bufs.iter().zip(&post.final_mem.bufs).enumerate() {
        if let Some(ei) = buffers_eq(a, b) {
            return Err(format!(
                "final memory diverged at m{mi}[{ei}]: {:?} vs {:?}",
                a.get(ei.min(a.len().saturating_sub(1))),
                b.get(ei.min(b.len().saturating_sub(1)))
            ));
        }
    }
    let compare_stores = matches!(level, ObsLevel::Exact | ObsLevel::StoresExact);
    let compare_calls = matches!(level, ObsLevel::Exact | ObsLevel::CallsExact);
    let traces_complete = !pre.truncated && !post.truncated;
    if compare_stores && traces_complete {
        if pre.stores.len() != post.stores.len() {
            return Err(format!(
                "store event count diverged: {} vs {}",
                pre.stores.len(),
                post.stores.len()
            ));
        }
        for (i, (a, b)) in pre.stores.iter().zip(&post.stores).enumerate() {
            if a.0 != b.0 || a.1 != b.1 || !values_eq(&a.2, &b.2) {
                return Err(format!("store event {i} diverged: {a:?} vs {b:?}"));
            }
        }
    }
    if compare_calls && traces_complete {
        if pre.calls.len() != post.calls.len() {
            return Err(format!(
                "call event count diverged: {} vs {}",
                pre.calls.len(),
                post.calls.len()
            ));
        }
        for (i, (a, b)) in pre.calls.iter().zip(&post.calls).enumerate() {
            let args_eq = a.1.len() == b.1.len()
                && a.1.iter().zip(&b.1).all(|(x, y)| values_eq(x, y));
            if a.0 != b.0 || !args_eq {
                return Err(format!("call event {i} diverged: {a:?} vs {b:?}"));
            }
        }
    }
    Ok(())
}

fn fmt_trap(t: &Option<ExecError>) -> String {
    match t {
        None => "normal return".into(),
        Some(e) => format!("trap ({e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::MemRef;
    use crate::types::{BinOp, BlockId, MemId};

    fn store_loop() -> (Program, FuncId, MemId) {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 8);
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let t = b.binary(BinOp::Mul, i, 3i64);
            b.store(MemRef::global(a, i), t);
        });
        b.ret(Some(Operand::const_i64(7)));
        let f = prog.add_func(b.finish());
        (prog, f, a)
    }

    #[test]
    fn well_formed_function_verifies() {
        let (prog, f, _) = store_loop();
        verify_program(&prog, &VerifyOptions::default()).unwrap();
        verify_function(&prog, f, &VerifyOptions { strict_init: true }).unwrap();
    }

    #[test]
    fn float_branch_condition_rejected() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", None);
        let x = b.param("x", Type::F64);
        b.if_then(x, |_| {});
        b.ret(None);
        prog.add_func(b.finish());
        let e = verify_program(&prog, &VerifyOptions::default()).unwrap_err();
        assert_eq!(e.check, "cond-type");
    }

    #[test]
    fn broken_back_edge_rejected() {
        // Build a loop, then retarget the latch somewhere else while the
        // loop body blocks still form a cycle through the header... we
        // corrupt the easier invariant: drop the latch's back edge so the
        // "loop" found via another latch keeps a latch with no edge.
        let (mut prog, f, _) = store_loop();
        // Find a block whose terminator jumps to a lower-numbered block
        // (the back edge) and break it only in the LoopForest's view by
        // checking the invariant holds first.
        verify_function(&prog, f, &VerifyOptions::default()).unwrap();
        // Retarget every back edge to a fresh self-looping block pair is
        // overkill; instead corrupt dominance: make block 0 jump straight
        // into the loop body, bypassing the header.
        let func = prog.func_mut(f);
        let header = BlockId(1);
        let body = func
            .block_ids()
            .find(|&b| b != header && func.block(b).term.successors().any(|s| s == header))
            .expect("loop body block with back edge");
        // Entry now jumps directly to the latch, so the header no longer
        // dominates it while the back edge still exists.
        func.block_mut(BlockId(0)).term = Terminator::Jump(body);
        let res = verify_function(&prog, f, &VerifyOptions::default());
        if let Err(e) = res {
            assert!(e.check == "loop-header" || e.check == "validate", "{e}");
        }
        // (If the CFG rewrite dissolved the natural loop entirely the
        // verifier legitimately accepts it; the assertion above only
        // constrains *which* check fires when one does.)
    }

    #[test]
    fn uninitialized_use_rejected_in_strict_mode() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.var("x", Type::I64);
        let y = b.binary(BinOp::Add, x, 1i64); // x never assigned
        b.ret(Some(Operand::Var(y)));
        prog.add_func(b.finish());
        assert!(verify_program(&prog, &VerifyOptions::default()).is_ok());
        let e = verify_program(&prog, &VerifyOptions { strict_init: true }).unwrap_err();
        assert_eq!(e.check, "def-before-use");
    }

    #[test]
    fn observation_captures_ordered_stores() {
        let (prog, f, a) = store_loop();
        let init = MemoryImage::new(&prog);
        let obs = observe(&Interp::default(), &prog, f, &[Value::I64(3)], &init, 1 << 10);
        assert_eq!(obs.trap, None);
        assert_eq!(obs.ret, Some(Value::I64(7)));
        assert_eq!(
            obs.stores,
            vec![
                (a, 0, Value::I64(0)),
                (a, 1, Value::I64(3)),
                (a, 2, Value::I64(6)),
            ]
        );
        assert_eq!(obs.final_mem.load(a, 2), Value::I64(6));
    }

    #[test]
    fn observation_captures_trap() {
        let (prog, f, _) = store_loop();
        let init = MemoryImage::new(&prog);
        let obs = observe(&Interp::default(), &prog, f, &[Value::I64(100)], &init, 1 << 10);
        assert!(matches!(obs.trap, Some(ExecError::OutOfBounds { .. })));
        assert_eq!(obs.stores.len(), 8, "stores up to the trap are kept");
    }

    #[test]
    fn compare_detects_store_divergence_only_at_store_levels() {
        let (prog, f, a) = store_loop();
        let init = MemoryImage::new(&prog);
        let pre = observe(&Interp::default(), &prog, f, &[Value::I64(3)], &init, 1 << 10);
        let mut post = pre.clone();
        // Drop one store event but keep final memory identical (a "dead
        // store" style difference).
        post.stores.remove(1);
        assert!(compare_observations(&pre, &post, ObsLevel::Exact).is_err());
        assert!(compare_observations(&pre, &post, ObsLevel::StoresExact).is_err());
        assert!(compare_observations(&pre, &post, ObsLevel::CallsExact).is_ok());
        assert!(compare_observations(&pre, &post, ObsLevel::FinalOnly).is_ok());
        // Final-memory divergence is caught at every level.
        post.final_mem.store(a, 0, Value::I64(99));
        assert!(compare_observations(&pre, &post, ObsLevel::FinalOnly).is_err());
    }

    #[test]
    fn nan_final_values_do_not_diverge() {
        let mut a = Observation {
            ret: Some(Value::F64(f64::NAN)),
            counters: vec![],
            trap: None,
            stores: vec![],
            calls: vec![],
            truncated: false,
            final_mem: MemoryImage::empty(),
        };
        let b = a.clone();
        compare_observations(&a, &b, ObsLevel::Exact).unwrap();
        a.ret = Some(Value::F64(-0.0));
        let mut c = a.clone();
        c.ret = Some(Value::F64(0.0));
        assert!(compare_observations(&a, &c, ObsLevel::Exact).is_err());
    }

    #[test]
    fn truncated_traces_fall_back_to_final_state() {
        let (prog, f, _) = store_loop();
        let init = MemoryImage::new(&prog);
        // Capture with a 1-event cap: trace truncates, final memory still
        // fully compared.
        let pre = observe(&Interp::default(), &prog, f, &[Value::I64(5)], &init, 1);
        assert!(pre.truncated);
        let post = observe(&Interp::default(), &prog, f, &[Value::I64(5)], &init, 1 << 10);
        compare_observations(&pre, &post, ObsLevel::Exact).unwrap();
    }
}
