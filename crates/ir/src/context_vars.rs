//! Context-variable analysis (paper Figure 1).
//!
//! Context-based rating groups TS invocations by *context*: the values of
//! all program variables that influence execution time. The paper finds
//! these by traversing every control statement and recursively following
//! UD chains of the variables it uses back to the entry of the TS. The
//! inputs reached are the context variables; if any of them is not a
//! scalar, CBR is not applied.
//!
//! Three kinds of references count as scalars (paper §2.2):
//! 1. plain scalar variables (here: TS parameters of any type),
//! 2. array references with constant subscripts (`Load(Global(m), Const)`),
//! 3. references through pointers not changed within the TS, again with
//!    constant subscripts (verified via the simple points-to analysis).

use crate::cfg::Cfg;
use crate::func::Function;
use crate::points_to::PointsTo;
use crate::reaching::{DefSite, ReachingDefs, UseSite};
use crate::stmt::{MemBase, Rvalue, Stmt};
use crate::types::{MemId, Operand, VarId};
use std::collections::HashSet;

/// One member of the context set: where the rating runtime must read the
/// value at each TS invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContextSource {
    /// A TS parameter (index into `Function::params`).
    Param(usize),
    /// A global scalar: `mem[index]` with a constant subscript.
    GlobalScalar {
        /// Region holding the scalar.
        mem: MemId,
        /// Constant element index.
        index: i64,
    },
}

/// Result of the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextAnalysis {
    /// CBR is applicable; these are the context variables, sorted and
    /// deduplicated. (Run-time constants among them are removed later
    /// using a profile, see `peak-core`.)
    Applicable(Vec<ContextSource>),
    /// CBR is not applicable; the offending reason for diagnostics.
    NotApplicable(String),
}

impl ContextAnalysis {
    /// Context sources if applicable.
    pub fn sources(&self) -> Option<&[ContextSource]> {
        match self {
            ContextAnalysis::Applicable(v) => Some(v),
            ContextAnalysis::NotApplicable(_) => None,
        }
    }
}

/// The paper's `GetContextSet(TS)` (Figure 1): returns the context set, or
/// `NotApplicable` if a non-scalar context variable exists.
pub fn context_set(f: &Function) -> ContextAnalysis {
    let cfg = Cfg::build(f);
    let rd = ReachingDefs::build(f, &cfg);
    let pts = PointsTo::build(f);
    let mut ctx: HashSet<ContextSource> = HashSet::new();
    // "Set the state of each statement as undone": done-set over def sites
    // prevents infinite recursion around loops.
    let mut done: HashSet<DefSite> = HashSet::new();
    let mut uses = Vec::new();
    for b in f.block_ids() {
        if !cfg.is_reachable(b) {
            continue;
        }
        // "For each control statement s in TS": branches are the control
        // statements in this IR.
        if !matches!(f.block(b).term, crate::stmt::Terminator::Branch { .. }) {
            continue;
        }
        uses.clear();
        f.block(b).term.uses(&mut uses);
        for &v in &uses {
            if let Err(why) = trace(
                f,
                &rd,
                &pts,
                v,
                UseSite::Term { block: b },
                &mut ctx,
                &mut done,
            ) {
                return ContextAnalysis::NotApplicable(why);
            }
        }
    }
    let mut out: Vec<ContextSource> = ctx.into_iter().collect();
    out.sort();
    ContextAnalysis::Applicable(out)
}

/// The paper's `GetStmtContextSet(v, s)`: recursive UD-chain walk.
fn trace(
    f: &Function,
    rd: &ReachingDefs,
    pts: &PointsTo,
    v: VarId,
    site: UseSite,
    ctx: &mut HashSet<ContextSource>,
    done: &mut HashSet<DefSite>,
) -> Result<(), String> {
    for def in rd.ud_chain(f, v, site) {
        if !done.insert(def) {
            continue; // "if m is done: continue (avoid loop)"
        }
        match def {
            DefSite::Entry(ev) => {
                // "if m is the entry statement: v is in Input(TS)".
                // Parameters are scalars; a live-in non-parameter would be
                // an uninitialized local, which the validator rejects.
                match f.params.iter().position(|&p| p == ev) {
                    Some(pi) => {
                        ctx.insert(ContextSource::Param(pi));
                    }
                    None => {
                        return Err(format!(
                            "variable {} used before definition",
                            f.vars[ev.index()].name
                        ))
                    }
                }
            }
            DefSite::Stmt { block, stmt } => {
                let s = &f.block(block).stmts[stmt];
                let Stmt::Assign { rv, .. } = s else { unreachable!("def site is an assign") };
                match rv {
                    Rvalue::Load(mr) => {
                        // Scalar cases 2 and 3; anything else is non-scalar.
                        let Some(cidx) = mr.index.as_const() else {
                            return Err(format!(
                                "control value loaded through varying subscript at b{}[{}]",
                                block.0, stmt
                            ));
                        };
                        let idx = cidx.as_i64();
                        match mr.base {
                            MemBase::Global(m) => {
                                ctx.insert(ContextSource::GlobalScalar { mem: m, index: idx });
                            }
                            MemBase::Ptr(p) => {
                                // Pointer must be unchanged within the TS
                                // and point to exactly one region.
                                if !pts.is_single_def(p) {
                                    return Err(format!(
                                        "control value loaded via reassigned pointer v{}",
                                        p.0
                                    ));
                                }
                                let regions =
                                    pts.may_point_to(p, pts.discovered_regions().max(1));
                                if !pts.is_precise(p) || regions.len() != 1 {
                                    return Err(format!(
                                        "control value loaded via imprecise pointer v{}",
                                        p.0
                                    ));
                                }
                                // Resolve the pointer's constant offset.
                                let off = pointer_const_offset(f, p)
                                    .ok_or_else(|| {
                                        format!("pointer v{} has non-constant offset", p.0)
                                    })?;
                                ctx.insert(ContextSource::GlobalScalar {
                                    mem: regions[0],
                                    index: off + idx,
                                });
                            }
                        }
                    }
                    Rvalue::Call { .. } => {
                        return Err("control value produced by a call".to_string());
                    }
                    _ => {
                        // "For each variable r used in m: recurse."
                        let mut inner = Vec::new();
                        rv.uses(&mut inner);
                        for r in inner {
                            trace(f, rd, pts, r, UseSite::Stmt { block, stmt }, ctx, done)?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Constant offset of a single-def pointer created by `AddrOf(m, Const)`.
fn pointer_const_offset(f: &Function, p: VarId) -> Option<i64> {
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            if let Stmt::Assign { dst, rv } = s {
                if *dst == p {
                    return match rv {
                        Rvalue::AddrOf(_, Operand::Const(c)) => Some(c.as_i64()),
                        _ => None,
                    };
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::MemRef;
    use crate::types::{BinOp, Type};

    #[test]
    fn loop_bound_param_is_context_var() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |_| {});
        b.ret(None);
        let f = b.finish();
        let ca = context_set(&f);
        assert_eq!(
            ca,
            ContextAnalysis::Applicable(vec![ContextSource::Param(0)]),
            "n drives the loop exit"
        );
        let _ = n;
    }

    #[test]
    fn derived_bound_traces_to_params() {
        // bound = n * m; both params end up in the context set.
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let m = b.param("m", Type::I64);
        let i = b.var("i", Type::I64);
        let bound = b.binary(BinOp::Mul, n, m);
        b.for_loop(i, 0i64, bound, 1, |_| {});
        b.ret(None);
        let f = b.finish();
        assert_eq!(
            context_set(&f),
            ContextAnalysis::Applicable(vec![ContextSource::Param(0), ContextSource::Param(1)])
        );
    }

    #[test]
    fn global_scalar_with_const_subscript_ok() {
        let mut b = FunctionBuilder::new("f", None);
        let g = MemId(0);
        let i = b.var("i", Type::I64);
        let n = b.load(Type::I64, MemRef::global(g, 3i64));
        b.for_loop(i, 0i64, n, 1, |_| {});
        b.ret(None);
        let f = b.finish();
        assert_eq!(
            context_set(&f),
            ContextAnalysis::Applicable(vec![ContextSource::GlobalScalar { mem: g, index: 3 }])
        );
    }

    #[test]
    fn varying_subscript_disqualifies() {
        // Branch condition loaded from a[i] — a non-scalar context variable.
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let a = MemId(0);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            b.if_then(x, |_| {});
        });
        b.ret(None);
        let f = b.finish();
        assert!(matches!(context_set(&f), ContextAnalysis::NotApplicable(_)));
    }

    #[test]
    fn unchanged_pointer_with_const_subscript_ok() {
        // p = &g[5]; branch on *p — scalar case (3).
        let mut b = FunctionBuilder::new("f", None);
        let g = MemId(0);
        let p = b.addr_of(g, 5i64);
        let x = b.load(Type::I64, MemRef::ptr(p, 2i64));
        b.if_then(x, |_| {});
        b.ret(None);
        let f = b.finish();
        assert_eq!(
            context_set(&f),
            ContextAnalysis::Applicable(vec![ContextSource::GlobalScalar { mem: g, index: 7 }])
        );
    }

    #[test]
    fn pointer_param_load_disqualifies() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("p", Type::Ptr);
        let x = b.load(Type::I64, MemRef::ptr(p, 0i64));
        b.if_then(x, |_| {});
        b.ret(None);
        let f = b.finish();
        assert!(matches!(context_set(&f), ContextAnalysis::NotApplicable(_)));
    }

    #[test]
    fn no_branches_means_empty_context() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let y = b.binary(BinOp::Add, x, 1i64);
        b.ret(Some(y.into()));
        let f = b.finish();
        assert_eq!(context_set(&f), ContextAnalysis::Applicable(vec![]));
    }

    #[test]
    fn data_dependent_loop_on_param_is_still_scalar() {
        // while (x > 0) x >>= 1 — x is a param: scalar context var, CBR ok
        // (workload-wise this has many contexts; the *consultant* rejects
        // it on context-count grounds, not this analysis).
        let mut b = FunctionBuilder::new("f", None);
        let x = b.param("x", Type::I64);
        b.while_loop(
            |b| b.binary(BinOp::Gt, x, 0i64).into(),
            |b| {
                b.binary_into(x, BinOp::Shr, x, 1i64);
            },
        );
        b.ret(None);
        let f = b.finish();
        assert_eq!(
            context_set(&f),
            ContextAnalysis::Applicable(vec![ContextSource::Param(0)])
        );
    }
}
