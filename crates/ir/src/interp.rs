//! Reference interpreter.
//!
//! Executes IR directly, with no performance model. It defines the
//! *semantics* that every optimizer pass must preserve: the property tests
//! in `peak-opt` check `interp(original) == interp(optimized)` over random
//! inputs. It also counts basic-block entries, the ground truth for
//! model-based rating's component counts.

use crate::program::{MemoryImage, Program};
use crate::stmt::{MemBase, MemRef, Rvalue, Stmt, Terminator};
use crate::types::{BinOp, FuncId, MemId, Operand, PtrVal, UnOp, Value};

/// Observation trace captured during one interpreted call: the ordered
/// externally-visible events (memory stores and function calls) that the
/// translation-validation oracle compares across optimization passes.
///
/// Capture is bounded by `limit` per event stream; once exceeded the
/// stream stops growing and `truncated` is set, so comparisons fall back
/// to final-state-only checks instead of unbounded memory use.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsTrace {
    /// Ordered `(region, element index, value)` store events.
    pub stores: Vec<(MemId, i64, Value)>,
    /// Ordered `(callee, argument values)` call events.
    pub calls: Vec<(FuncId, Vec<Value>)>,
    /// Per-stream event cap.
    pub limit: usize,
    /// Set when either stream hit `limit` and stopped recording.
    pub truncated: bool,
}

impl ObsTrace {
    /// Empty trace with the given per-stream event cap.
    pub fn new(limit: usize) -> Self {
        ObsTrace { stores: Vec::new(), calls: Vec::new(), limit, truncated: false }
    }

    #[inline]
    fn record_store(&mut self, mem: MemId, idx: i64, val: Value) {
        if self.stores.len() < self.limit {
            self.stores.push((mem, idx, val));
        } else {
            self.truncated = true;
        }
    }

    #[inline]
    fn record_call(&mut self, func: FuncId, args: &[Value]) {
        if self.calls.len() < self.limit {
            self.calls.push((func, args.to_vec()));
        } else {
            self.truncated = true;
        }
    }
}

/// Why execution stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Per-call step budget exhausted (guards optimizer bugs that break
    /// loop exits).
    StepLimit,
    /// Memory access outside a region.
    OutOfBounds {
        /// Offending region.
        mem: u32,
        /// Offending element index.
        index: i64,
        /// Region length.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Call stack exceeded the recursion limit.
    RecursionLimit,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StepLimit => write!(f, "step limit exhausted"),
            ExecError::OutOfBounds { mem, index, len } => {
                write!(f, "out-of-bounds access m{mem}[{index}] (len {len})")
            }
            ExecError::DivByZero => write!(f, "integer division by zero"),
            ExecError::RecursionLimit => write!(f, "recursion limit exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of one interpreted call.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Return value of the called function, if any.
    pub ret: Option<Value>,
    /// Statements executed (across callees).
    pub steps: u64,
    /// Per-block entry counts of the *outermost* called function, indexed
    /// by block. This is `C_b` of paper Eq. (1).
    pub block_entries: Vec<u64>,
    /// Instrumentation counters (CounterInc statements), across callees.
    pub counters: Vec<u64>,
}

/// The interpreter. Holds per-run configuration; memory lives in the
/// caller-provided [`MemoryImage`].
#[derive(Debug, Clone)]
pub struct Interp {
    /// Maximum statements per outermost call.
    pub step_limit: u64,
    /// Maximum call depth.
    pub recursion_limit: usize,
    /// Number of instrumentation counters to track.
    pub num_counters: usize,
}

impl Default for Interp {
    fn default() -> Self {
        Interp { step_limit: 200_000_000, recursion_limit: 64, num_counters: 0 }
    }
}

struct Frame {
    regs: Vec<Value>,
}

impl Interp {
    /// Execute `func(args)` against `mem`, returning the outcome.
    pub fn run(
        &self,
        prog: &Program,
        func: FuncId,
        args: &[Value],
        mem: &mut MemoryImage,
    ) -> Result<ExecOutcome, ExecError> {
        self.run_traced(prog, func, args, mem, None)
    }

    /// [`Interp::run`] with an [`ObsTrace`] attached: every store and call
    /// executed (across callees) is recorded in order. The trace is also
    /// filled on error, up to the point of the trap.
    pub fn run_observed(
        &self,
        prog: &Program,
        func: FuncId,
        args: &[Value],
        mem: &mut MemoryImage,
        trace: &mut ObsTrace,
    ) -> Result<ExecOutcome, ExecError> {
        self.run_traced(prog, func, args, mem, Some(trace))
    }

    fn run_traced(
        &self,
        prog: &Program,
        func: FuncId,
        args: &[Value],
        mem: &mut MemoryImage,
        obs: Option<&mut ObsTrace>,
    ) -> Result<ExecOutcome, ExecError> {
        let mut steps = 0u64;
        let mut counters = vec![0u64; self.num_counters];
        let mut block_entries = vec![0u64; prog.func(func).num_blocks()];
        let ret = self.call(
            prog,
            func,
            args,
            mem,
            &mut steps,
            &mut counters,
            Some(&mut block_entries),
            obs,
            0,
        )?;
        Ok(ExecOutcome { ret, steps, block_entries, counters })
    }

    #[allow(clippy::too_many_arguments)]
    fn call(
        &self,
        prog: &Program,
        func: FuncId,
        args: &[Value],
        mem: &mut MemoryImage,
        steps: &mut u64,
        counters: &mut Vec<u64>,
        mut top_entries: Option<&mut Vec<u64>>,
        mut obs: Option<&mut ObsTrace>,
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        if depth > self.recursion_limit {
            return Err(ExecError::RecursionLimit);
        }
        let f = prog.func(func);
        debug_assert_eq!(args.len(), f.params.len(), "arity mismatch calling {}", f.name);
        let mut frame = Frame { regs: vec![Value::I64(0); f.num_vars()] };
        for (p, a) in f.params.iter().zip(args) {
            frame.regs[p.index()] = *a;
        }
        let mut bb = f.entry;
        loop {
            if let Some(entries) = top_entries.as_deref_mut() {
                entries[bb.index()] += 1;
            }
            let block = f.block(bb);
            for s in &block.stmts {
                *steps += 1;
                if *steps > self.step_limit {
                    return Err(ExecError::StepLimit);
                }
                match s {
                    Stmt::Assign { dst, rv } => {
                        let v = self.eval_rvalue(
                            prog, rv, &frame, mem, steps, counters, obs.as_deref_mut(), depth,
                        )?;
                        frame.regs[dst.index()] = v;
                    }
                    Stmt::Store { dst, src } => {
                        let (m, idx) = self.resolve(prog, dst, &frame, mem)?;
                        let v = self.operand(src, &frame);
                        if let Some(t) = obs.as_deref_mut() {
                            t.record_store(m, idx, v);
                        }
                        mem.store(m, idx, v);
                    }
                    Stmt::CallVoid { func: callee, args } => {
                        let vals: Vec<Value> =
                            args.iter().map(|a| self.operand(a, &frame)).collect();
                        if let Some(t) = obs.as_deref_mut() {
                            t.record_call(*callee, &vals);
                        }
                        self.call(
                            prog,
                            *callee,
                            &vals,
                            mem,
                            steps,
                            counters,
                            None,
                            obs.as_deref_mut(),
                            depth + 1,
                        )?;
                    }
                    Stmt::Prefetch { .. } => {
                        // Semantically a no-op; only the simulator models it.
                    }
                    Stmt::CounterInc { counter } => {
                        if counter.index() >= counters.len() {
                            counters.resize(counter.index() + 1, 0);
                        }
                        counters[counter.index()] += 1;
                    }
                }
            }
            *steps += 1;
            if *steps > self.step_limit {
                return Err(ExecError::StepLimit);
            }
            match &block.term {
                Terminator::Jump(t) => bb = *t,
                Terminator::Branch { cond, on_true, on_false } => {
                    bb = if self.operand(cond, &frame).is_true() { *on_true } else { *on_false };
                }
                Terminator::Return(v) => {
                    return Ok(v.as_ref().map(|op| self.operand(op, &frame)));
                }
            }
        }
    }

    #[inline]
    fn operand(&self, op: &Operand, frame: &Frame) -> Value {
        match op {
            Operand::Var(v) => frame.regs[v.index()],
            Operand::Const(c) => *c,
        }
    }

    fn resolve(
        &self,
        prog: &Program,
        mr: &MemRef,
        frame: &Frame,
        mem: &MemoryImage,
    ) -> Result<(crate::types::MemId, i64), ExecError> {
        let idx = self.operand(&mr.index, frame).as_i64();
        let (m, off) = match mr.base {
            MemBase::Global(m) => (m, 0),
            MemBase::Ptr(p) => {
                let pv = frame.regs[p.index()].as_ptr();
                (pv.mem, pv.offset)
            }
        };
        let i = off + idx;
        let len = mem.buf(m).len();
        if i < 0 || i as usize >= len {
            return Err(ExecError::OutOfBounds { mem: m.0, index: i, len });
        }
        let _ = prog;
        Ok((m, i))
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_rvalue(
        &self,
        prog: &Program,
        rv: &Rvalue,
        frame: &Frame,
        mem: &mut MemoryImage,
        steps: &mut u64,
        counters: &mut Vec<u64>,
        mut obs: Option<&mut ObsTrace>,
        depth: usize,
    ) -> Result<Value, ExecError> {
        Ok(match rv {
            Rvalue::Use(a) => self.operand(a, frame),
            Rvalue::Unary(op, a) => eval_unop(*op, self.operand(a, frame)),
            Rvalue::Binary(op, a, b) => {
                eval_binop(*op, self.operand(a, frame), self.operand(b, frame))?
            }
            Rvalue::Load(mr) => {
                let (m, idx) = self.resolve(prog, mr, frame, mem)?;
                mem.load(m, idx)
            }
            Rvalue::AddrOf(m, idx) => {
                let off = self.operand(idx, frame).as_i64();
                Value::Ptr(PtrVal { mem: *m, offset: off })
            }
            Rvalue::Select { cond, on_true, on_false } => {
                if self.operand(cond, frame).is_true() {
                    self.operand(on_true, frame)
                } else {
                    self.operand(on_false, frame)
                }
            }
            Rvalue::Call { func, args } => {
                let vals: Vec<Value> = args.iter().map(|a| self.operand(a, frame)).collect();
                if let Some(t) = obs.as_deref_mut() {
                    t.record_call(*func, &vals);
                }
                self.call(prog, *func, &vals, mem, steps, counters, None, obs, depth + 1)?
                    .expect("value call of void function")
            }
        })
    }
}

/// Evaluate a unary operation.
#[inline]
pub fn eval_unop(op: UnOp, a: Value) -> Value {
    match op {
        UnOp::Neg => Value::I64(a.as_i64().wrapping_neg()),
        UnOp::Not => Value::I64(!a.as_i64()),
        UnOp::FNeg => Value::F64(-a.as_f64()),
        UnOp::IntToF => Value::F64(a.as_i64() as f64),
        UnOp::FToInt => Value::I64(a.as_f64() as i64),
        UnOp::FAbs => Value::F64(a.as_f64().abs()),
        UnOp::FSqrt => Value::F64(a.as_f64().sqrt()),
    }
}

/// Evaluate a binary operation. Integer arithmetic wraps (like the
/// two's-complement machines the paper targets); division by zero errors.
#[inline]
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
    let bi = |x: bool| Value::I64(x as i64);
    Ok(match op {
        BinOp::Add => Value::I64(a.as_i64().wrapping_add(b.as_i64())),
        BinOp::Sub => Value::I64(a.as_i64().wrapping_sub(b.as_i64())),
        BinOp::Mul => Value::I64(a.as_i64().wrapping_mul(b.as_i64())),
        BinOp::Div => {
            let d = b.as_i64();
            if d == 0 {
                return Err(ExecError::DivByZero);
            }
            Value::I64(a.as_i64().wrapping_div(d))
        }
        BinOp::Rem => {
            let d = b.as_i64();
            if d == 0 {
                return Err(ExecError::DivByZero);
            }
            Value::I64(a.as_i64().wrapping_rem(d))
        }
        BinOp::And => Value::I64(a.as_i64() & b.as_i64()),
        BinOp::Or => Value::I64(a.as_i64() | b.as_i64()),
        BinOp::Xor => Value::I64(a.as_i64() ^ b.as_i64()),
        BinOp::Shl => Value::I64(a.as_i64().wrapping_shl(b.as_i64() as u32 & 63)),
        BinOp::Shr => Value::I64(a.as_i64().wrapping_shr(b.as_i64() as u32 & 63)),
        BinOp::Min => Value::I64(a.as_i64().min(b.as_i64())),
        BinOp::Max => Value::I64(a.as_i64().max(b.as_i64())),
        BinOp::FAdd => Value::F64(a.as_f64() + b.as_f64()),
        BinOp::FSub => Value::F64(a.as_f64() - b.as_f64()),
        BinOp::FMul => Value::F64(a.as_f64() * b.as_f64()),
        BinOp::FDiv => Value::F64(a.as_f64() / b.as_f64()),
        BinOp::Eq => bi(a.as_i64() == b.as_i64()),
        BinOp::Ne => bi(a.as_i64() != b.as_i64()),
        BinOp::Lt => bi(a.as_i64() < b.as_i64()),
        BinOp::Le => bi(a.as_i64() <= b.as_i64()),
        BinOp::Gt => bi(a.as_i64() > b.as_i64()),
        BinOp::Ge => bi(a.as_i64() >= b.as_i64()),
        BinOp::FEq => bi(a.as_f64() == b.as_f64()),
        BinOp::FNe => bi(a.as_f64() != b.as_f64()),
        BinOp::FLt => bi(a.as_f64() < b.as_f64()),
        BinOp::FLe => bi(a.as_f64() <= b.as_f64()),
        BinOp::FGt => bi(a.as_f64() > b.as_f64()),
        BinOp::FGe => bi(a.as_f64() >= b.as_f64()),
        BinOp::PtrAdd => {
            let p = a.as_ptr();
            Value::Ptr(PtrVal { mem: p.mem, offset: p.offset + b.as_i64() })
        }
        BinOp::PtrEq => bi(a.as_ptr() == b.as_ptr()),
        BinOp::PtrDiff => {
            let (p, q) = (a.as_ptr(), b.as_ptr());
            debug_assert_eq!(p.mem, q.mem, "PtrDiff across regions");
            Value::I64(p.offset - q.offset)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::MemRef;
    use crate::types::Type;

    fn sum_program() -> (Program, FuncId, crate::types::MemId) {
        // fn sum(n) { acc = 0; for i in 0..n { acc += a[i] } ; return acc }
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 16);
        let mut b = FunctionBuilder::new("sum", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            b.binary_into(acc, BinOp::Add, acc, x);
        });
        b.ret(Some(Operand::Var(acc)));
        let f = prog.add_func(b.finish());
        (prog, f, a)
    }

    #[test]
    fn sums_array() {
        let (prog, f, a) = sum_program();
        let mut mem = MemoryImage::new(&prog);
        for i in 0..8 {
            mem.store(a, i, Value::I64(i + 1));
        }
        let out = Interp::default().run(&prog, f, &[Value::I64(8)], &mut mem).unwrap();
        assert_eq!(out.ret, Some(Value::I64(36)));
        // Body (block 2) entered 8 times; header (block 1) 9 times.
        assert_eq!(out.block_entries[2], 8);
        assert_eq!(out.block_entries[1], 9);
    }

    #[test]
    fn zero_trip_loop() {
        let (prog, f, _) = sum_program();
        let mut mem = MemoryImage::new(&prog);
        let out = Interp::default().run(&prog, f, &[Value::I64(0)], &mut mem).unwrap();
        assert_eq!(out.ret, Some(Value::I64(0)));
        assert_eq!(out.block_entries[2], 0);
    }

    #[test]
    fn out_of_bounds_detected() {
        let (prog, f, _) = sum_program();
        let mut mem = MemoryImage::new(&prog);
        let err = Interp::default().run(&prog, f, &[Value::I64(100)], &mut mem).unwrap_err();
        assert!(matches!(err, ExecError::OutOfBounds { .. }));
    }

    #[test]
    fn div_by_zero_detected() {
        assert_eq!(
            eval_binop(BinOp::Div, Value::I64(5), Value::I64(0)),
            Err(ExecError::DivByZero)
        );
        assert_eq!(eval_binop(BinOp::Div, Value::I64(7), Value::I64(2)).unwrap(), Value::I64(3));
    }

    #[test]
    fn step_limit_halts_runaway_loop() {
        // while(1) {}
        let mut b = FunctionBuilder::new("spin", None);
        b.while_loop(|_| Operand::const_i64(1), |_| {});
        b.ret(None);
        let mut prog = Program::new();
        let f = prog.add_func(b.finish());
        let mut mem = MemoryImage::new(&prog);
        let interp = Interp { step_limit: 1000, ..Default::default() };
        assert_eq!(interp.run(&prog, f, &[], &mut mem).unwrap_err(), ExecError::StepLimit);
    }

    #[test]
    fn call_and_counter() {
        use crate::types::CounterId;
        let mut prog = Program::new();
        // callee: double(x) = x + x
        let mut cb = FunctionBuilder::new("double", Some(Type::I64));
        let x = cb.param("x", Type::I64);
        let t = cb.binary(BinOp::Add, x, x);
        cb.ret(Some(Operand::Var(t)));
        let callee = prog.add_func(cb.finish());
        // caller: r = double(21), counter bump
        let mut b = FunctionBuilder::new("main", Some(Type::I64));
        b.emit(Stmt::CounterInc { counter: CounterId(0) });
        let r = b.call(Type::I64, callee, vec![Operand::const_i64(21)]);
        b.ret(Some(Operand::Var(r)));
        let f = prog.add_func(b.finish());
        let mut mem = MemoryImage::new(&prog);
        let interp = Interp { num_counters: 1, ..Default::default() };
        let out = interp.run(&prog, f, &[], &mut mem).unwrap();
        assert_eq!(out.ret, Some(Value::I64(42)));
        assert_eq!(out.counters, vec![1]);
    }

    #[test]
    fn pointer_arithmetic() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 8);
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.addr_of(a, 2i64);
        let q = b.binary(BinOp::PtrAdd, p, 3i64);
        let v = b.load(Type::I64, MemRef::ptr(q, 0i64));
        b.ret(Some(Operand::Var(v)));
        let f = prog.add_func(b.finish());
        let mut mem = MemoryImage::new(&prog);
        mem.store(a, 5, Value::I64(77));
        let out = Interp::default().run(&prog, f, &[], &mut mem).unwrap();
        assert_eq!(out.ret, Some(Value::I64(77)));
    }
}
