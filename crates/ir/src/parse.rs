//! Textual IR parser — the inverse of the `Display` implementations.
//!
//! Lets kernels be written (and dumped/reloaded) as text:
//!
//! ```text
//! mem a: f64[128]
//!
//! fn saxpy(v0: i64, v1: f64) -> f64 {
//!   locals v2: i64, v3: f64, v4: f64
//! b0: (entry)
//!   v3 = 0.0
//!   v2 = 0
//!   jump b1
//! b1:
//!   v4 = lt v2, v0
//!   br v4 ? b2 : b3
//! b2:
//!   v4 = load a[v2]
//!   v3 = fadd v3, v4
//!   v2 = add v2, 1
//!   jump b1
//! b3:
//!   ret v3
//! }
//! ```
//!
//! Memory regions may be referenced by name (`a[v2]`) or positionally
//! (`m0[v2]`); functions by name or `f0`. `parse_program(display_output)`
//! round-trips every program the crate can print.

use crate::func::Function;
use crate::program::Program;
use crate::stmt::{MemBase, MemRef, Rvalue, Stmt, Terminator};
use crate::types::{BinOp, BlockId, CounterId, FuncId, MemId, Operand, PtrVal, Type, UnOp, Value, VarId};

/// Parse failure with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> PResult<T> {
    Err(ParseError { line, msg: msg.into() })
}

/// Parse a whole program (mem declarations + functions).
pub fn parse_program(src: &str) -> PResult<Program> {
    let mut prog = Program::new();
    let lines: Vec<&str> = src.lines().collect();
    // First pass: collect function names in order so forward calls resolve.
    let mut fn_names = Vec::new();
    for l in &lines {
        let t = l.trim();
        if let Some(rest) = t.strip_prefix("fn ") {
            let name = rest.split('(').next().unwrap_or("").trim();
            fn_names.push(name.to_string());
        }
    }
    let mut i = 0usize;
    while i < lines.len() {
        let line_no = i + 1;
        let t = lines[i].trim();
        if t.is_empty() || t.starts_with("//") || t.starts_with('#') {
            i += 1;
            continue;
        }
        if let Some(rest) = t.strip_prefix("mem ") {
            // mem name: ty[len]
            let (name, rest) = rest
                .split_once(':')
                .ok_or(ParseError { line: line_no, msg: "expected `mem name: ty[len]`".into() })?;
            let rest = rest.trim();
            let (ty_s, len_s) = rest
                .split_once('[')
                .ok_or(ParseError { line: line_no, msg: "expected `ty[len]`".into() })?;
            let ty = parse_type(ty_s.trim(), line_no)?;
            let len: usize = len_s
                .trim_end_matches(']')
                .trim()
                .parse()
                .map_err(|_| ParseError { line: line_no, msg: "bad region length".into() })?;
            prog.add_mem(name.trim(), ty, len);
            i += 1;
        } else if t.starts_with("fn ") {
            let consumed = parse_function(&lines, i, &mut prog, &fn_names)?;
            i = consumed;
        } else {
            return err(line_no, format!("unexpected top-level line: {t}"));
        }
    }
    Ok(prog)
}

fn parse_type(s: &str, line: usize) -> PResult<Type> {
    match s {
        "i64" => Ok(Type::I64),
        "f64" => Ok(Type::F64),
        "ptr" => Ok(Type::Ptr),
        other => err(line, format!("unknown type `{other}`")),
    }
}

/// Parses one `fn … { … }`; returns the index after the closing brace.
fn parse_function(
    lines: &[&str],
    start: usize,
    prog: &mut Program,
    fn_names: &[String],
) -> PResult<usize> {
    let line_no = start + 1;
    let header = lines[start].trim();
    let rest = header.strip_prefix("fn ").expect("caller checked");
    let open = rest
        .find('(')
        .ok_or(ParseError { line: line_no, msg: "missing `(` in fn header".into() })?;
    let name = rest[..open].trim().to_string();
    let close = rest
        .rfind(')')
        .ok_or(ParseError { line: line_no, msg: "missing `)` in fn header".into() })?;
    let params_s = &rest[open + 1..close];
    let tail = rest[close + 1..].trim();
    let ret = if let Some(r) = tail.strip_prefix("->") {
        Some(parse_type(r.trim_end_matches('{').trim(), line_no)?)
    } else {
        None
    };
    let mut f = Function::new(name, ret);
    f.blocks.clear();
    // Parameters: `v0: i64, v1: f64`.
    for (pi, p) in params_s
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .enumerate()
    {
        let (v, ty_s) = p
            .split_once(':')
            .ok_or(ParseError { line: line_no, msg: "expected `vN: ty` parameter".into() })?;
        let vid = parse_var(v.trim(), line_no)?;
        if vid.index() != pi {
            return err(line_no, format!("parameter {p} out of order"));
        }
        let ty = parse_type(ty_s.trim(), line_no)?;
        let got = f.add_var(format!("v{}", vid.0), ty);
        f.params.push(got);
    }
    let mut i = start + 1;
    let mut entry: Option<BlockId> = None;
    let mut current: Option<BlockId> = None;
    // Blocks may be labelled out of order; remember the max id referenced.
    while i < lines.len() {
        let line_no = i + 1;
        let t = lines[i].trim();
        i += 1;
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        if t == "}" {
            let entry = entry.unwrap_or(BlockId(0));
            f.entry = entry;
            if f.blocks.is_empty() {
                f.add_block();
            }
            prog.add_func(f);
            return Ok(i);
        }
        if let Some(rest) = t.strip_prefix("locals ") {
            for decl in rest.split(',').map(str::trim).filter(|d| !d.is_empty()) {
                let (v, ty_s) = decl.split_once(':').ok_or(ParseError {
                    line: line_no,
                    msg: "expected `vN: ty` local".into(),
                })?;
                let vid = parse_var(v.trim(), line_no)?;
                if vid.index() != f.vars.len() {
                    return err(line_no, format!("local {decl} out of order"));
                }
                let ty = parse_type(ty_s.trim(), line_no)?;
                f.add_var(format!("v{}", vid.0), ty);
            }
            continue;
        }
        // Block label: `bN:` optionally followed by `(entry[, aligned])`.
        if t.starts_with('b') && t.contains(':') && !t.contains('=') {
            let (label, marks) = t.split_once(':').expect("checked contains");
            if let Ok(idx) = label[1..].parse::<u32>() {
                while f.blocks.len() <= idx as usize {
                    f.add_block();
                }
                let b = BlockId(idx);
                if marks.contains("entry") {
                    entry = Some(b);
                }
                if marks.contains("aligned") {
                    f.block_mut(b).aligned = true;
                }
                current = Some(b);
                continue;
            }
        }
        // Statement or terminator inside the current block.
        let Some(cur) = current else {
            return err(line_no, "statement outside a block");
        };
        let ctx = Ctx { prog, fn_names, line: line_no };
        if let Some(term) = parse_terminator(t, &ctx)? {
            f.block_mut(cur).term = term;
        } else {
            let s = parse_stmt(t, &ctx)?;
            f.block_mut(cur).stmts.push(s);
        }
    }
    err(lines.len(), "missing closing `}`")
}

struct Ctx<'a> {
    prog: &'a Program,
    fn_names: &'a [String],
    line: usize,
}

impl Ctx<'_> {
    fn mem(&self, token: &str) -> PResult<MemId> {
        if let Some(num) = token.strip_prefix('m') {
            if let Ok(i) = num.parse::<u32>() {
                return Ok(MemId(i));
            }
        }
        self.prog
            .mem_by_name(token)
            .ok_or(ParseError { line: self.line, msg: format!("unknown region `{token}`") })
    }

    fn func(&self, token: &str) -> PResult<FuncId> {
        if let Some(num) = token.strip_prefix('f') {
            if let Ok(i) = num.parse::<u32>() {
                return Ok(FuncId(i));
            }
        }
        self.fn_names
            .iter()
            .position(|n| n == token)
            .map(|i| FuncId(i as u32))
            .ok_or(ParseError { line: self.line, msg: format!("unknown function `{token}`") })
    }
}

fn parse_var(s: &str, line: usize) -> PResult<VarId> {
    s.strip_prefix('v')
        .and_then(|n| n.parse::<u32>().ok())
        .map(VarId)
        .ok_or(ParseError { line, msg: format!("expected variable, found `{s}`") })
}

fn parse_block_ref(s: &str, line: usize) -> PResult<BlockId> {
    s.strip_prefix('b')
        .and_then(|n| n.parse::<u32>().ok())
        .map(BlockId)
        .ok_or(ParseError { line, msg: format!("expected block, found `{s}`") })
}

fn parse_operand(s: &str, ctx: &Ctx<'_>) -> PResult<Operand> {
    let s = s.trim();
    if let Some(n) = s.strip_prefix('v') {
        if let Ok(i) = n.parse::<u32>() {
            return Ok(Operand::Var(VarId(i)));
        }
    }
    if let Some(rest) = s.strip_prefix("&") {
        // &m1[4] — pointer constant.
        let (m, idx) = rest
            .trim_start_matches('m')
            .split_once('[')
            .ok_or(ParseError { line: ctx.line, msg: format!("bad pointer constant `{s}`") })?;
        let mem = MemId(m.parse().map_err(|_| ParseError {
            line: ctx.line,
            msg: format!("bad pointer region in `{s}`"),
        })?);
        let offset = idx.trim_end_matches(']').parse().map_err(|_| ParseError {
            line: ctx.line,
            msg: format!("bad pointer offset in `{s}`"),
        })?;
        return Ok(Operand::Const(Value::Ptr(PtrVal { mem, offset })));
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Operand::Const(Value::I64(i)));
    }
    if let Ok(x) = s.parse::<f64>() {
        return Ok(Operand::Const(Value::F64(x)));
    }
    err(ctx.line, format!("cannot parse operand `{s}`"))
}

/// `m0[v3]` / `name[7]` / `v5[v2]` (pointer base).
fn parse_memref(s: &str, ctx: &Ctx<'_>) -> PResult<MemRef> {
    let s = s.trim();
    let (base_s, idx_s) = s
        .split_once('[')
        .ok_or(ParseError { line: ctx.line, msg: format!("expected memref, found `{s}`") })?;
    let index = parse_operand(idx_s.trim_end_matches(']'), ctx)?;
    let base_s = base_s.trim();
    // Pointer base `vN` wins over names; then `mN`/named regions.
    if let Some(n) = base_s.strip_prefix('v') {
        if let Ok(i) = n.parse::<u32>() {
            return Ok(MemRef { base: MemBase::Ptr(VarId(i)), index });
        }
    }
    Ok(MemRef { base: MemBase::Global(ctx.mem(base_s)?), index })
}

fn parse_unop(s: &str) -> Option<UnOp> {
    Some(match s {
        "neg" => UnOp::Neg,
        "not" => UnOp::Not,
        "fneg" => UnOp::FNeg,
        "i2f" => UnOp::IntToF,
        "f2i" => UnOp::FToInt,
        "fabs" => UnOp::FAbs,
        "fsqrt" => UnOp::FSqrt,
        _ => return None,
    })
}

fn parse_binop(s: &str) -> Option<BinOp> {
    use BinOp::*;
    Some(match s {
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "div" => Div,
        "rem" => Rem,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "shl" => Shl,
        "shr" => Shr,
        "min" => Min,
        "max" => Max,
        "fadd" => FAdd,
        "fsub" => FSub,
        "fmul" => FMul,
        "fdiv" => FDiv,
        "eq" => Eq,
        "ne" => Ne,
        "lt" => Lt,
        "le" => Le,
        "gt" => Gt,
        "ge" => Ge,
        "feq" => FEq,
        "fne" => FNe,
        "flt" => FLt,
        "fle" => FLe,
        "fgt" => FGt,
        "fge" => FGe,
        "padd" => PtrAdd,
        "peq" => PtrEq,
        "pdiff" => PtrDiff,
        _ => return None,
    })
}

fn parse_call(rest: &str, ctx: &Ctx<'_>) -> PResult<(FuncId, Vec<Operand>)> {
    // `f1(v0, 2)` or `name(v0)`.
    let (fname, args_s) = rest
        .split_once('(')
        .ok_or(ParseError { line: ctx.line, msg: format!("bad call `{rest}`") })?;
    let func = ctx.func(fname.trim())?;
    let args_s = args_s.trim_end_matches(')');
    let mut args = Vec::new();
    for a in args_s.split(',').map(str::trim).filter(|a| !a.is_empty()) {
        args.push(parse_operand(a, ctx)?);
    }
    Ok((func, args))
}

fn parse_rvalue(s: &str, ctx: &Ctx<'_>) -> PResult<Rvalue> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("load ") {
        return Ok(Rvalue::Load(parse_memref(rest, ctx)?));
    }
    if let Some(rest) = s.strip_prefix("addr ") {
        let mr = parse_memref(rest, ctx)?;
        let MemBase::Global(m) = mr.base else {
            return err(ctx.line, "addr of pointer base");
        };
        return Ok(Rvalue::AddrOf(m, mr.index));
    }
    if let Some(rest) = s.strip_prefix("select ") {
        // `select c ? a : b`
        let (c, arms) = rest
            .split_once('?')
            .ok_or(ParseError { line: ctx.line, msg: "select needs `?`".into() })?;
        let (a, b) = arms
            .split_once(':')
            .ok_or(ParseError { line: ctx.line, msg: "select needs `:`".into() })?;
        return Ok(Rvalue::Select {
            cond: parse_operand(c, ctx)?,
            on_true: parse_operand(a, ctx)?,
            on_false: parse_operand(b, ctx)?,
        });
    }
    if let Some(rest) = s.strip_prefix("call ") {
        let (func, args) = parse_call(rest, ctx)?;
        return Ok(Rvalue::Call { func, args });
    }
    // `op a` / `op a, b` / bare operand.
    let mut parts = s.splitn(2, ' ');
    let head = parts.next().unwrap_or("");
    if let Some(op) = parse_binop(head) {
        let rest = parts.next().unwrap_or("");
        let (a, b) = rest
            .split_once(',')
            .ok_or(ParseError { line: ctx.line, msg: format!("binary `{head}` needs two operands") })?;
        return Ok(Rvalue::Binary(op, parse_operand(a, ctx)?, parse_operand(b, ctx)?));
    }
    if let Some(op) = parse_unop(head) {
        let rest = parts.next().unwrap_or("");
        return Ok(Rvalue::Unary(op, parse_operand(rest, ctx)?));
    }
    Ok(Rvalue::Use(parse_operand(s, ctx)?))
}

fn parse_stmt(t: &str, ctx: &Ctx<'_>) -> PResult<Stmt> {
    if let Some(rest) = t.strip_prefix("store ") {
        let (dst, src) = rest
            .split_once('=')
            .ok_or(ParseError { line: ctx.line, msg: "store needs `=`".into() })?;
        return Ok(Stmt::Store {
            dst: parse_memref(dst, ctx)?,
            src: parse_operand(src, ctx)?,
        });
    }
    if let Some(rest) = t.strip_prefix("call ") {
        let (func, args) = parse_call(rest, ctx)?;
        return Ok(Stmt::CallVoid { func, args });
    }
    if let Some(rest) = t.strip_prefix("prefetch ") {
        return Ok(Stmt::Prefetch { addr: parse_memref(rest, ctx)? });
    }
    if let Some(rest) = t.strip_prefix("ctr ") {
        // `ctr c3 += 1`
        let c = rest
            .split_whitespace()
            .next()
            .and_then(|c| c.strip_prefix('c'))
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or(ParseError { line: ctx.line, msg: format!("bad counter `{rest}`") })?;
        return Ok(Stmt::CounterInc { counter: CounterId(c) });
    }
    // `vN = rvalue`.
    let (dst, rv) = t
        .split_once('=')
        .ok_or(ParseError { line: ctx.line, msg: format!("cannot parse statement `{t}`") })?;
    Ok(Stmt::Assign {
        dst: parse_var(dst.trim(), ctx.line)?,
        rv: parse_rvalue(rv, ctx)?,
    })
}

fn parse_terminator(t: &str, ctx: &Ctx<'_>) -> PResult<Option<Terminator>> {
    if let Some(rest) = t.strip_prefix("jump ") {
        return Ok(Some(Terminator::Jump(parse_block_ref(rest.trim(), ctx.line)?)));
    }
    if let Some(rest) = t.strip_prefix("br ") {
        let (c, arms) = rest
            .split_once('?')
            .ok_or(ParseError { line: ctx.line, msg: "br needs `?`".into() })?;
        let (a, b) = arms
            .split_once(':')
            .ok_or(ParseError { line: ctx.line, msg: "br needs `:`".into() })?;
        return Ok(Some(Terminator::Branch {
            cond: parse_operand(c, ctx)?,
            on_true: parse_block_ref(a.trim(), ctx.line)?,
            on_false: parse_block_ref(b.trim(), ctx.line)?,
        }));
    }
    if t == "ret" {
        return Ok(Some(Terminator::Return(None)));
    }
    if let Some(rest) = t.strip_prefix("ret ") {
        return Ok(Some(Terminator::Return(Some(parse_operand(rest, ctx)?))));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Interp, MemoryImage};

    const SAXPY: &str = r#"
mem a: f64[16]

fn saxpy(v0: i64, v1: f64) -> f64 {
  locals v2: i64, v3: f64, v4: f64
b0: (entry)
  v3 = 0.0
  v2 = 0
  jump b1
b1:
  v2 = add v2, 0
  jump b2
b2:
  ret v3
}
"#;

    #[test]
    fn parses_and_validates() {
        let prog = parse_program(SAXPY).unwrap();
        assert_eq!(prog.mems.len(), 1);
        assert_eq!(prog.funcs.len(), 1);
        crate::validate_program(&prog).unwrap();
        let f = &prog.funcs[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.num_blocks(), 3);
    }

    #[test]
    fn executes_parsed_function() {
        let src = r#"
mem a: i64[8]

fn sum(v0: i64) -> i64 {
  locals v1: i64, v2: i64, v3: i64, v4: i64
b0: (entry)
  v2 = 0
  v1 = 0
  jump b1
b1:
  v3 = lt v1, v0
  br v3 ? b2 : b3
b2:
  v4 = load a[v1]
  v2 = add v2, v4
  v1 = add v1, 1
  jump b1
b3:
  ret v2
}
"#;
        let prog = parse_program(src).unwrap();
        crate::validate_program(&prog).unwrap();
        let mut mem = MemoryImage::new(&prog);
        for i in 0..8 {
            mem.store(MemId(0), i, Value::I64(i + 1));
        }
        let out = Interp::default()
            .run(&prog, FuncId(0), &[Value::I64(8)], &mut mem)
            .unwrap();
        assert_eq!(out.ret, Some(Value::I64(36)));
    }

    #[test]
    fn error_reports_line() {
        let src = "mem a: i64[8]\n\nfn f() {\nb0: (entry)\n  v0 = frobnicate v1\n  ret\n}\n";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.msg.contains("frobnicate") || e.msg.contains("operand"), "{e}");
    }

    #[test]
    fn display_roundtrip_simple() {
        let prog = parse_program(SAXPY).unwrap();
        // Re-render and re-parse: identical structure.
        let mut text = String::new();
        for (mi, m) in prog.mems.iter().enumerate() {
            text.push_str(&format!("mem m{mi}: {}[{}]\n", m.elem, m.len));
        }
        for f in &prog.funcs {
            text.push_str(&format!("{f}\n"));
        }
        let prog2 = parse_program(&text).unwrap();
        assert_eq!(prog.funcs[0].blocks, prog2.funcs[0].blocks);
        assert_eq!(prog.funcs[0].params, prog2.funcs[0].params);
    }

    #[test]
    fn named_function_calls_resolve() {
        let src = r#"
fn helper(v0: i64) -> i64 {
b0: (entry)
  ret v0
}

fn main() -> i64 {
  locals v0: i64
b0: (entry)
  v0 = call helper(41)
  v0 = add v0, 1
  ret v0
}
"#;
        let prog = parse_program(src).unwrap();
        crate::validate_program(&prog).unwrap();
        let mut mem = MemoryImage::new(&prog);
        let out = Interp::default().run(&prog, FuncId(1), &[], &mut mem).unwrap();
        assert_eq!(out.ret, Some(Value::I64(42)));
    }
}
