//! Live-variable analysis and function-level input/def summaries.
//!
//! Re-execution-based rating needs `Input(TS) = LiveIn(b1)` (paper §2.4.1)
//! and `Modified_Input(TS) = Input(TS) ∩ Def(TS)` (Eq. 6). With the TS
//! extracted as a function, the scalar part of `Input` is the parameter
//! list, and the memory part is the set of regions the TS may read;
//! `Def(TS)` is the set of regions it may write. Both are computed here,
//! together with classic backward live-variable analysis used by the
//! register allocator and dead-code elimination.

use crate::cfg::Cfg;
use crate::dataflow::BitSet;
use crate::func::Function;
use crate::program::Program;
use crate::stmt::{MemBase, Rvalue, Stmt};
use crate::types::{BlockId, FuncId, MemId, VarId};

/// Per-block live-in/live-out variable sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Variables live at block entry.
    pub live_in: Vec<BitSet>,
    /// Variables live at block exit.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Compute liveness for `f`.
    pub fn build(f: &Function, cfg: &Cfg) -> Self {
        let nb = f.num_blocks();
        let nv = f.num_vars();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![BitSet::new(nv); nb];
        let mut kill = vec![BitSet::new(nv); nb];
        let mut uses = Vec::new();
        for b in f.block_ids() {
            let bi = b.index();
            for s in &f.block(b).stmts {
                uses.clear();
                s.uses(&mut uses);
                for &u in &uses {
                    if !kill[bi].contains(u.index()) {
                        gen[bi].insert(u.index());
                    }
                }
                if let Some(d) = s.def() {
                    kill[bi].insert(d.index());
                }
            }
            uses.clear();
            f.block(b).term.uses(&mut uses);
            for &u in &uses {
                if !kill[bi].contains(u.index()) {
                    gen[bi].insert(u.index());
                }
            }
        }
        let mut live_in = vec![BitSet::new(nv); nb];
        let mut live_out = vec![BitSet::new(nv); nb];
        // Iterate to fixpoint in postorder (reverse RPO) for fast
        // convergence of the backward problem.
        let order: Vec<BlockId> = cfg.rpo.iter().rev().copied().collect();
        let mut changed = true;
        let mut tmp = BitSet::new(nv);
        while changed {
            changed = false;
            for &b in &order {
                let bi = b.index();
                tmp.clear();
                for &s in &cfg.succs[bi] {
                    tmp.union_with(&live_in[s.index()]);
                }
                if live_out[bi] != tmp {
                    live_out[bi].copy_from(&tmp);
                    changed = true;
                }
                // in = gen ∪ (out − kill)
                tmp.subtract(&kill[bi]);
                tmp.union_with(&gen[bi]);
                if live_in[bi] != tmp {
                    live_in[bi].copy_from(&tmp);
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Variables live at entry of the function (paper's `Input(TS)` scalar
    /// part; for extracted TSs this is a subset of the parameters).
    pub fn entry_live_in(&self, f: &Function) -> Vec<VarId> {
        self.live_in[f.entry.index()]
            .iter()
            .map(|i| VarId(i as u32))
            .collect()
    }
}

/// Memory-region read/write summary of a function, transitively including
/// callees. Region-granular: a function "reads m" if any path may load from
/// it. This is the conservative `Input`/`Def` memory analysis used by RBR.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemEffects {
    /// Regions possibly read.
    pub reads: Vec<MemId>,
    /// Regions possibly written.
    pub writes: Vec<MemId>,
}

impl MemEffects {
    /// `Modified_Input` memory part: regions both read and written
    /// (paper Eq. 6 at region granularity).
    pub fn modified_input(&self) -> Vec<MemId> {
        self.writes
            .iter()
            .copied()
            .filter(|m| self.reads.contains(m))
            .collect()
    }
}

/// Compute [`MemEffects`] for `func`, following calls transitively.
///
/// Pointers may alias any region whose address is taken somewhere in the
/// program unless the simple points-to analysis (see
/// [`crate::points_to`]) can narrow them; here we use the narrow results
/// when available and fall back to "all regions pointed-to-able".
pub fn mem_effects(prog: &Program, func: FuncId) -> MemEffects {
    let mut reads = BitSet::new(prog.mems.len());
    let mut writes = BitSet::new(prog.mems.len());
    let mut visited = vec![false; prog.funcs.len()];
    collect(prog, func, &mut reads, &mut writes, &mut visited);
    MemEffects {
        reads: reads.iter().map(|i| MemId(i as u32)).collect(),
        writes: writes.iter().map(|i| MemId(i as u32)).collect(),
    }
}

fn collect(
    prog: &Program,
    func: FuncId,
    reads: &mut BitSet,
    writes: &mut BitSet,
    visited: &mut Vec<bool>,
) {
    if visited[func.index()] {
        return;
    }
    visited[func.index()] = true;
    let f = prog.func(func);
    let pts = crate::points_to::PointsTo::build(f);
    let record = |base: &MemBase, set: &mut BitSet| match base {
        MemBase::Global(m) => {
            set.insert(m.index());
        }
        MemBase::Ptr(p) => {
            for m in pts.may_point_to(*p, prog.mems.len()) {
                set.insert(m.index());
            }
        }
    };
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            match s {
                Stmt::Assign { rv, .. } => {
                    if let Rvalue::Load(mr) = rv {
                        record(&mr.base, reads);
                    }
                    if let Rvalue::Call { func: callee, .. } = rv {
                        collect(prog, *callee, reads, writes, visited);
                    }
                }
                Stmt::Store { dst, .. } => record(&dst.base, writes),
                Stmt::CallVoid { func: callee, .. } => {
                    collect(prog, *callee, reads, writes, visited);
                }
                Stmt::Prefetch { .. } | Stmt::CounterInc { .. } => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::MemRef;
    use crate::types::{BinOp, Operand, Type};

    #[test]
    fn straightline_liveness() {
        // x = p + 1; return x  — p live at entry, x not.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let x = b.binary(BinOp::Add, p, 1i64);
        b.ret(Some(Operand::Var(x)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::build(&f, &cfg);
        assert_eq!(lv.entry_live_in(&f), vec![p]);
    }

    #[test]
    fn loop_carried_variable_is_live_around_loop() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        b.ret(Some(Operand::Var(acc)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::build(&f, &cfg);
        // acc live into the loop header (block 1).
        assert!(lv.live_in[1].contains(acc.index()));
        // Only n is live at function entry (acc defined before use).
        assert_eq!(lv.entry_live_in(&f), vec![n]);
    }

    #[test]
    fn dead_def_not_live() {
        let mut b = FunctionBuilder::new("f", None);
        let x = b.var("x", Type::I64);
        b.copy(x, 1i64);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = Liveness::build(&f, &cfg);
        assert!(lv.live_out[0].is_empty());
        assert!(lv.live_in[0].is_empty());
    }

    #[test]
    fn mem_effects_direct_and_via_call() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let bm = prog.add_mem("b", Type::I64, 4);
        let c = prog.add_mem("c", Type::I64, 4);
        // callee writes c
        let mut cb = FunctionBuilder::new("w", None);
        cb.store(MemRef::global(c, 0i64), 1i64);
        cb.ret(None);
        let callee = prog.add_func(cb.finish());
        // caller reads a, reads+writes b, calls callee
        let mut fb = FunctionBuilder::new("f", None);
        let x = fb.load(Type::I64, MemRef::global(a, 0i64));
        let y = fb.load(Type::I64, MemRef::global(bm, 0i64));
        let s = fb.binary(BinOp::Add, x, y);
        fb.store(MemRef::global(bm, 0i64), s);
        fb.call_void(callee, vec![]);
        fb.ret(None);
        let f = prog.add_func(fb.finish());
        let eff = mem_effects(&prog, f);
        assert_eq!(eff.reads, vec![a, bm]);
        assert_eq!(eff.writes, vec![bm, c]);
        assert_eq!(eff.modified_input(), vec![bm], "only b is read AND written");
    }
}
