//! # peak-ir — the PEAK intermediate representation
//!
//! A small, fully analyzable three-address IR in which the tuning-section
//! workloads of the reproduction are written, together with the program
//! analyses the paper's rating methods rely on:
//!
//! * [`context_vars`] — the context-variable analysis of paper Figure 1
//!   (CBR applicability),
//! * [`liveness`] — `Input(TS)`/`Def(TS)`/`Modified_Input(TS)` for RBR
//!   (paper §2.4),
//! * [`trip_count`] + [`instrument`] — compile-time block-entry expressions
//!   and counter instrumentation for MBR (paper §2.3),
//! * [`reaching`]/[`points_to`]/[`loops`]/[`mod@cfg`] — the supporting
//!   dataflow machinery,
//! * [`interp`] — a reference interpreter defining IR semantics (the
//!   oracle against which `peak-opt` passes are property-tested),
//! * [`validate`] — structural/type well-formedness checking,
//! * [`verify`] — the translation-validation layer: stage-to-stage
//!   structural invariants (CFG/terminator consistency, loop-header
//!   invariants, definite initialization) and the observation model the
//!   per-pass semantic oracle in `peak-opt` compares.
//!
//! The optimizing compiler lives in `peak-opt`; the cycle-cost machine
//! simulator in `peak-sim`; the tuning system itself in `peak-core`.

#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod context_vars;
pub mod dataflow;
pub mod func;
pub mod instrument;
pub mod interp;
pub mod liveness;
pub mod loops;
pub mod parse;
pub mod points_to;
pub mod program;
pub mod reaching;
pub mod stmt;
pub mod trip_count;
pub mod types;
pub mod validate;
pub mod verify;

pub use builder::FunctionBuilder;
pub use cfg::{Cfg, Dominators};
pub use context_vars::{context_set, ContextAnalysis, ContextSource};
pub use func::{Block, Function, VarInfo};
pub use instrument::{instrument_block_counts, strip_counters, CountSource, CounterPlan};
pub use interp::{ExecError, ExecOutcome, Interp, ObsTrace};
pub use liveness::{mem_effects, Liveness, MemEffects};
pub use loops::{Loop, LoopForest};
pub use parse::{parse_program, ParseError};
pub use points_to::PointsTo;
pub use program::{Buffer, MemDecl, MemoryImage, Program};
pub use reaching::{DefSite, ReachingDefs, UseSite};
pub use stmt::{MemBase, MemRef, Rvalue, Stmt, Terminator};
pub use trip_count::{recognize_all, recognize_counted, CountExpr, CountedLoop};
pub use types::{
    BinOp, BlockId, CounterId, FuncId, MemId, Operand, PtrVal, Type, UnOp, Value, VarId,
};
pub use validate::{validate_function, validate_program, ValidateError};
pub use verify::{
    compare_observations, observe, values_eq, verify_function, verify_program, ObsLevel,
    Observation, VerifyError, VerifyOptions, DEFAULT_TRACE_LIMIT,
};
