//! Statements, right-hand sides, memory references, and terminators.

use crate::types::{BinOp, BlockId, CounterId, FuncId, MemId, Operand, UnOp, Value, VarId};
use std::fmt;

/// Base of a memory reference: a named global region or a pointer variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemBase {
    /// Direct reference to a program-level region.
    Global(MemId),
    /// Indirect reference through a pointer-typed variable.
    Ptr(VarId),
}

/// A memory reference `base[index]` (element-granular addressing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemRef {
    /// Region or pointer being indexed.
    pub base: MemBase,
    /// Element index, added to the base offset.
    pub index: Operand,
}

impl MemRef {
    /// Direct reference `mem[index]`.
    pub fn global(mem: MemId, index: impl Into<Operand>) -> Self {
        MemRef { base: MemBase::Global(mem), index: index.into() }
    }

    /// Indirect reference `ptr[index]`.
    pub fn ptr(ptr: VarId, index: impl Into<Operand>) -> Self {
        MemRef { base: MemBase::Ptr(ptr), index: index.into() }
    }

    /// Variables read when computing this reference's address.
    pub fn address_vars(&self, out: &mut Vec<VarId>) {
        if let MemBase::Ptr(p) = self.base {
            out.push(p);
        }
        if let Operand::Var(v) = self.index {
            out.push(v);
        }
    }
}

/// Right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Rvalue {
    /// Copy of an operand.
    Use(Operand),
    /// Unary operation.
    Unary(UnOp, Operand),
    /// Binary operation.
    Binary(BinOp, Operand, Operand),
    /// Load from memory.
    Load(MemRef),
    /// Address-of: `&mem[index]`, producing a pointer value.
    AddrOf(MemId, Operand),
    /// Conditional select `cond ? t : f` (no control dependence; produced by
    /// if-conversion, executable on both machine models as cmov/movr).
    Select {
        /// Condition (nonzero = true).
        cond: Operand,
        /// Value if true.
        on_true: Operand,
        /// Value if false.
        on_false: Operand,
    },
    /// Call of another function in the program. Returns the callee's return
    /// value (unit-returning callees may only appear in [`Stmt::CallVoid`]).
    Call {
        /// Callee.
        func: FuncId,
        /// Actual arguments.
        args: Vec<Operand>,
    },
}

impl Rvalue {
    /// Collect all variables read by this rvalue.
    pub fn uses(&self, out: &mut Vec<VarId>) {
        let mut push = |op: &Operand| {
            if let Operand::Var(v) = op {
                out.push(*v);
            }
        };
        match self {
            Rvalue::Use(a) | Rvalue::Unary(_, a) => push(a),
            Rvalue::Binary(_, a, b) => {
                push(a);
                push(b);
            }
            Rvalue::Load(mr) => mr.address_vars(out),
            Rvalue::AddrOf(_, idx) => push(idx),
            Rvalue::Select { cond, on_true, on_false } => {
                push(cond);
                push(on_true);
                push(on_false);
            }
            Rvalue::Call { args, .. } => {
                for a in args {
                    push(a);
                }
            }
        }
    }

    /// Whether this rvalue is pure (no memory read, no call): safe to remove
    /// when dead and safe to move without memory-dependence checking.
    pub fn is_pure(&self) -> bool {
        !matches!(self, Rvalue::Load(_) | Rvalue::Call { .. })
    }

    /// Whether this rvalue reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, Rvalue::Load(_) | Rvalue::Call { .. })
    }
}

/// A statement inside a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = rv`.
    Assign {
        /// Destination register.
        dst: VarId,
        /// Right-hand side.
        rv: Rvalue,
    },
    /// `mem := src`.
    Store {
        /// Destination memory reference.
        dst: MemRef,
        /// Value stored.
        src: Operand,
    },
    /// Void call (callee's return value discarded or absent).
    CallVoid {
        /// Callee.
        func: FuncId,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// Software prefetch of an address; inserted by the
    /// `prefetch-loop-arrays` flag. Touches the cache without reading data.
    Prefetch {
        /// Address to warm.
        addr: MemRef,
    },
    /// Instrumentation counter increment (model-based rating, paper §2.3).
    /// Adds no control or data dependence to surrounding code but costs a
    /// couple of cycles, exactly the perturbation the paper calls
    /// "the side effect of the inserted counters".
    CounterInc {
        /// Counter bumped by one.
        counter: CounterId,
    },
}

impl Stmt {
    /// Variables read by this statement.
    pub fn uses(&self, out: &mut Vec<VarId>) {
        match self {
            Stmt::Assign { rv, .. } => rv.uses(out),
            Stmt::Store { dst, src } => {
                dst.address_vars(out);
                if let Operand::Var(v) = src {
                    out.push(*v);
                }
            }
            Stmt::CallVoid { args, .. } => {
                for a in args {
                    if let Operand::Var(v) = a {
                        out.push(*v);
                    }
                }
            }
            Stmt::Prefetch { addr } => addr.address_vars(out),
            Stmt::CounterInc { .. } => {}
        }
    }

    /// Variable written by this statement, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// Whether this statement has side effects beyond its register def
    /// (memory write, call, instrumentation) and so must not be removed by
    /// dead-code elimination.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Stmt::Assign { rv, .. } => matches!(rv, Rvalue::Call { .. }),
            Stmt::Store { .. } | Stmt::CallVoid { .. } | Stmt::CounterInc { .. } => true,
            // Dropping a prefetch never changes semantics, but it does
            // change performance; DCE keeps them and only the prefetch flag
            // controls their existence.
            Stmt::Prefetch { .. } => true,
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch.
    Branch {
        /// Condition operand (nonzero = taken).
        cond: Operand,
        /// Successor when true.
        on_true: BlockId,
        /// Successor when false.
        on_false: BlockId,
    },
    /// Function return.
    Return(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Jump(t) => (Some(*t), None),
            Terminator::Branch { on_true, on_false, .. } => (Some(*on_true), Some(*on_false)),
            Terminator::Return(_) => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Variables read by this terminator.
    pub fn uses(&self, out: &mut Vec<VarId>) {
        match self {
            Terminator::Branch { cond: Operand::Var(v), .. } => out.push(*v),
            Terminator::Return(Some(Operand::Var(v))) => out.push(*v),
            _ => {}
        }
    }

    /// Rewrite a successor edge (used by jump threading / block cleanup).
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump(t) => {
                if *t == from {
                    *t = to;
                }
            }
            Terminator::Branch { on_true, on_false, .. } => {
                if *on_true == from {
                    *on_true = to;
                }
                if *on_false == from {
                    *on_false = to;
                }
            }
            Terminator::Return(_) => {}
        }
    }
}

/// A constant-condition branch can be folded to a jump.
pub fn fold_branch(cond: Value, on_true: BlockId, on_false: BlockId) -> Terminator {
    if cond.is_true() {
        Terminator::Jump(on_true)
    } else {
        Terminator::Jump(on_false)
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.base {
            MemBase::Global(m) => write!(f, "m{}[{}]", m.0, self.index),
            MemBase::Ptr(p) => write!(f, "v{}[{}]", p.0, self.index),
        }
    }
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Use(a) => write!(f, "{a}"),
            Rvalue::Unary(op, a) => write!(f, "{op} {a}"),
            Rvalue::Binary(op, a, b) => write!(f, "{op} {a}, {b}"),
            Rvalue::Load(mr) => write!(f, "load {mr}"),
            Rvalue::AddrOf(m, idx) => write!(f, "addr m{}[{}]", m.0, idx),
            Rvalue::Select { cond, on_true, on_false } => {
                write!(f, "select {cond} ? {on_true} : {on_false}")
            }
            Rvalue::Call { func, args } => {
                write!(f, "call f{}(", func.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Assign { dst, rv } => write!(f, "v{} = {rv}", dst.0),
            Stmt::Store { dst, src } => write!(f, "store {dst} = {src}"),
            Stmt::CallVoid { func, args } => {
                write!(f, "call f{}(", func.0)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Stmt::Prefetch { addr } => write!(f, "prefetch {addr}"),
            Stmt::CounterInc { counter } => write!(f, "ctr c{} += 1", counter.0),
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jump b{}", t.0),
            Terminator::Branch { cond, on_true, on_false } => {
                write!(f, "br {cond} ? b{} : b{}", on_true.0, on_false.0)
            }
            Terminator::Return(None) => write!(f, "ret"),
            Terminator::Return(Some(v)) => write!(f, "ret {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_address_vars() {
        let mut vars = Vec::new();
        MemRef::global(MemId(0), VarId(3)).address_vars(&mut vars);
        assert_eq!(vars, vec![VarId(3)]);
        vars.clear();
        MemRef::ptr(VarId(1), 0i64).address_vars(&mut vars);
        assert_eq!(vars, vec![VarId(1)]);
    }

    #[test]
    fn rvalue_uses_and_purity() {
        let mut vars = Vec::new();
        let rv = Rvalue::Binary(BinOp::Add, Operand::Var(VarId(1)), Operand::Var(VarId(2)));
        rv.uses(&mut vars);
        assert_eq!(vars, vec![VarId(1), VarId(2)]);
        assert!(rv.is_pure());
        assert!(!Rvalue::Load(MemRef::global(MemId(0), 0i64)).is_pure());
    }

    #[test]
    fn stmt_side_effects() {
        let store = Stmt::Store {
            dst: MemRef::global(MemId(0), 0i64),
            src: Operand::const_i64(1),
        };
        assert!(store.has_side_effect());
        let assign = Stmt::Assign { dst: VarId(0), rv: Rvalue::Use(Operand::const_i64(1)) };
        assert!(!assign.has_side_effect());
        assert_eq!(assign.def(), Some(VarId(0)));
        assert_eq!(store.def(), None);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::const_i64(1),
            on_true: BlockId(1),
            on_false: BlockId(2),
        };
        let succ: Vec<_> = t.successors().collect();
        assert_eq!(succ, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Return(None).successors().count(), 0);
    }

    #[test]
    fn terminator_edge_rewrite() {
        let mut t = Terminator::Jump(BlockId(5));
        t.replace_successor(BlockId(5), BlockId(9));
        assert_eq!(t, Terminator::Jump(BlockId(9)));
    }

    #[test]
    fn branch_folding() {
        assert_eq!(
            fold_branch(Value::I64(1), BlockId(1), BlockId(2)),
            Terminator::Jump(BlockId(1))
        );
        assert_eq!(
            fold_branch(Value::I64(0), BlockId(1), BlockId(2)),
            Terminator::Jump(BlockId(2))
        );
    }
}
