//! Control-flow graph utilities: predecessor/successor maps, reverse
//! postorder, reachability, and dominators.

use crate::func::Function;
use crate::types::BlockId;

/// Predecessor/successor maps plus traversal orders for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors of each block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry (unreachable blocks are
    /// absent).
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b] = position of b in rpo`, or `usize::MAX` if
    /// unreachable.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Build the CFG for `f`.
    pub fn build(f: &Function) -> Self {
        let n = f.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        // Iterative DFS postorder.
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
        state[f.entry.index()] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let nxt = succs[b.index()][*i];
                *i += 1;
                if state[nxt.index()] == 0 {
                    state[nxt.index()] = 1;
                    stack.push((nxt, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg { succs, preds, rpo, rpo_index }
    }

    /// Whether block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }

    /// Number of blocks (including unreachable ones).
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }
}

/// Immediate-dominator tree, computed with the Cooper–Harvey–Kennedy
/// iterative algorithm over reverse postorder.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; `idom[entry] = entry`;
    /// `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Compute dominators for `f` given its CFG.
    pub fn build(f: &Function, cfg: &Cfg) -> Self {
        let n = f.num_blocks();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, Operand, Type};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        let c = b.binary(BinOp::Gt, x, 0i64);
        b.if_then_else(c, |b| b.copy(r, 1i64), |b| b.copy(r, 2i64));
        b.ret(Some(Operand::Var(r)));
        b.finish()
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        // entry(0) -> then(1), else(2); both -> join(3)
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo.len(), 4);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert!(cfg.is_reachable(BlockId(3)));
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let dom = Dominators::build(&f, &cfg);
        assert_eq!(dom.idom[1], Some(BlockId(0)));
        assert_eq!(dom.idom[2], Some(BlockId(0)));
        assert_eq!(dom.idom[3], Some(BlockId(0)), "join dominated by entry, not branches");
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.dominates(BlockId(3), BlockId(3)));
    }

    #[test]
    fn loop_cfg_rpo_places_header_before_body() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |_| {});
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        // header (1) precedes body (2) and latch (3) in RPO.
        let hi = cfg.rpo_index[1];
        let bi = cfg.rpo_index[2];
        let li = cfg.rpo_index[3];
        assert!(hi < bi && bi < li);
        // Back edge latch -> header present.
        assert!(cfg.succs[3].contains(&BlockId(1)));
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut f = Function::new("f", None);
        let dead = f.add_block();
        let cfg = Cfg::build(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo.len(), 1);
    }
}
