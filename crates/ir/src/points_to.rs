//! Simple flow-insensitive points-to analysis for pointer variables.
//!
//! The paper (§2.2) notes that "simple points-to analysis is sufficient"
//! to classify pointer-based references as scalar context variables: a
//! memory reference through a pointer that is not changed within the tuning
//! section behaves like a named scalar. We implement an
//! Andersen-style-but-tiny analysis: pointer facts are `AddrOf` statements
//! and copies; everything else makes a pointer ⊤ (may point anywhere).

use crate::dataflow::BitSet;
use crate::func::Function;
use crate::stmt::{Rvalue, Stmt};
use crate::types::{MemId, Operand, VarId};

/// Points-to facts for one function.
#[derive(Debug, Clone)]
pub struct PointsTo {
    /// For each variable: `None` = ⊤ (unknown / any region), `Some(set)` =
    /// may point only into these regions. Non-pointer variables have empty
    /// sets.
    sets: Vec<Option<BitSet>>,
    /// Whether the variable is ever reassigned after its first definition
    /// (used by context-variable analysis: "pointers that are not changed
    /// within the tuning section").
    pub def_count: Vec<u32>,
    num_mems_hint: usize,
}

impl PointsTo {
    /// Run the analysis on `f`. Region universe is discovered from
    /// `AddrOf` sites; `may_point_to` widens ⊤ to the caller-supplied
    /// region count.
    pub fn build(f: &Function) -> Self {
        // Find universe: max MemId mentioned in AddrOf.
        let mut max_mem = 0usize;
        for b in f.block_ids() {
            for s in &f.block(b).stmts {
                if let Stmt::Assign { rv: Rvalue::AddrOf(m, _), .. } = s {
                    max_mem = max_mem.max(m.index() + 1);
                }
            }
        }
        let nv = f.num_vars();
        let mut sets: Vec<Option<BitSet>> = vec![Some(BitSet::new(max_mem)); nv];
        let mut def_count = vec![0u32; nv];
        // Parameters of pointer type are ⊤: the caller decides.
        for &p in &f.params {
            if f.var_ty(p) == crate::types::Type::Ptr {
                sets[p.index()] = None;
            }
        }
        // Flow-insensitive fixpoint over copy/addr-of edges.
        let mut changed = true;
        let mut first_pass = true;
        while changed {
            changed = false;
            for b in f.block_ids() {
                for s in &f.block(b).stmts {
                    let Stmt::Assign { dst, rv } = s else { continue };
                    if first_pass {
                        def_count[dst.index()] += 1;
                    }
                    match rv {
                        Rvalue::AddrOf(m, _) => {
                            changed |= add_region(&mut sets, *dst, *m);
                        }
                        Rvalue::Use(Operand::Var(src))
                        | Rvalue::Binary(crate::types::BinOp::PtrAdd, Operand::Var(src), _)
                        | Rvalue::Select {
                            on_true: Operand::Var(src),
                            ..
                        } => {
                            changed |= merge(&mut sets, *dst, *src);
                            // Select's false arm handled below.
                            if let Rvalue::Select { on_false: Operand::Var(src2), .. } = rv {
                                changed |= merge(&mut sets, *dst, *src2);
                            }
                        }
                        Rvalue::Load(_) | Rvalue::Call { .. }
                            // Pointer loaded from memory or returned from a
                            // call: unknown.
                            if f.var_ty(*dst) == crate::types::Type::Ptr
                                && sets[dst.index()].is_some()
                            => {
                                sets[dst.index()] = None;
                                changed = true;
                            }
                        _ => {}
                    }
                }
            }
            first_pass = false;
        }
        PointsTo { sets, def_count, num_mems_hint: max_mem }
    }

    /// Regions `v` may point into; `num_mems` bounds the answer for ⊤.
    pub fn may_point_to(&self, v: VarId, num_mems: usize) -> Vec<MemId> {
        match &self.sets[v.index()] {
            Some(s) => s.iter().map(|i| MemId(i as u32)).collect(),
            None => (0..num_mems as u32).map(MemId).collect(),
        }
    }

    /// Whether the analysis has an exact (non-⊤) answer for `v`.
    pub fn is_precise(&self, v: VarId) -> bool {
        self.sets[v.index()].is_some()
    }

    /// Whether `v` is assigned at most once in the function body (the
    /// "pointer not changed within the TS" condition of paper §2.2).
    pub fn is_single_def(&self, v: VarId) -> bool {
        self.def_count[v.index()] <= 1
    }

    /// Whether two pointer variables can be proven to never alias
    /// (disjoint points-to sets, both precise). Used by the
    /// `strict-aliasing` flag's register-promotion legality check: under
    /// strict aliasing the optimizer *assumes* no alias when regions have
    /// distinct declared types, even without this proof — that assumption
    /// is exactly what hurts ART (paper §5.2).
    pub fn provably_no_alias(&self, a: VarId, b: VarId) -> bool {
        match (&self.sets[a.index()], &self.sets[b.index()]) {
            (Some(sa), Some(sb)) => {
                let mut inter = sa.clone();
                // Widen to common universe if needed.
                if sa.universe() == sb.universe() {
                    inter.intersect_with(sb);
                    inter.is_empty()
                } else {
                    let sa_v: Vec<_> = sa.iter().collect();
                    !sa_v.iter().any(|i| *i < sb.universe() && sb.contains(*i))
                }
            }
            _ => false,
        }
    }

    /// Universe size discovered from the function body.
    pub fn discovered_regions(&self) -> usize {
        self.num_mems_hint
    }
}

fn add_region(sets: &mut [Option<BitSet>], dst: VarId, m: MemId) -> bool {
    match &mut sets[dst.index()] {
        Some(s) => {
            if m.index() >= s.universe() {
                // Shouldn't happen: universe covers all AddrOf regions.
                return false;
            }
            s.insert(m.index())
        }
        None => false,
    }
}

fn merge(sets: &mut [Option<BitSet>], dst: VarId, src: VarId) -> bool {
    if dst == src {
        return false;
    }
    let src_set = sets[src.index()].clone();
    match (&mut sets[dst.index()], src_set) {
        (Some(d), Some(s)) => d.union_with(&s),
        (Some(_), None) => {
            sets[dst.index()] = None;
            true
        }
        (None, _) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::MemRef;
    use crate::types::{BinOp, MemId, Type};

    #[test]
    fn addr_of_gives_precise_set() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.addr_of(MemId(2), 0i64);
        let q = b.binary(BinOp::PtrAdd, p, 4i64);
        b.ret(None);
        let f = b.finish();
        let pts = PointsTo::build(&f);
        assert!(pts.is_precise(p));
        assert_eq!(pts.may_point_to(q, 8), vec![MemId(2)]);
        assert!(pts.is_single_def(p));
    }

    #[test]
    fn pointer_param_is_top() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("p", Type::Ptr);
        b.ret(None);
        let f = b.finish();
        let pts = PointsTo::build(&f);
        assert!(!pts.is_precise(p));
        assert_eq!(pts.may_point_to(p, 3).len(), 3, "⊤ widens to all regions");
    }

    #[test]
    fn loaded_pointer_is_top() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.load(Type::Ptr, MemRef::global(MemId(0), 0i64));
        b.ret(None);
        let f = b.finish();
        let pts = PointsTo::build(&f);
        assert!(!pts.is_precise(p));
    }

    #[test]
    fn merge_through_select() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.addr_of(MemId(0), 0i64);
        let q = b.addr_of(MemId(1), 0i64);
        let r = b.temp(Type::Ptr);
        b.assign(
            r,
            crate::stmt::Rvalue::Select {
                cond: 1i64.into(),
                on_true: p.into(),
                on_false: q.into(),
            },
        );
        b.ret(None);
        let f = b.finish();
        let pts = PointsTo::build(&f);
        assert_eq!(pts.may_point_to(r, 4), vec![MemId(0), MemId(1)]);
        assert!(pts.provably_no_alias(p, q));
        assert!(!pts.provably_no_alias(p, r));
    }

    #[test]
    fn reassigned_pointer_not_single_def() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.temp(Type::Ptr);
        b.assign(p, crate::stmt::Rvalue::AddrOf(MemId(0), 0i64.into()));
        b.assign(p, crate::stmt::Rvalue::AddrOf(MemId(1), 0i64.into()));
        b.ret(None);
        let f = b.finish();
        let pts = PointsTo::build(&f);
        assert!(!pts.is_single_def(p));
        assert_eq!(pts.may_point_to(p, 4), vec![MemId(0), MemId(1)]);
    }
}
