//! Programs, memory-region declarations, and runtime memory buffers.

use crate::func::Function;
use crate::types::{FuncId, MemId, PtrVal, Type, Value};

/// Declaration of a memory region (a one-dimensional array of one element
/// type). Multi-dimensional workload arrays are linearized by the builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemDecl {
    /// Region name.
    pub name: String,
    /// Element type.
    pub elem: Type,
    /// Element count.
    pub len: usize,
}

/// A whole program: functions plus region declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Function table; `FuncId(i)` indexes entry `i`.
    pub funcs: Vec<Function>,
    /// Region table; `MemId(i)` indexes entry `i`.
    pub mems: Vec<MemDecl>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Declare a memory region, returning its id.
    pub fn add_mem(&mut self, name: impl Into<String>, elem: Type, len: usize) -> MemId {
        let id = MemId(self.mems.len() as u32);
        self.mems.push(MemDecl { name: name.into(), elem, len });
        id
    }

    /// Access a function.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    #[inline]
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Look up a region by name.
    pub fn mem_by_name(&self, name: &str) -> Option<MemId> {
        self.mems
            .iter()
            .position(|m| m.name == name)
            .map(|i| MemId(i as u32))
    }
}

/// Runtime storage for one memory region. Typed vectors keep the hot
/// interpreter/simulator loops monomorphic and cache-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// Integer array.
    I64(Vec<i64>),
    /// Float array.
    F64(Vec<f64>),
    /// Pointer array (used by the indirection-heavy integer workloads).
    Ptr(Vec<PtrVal>),
}

impl Buffer {
    /// Zero-initialized buffer of the declared type and length.
    pub fn zeroed(decl: &MemDecl) -> Self {
        match decl.elem {
            Type::I64 => Buffer::I64(vec![0; decl.len]),
            Type::F64 => Buffer::F64(vec![0.0; decl.len]),
            Type::Ptr => Buffer::Ptr(vec![PtrVal { mem: MemId(0), offset: 0 }; decl.len]),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            Buffer::I64(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::Ptr(v) => v.len(),
        }
    }

    /// Whether the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read element `i` as a [`Value`]. Panics on out-of-bounds, which the
    /// validator and interpreter surface as workload bugs.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        match self {
            Buffer::I64(v) => Value::I64(v[i]),
            Buffer::F64(v) => Value::F64(v[i]),
            Buffer::Ptr(v) => Value::Ptr(v[i]),
        }
    }

    /// Write element `i`.
    #[inline]
    pub fn set(&mut self, i: usize, val: Value) {
        match (self, val) {
            (Buffer::I64(v), Value::I64(x)) => v[i] = x,
            (Buffer::F64(v), Value::F64(x)) => v[i] = x,
            (Buffer::Ptr(v), Value::Ptr(x)) => v[i] = x,
            (buf, val) => panic!("type mismatch storing {val:?} into {:?} buffer", buf.tag()),
        }
    }

    fn tag(&self) -> Type {
        match self {
            Buffer::I64(_) => Type::I64,
            Buffer::F64(_) => Type::F64,
            Buffer::Ptr(_) => Type::Ptr,
        }
    }
}

/// The runtime memory image of a program: one buffer per region.
///
/// Both the reference interpreter and the machine simulator execute against
/// a `MemoryImage`; re-execution-based rating snapshots and restores parts
/// of it (the `Modified_Input(TS)` set, paper §2.4.2).
#[derive(Debug, Clone)]
pub struct MemoryImage {
    /// One buffer per declared region.
    pub bufs: Vec<Buffer>,
    /// When armed ([`MemoryImage::begin_journal`]), every [`store`]
    /// is also appended here in order. Used to *record* deterministic
    /// write streams (workload argument generation) once so they can be
    /// replayed verbatim later without re-running the generator. `None`
    /// (the default, and the state after [`end_journal`]) costs the hot
    /// store path one predictable branch.
    ///
    /// [`store`]: MemoryImage::store
    /// [`end_journal`]: MemoryImage::end_journal
    journal: Option<Vec<(MemId, i64, Value)>>,
}

/// Journals are recording plumbing, not memory content: two images are
/// equal iff their buffers are.
impl PartialEq for MemoryImage {
    fn eq(&self, other: &Self) -> bool {
        self.bufs == other.bufs
    }
}

impl MemoryImage {
    /// Zero-initialized image matching the program's declarations.
    pub fn new(prog: &Program) -> Self {
        MemoryImage {
            bufs: prog.mems.iter().map(Buffer::zeroed).collect(),
            journal: None,
        }
    }

    /// Image with no regions at all (placeholder uses).
    pub fn empty() -> Self {
        MemoryImage { bufs: Vec::new(), journal: None }
    }

    /// Read `mem[idx]`.
    #[inline]
    pub fn load(&self, mem: MemId, idx: i64) -> Value {
        self.bufs[mem.index()].get(idx as usize)
    }

    /// Write `mem[idx]`. `inline(always)` with the journal append kept
    /// out-of-line: simulated stores run this once per executed store
    /// op, and journalling is only ever armed during argument-stream
    /// recording — the hot path must stay one predictable branch.
    #[inline(always)]
    pub fn store(&mut self, mem: MemId, idx: i64, val: Value) {
        if self.journal.is_some() {
            self.journal_push(mem, idx, val);
        }
        self.bufs[mem.index()].set(idx as usize, val);
    }

    #[cold]
    fn journal_push(&mut self, mem: MemId, idx: i64, val: Value) {
        self.journal
            .as_mut()
            .expect("journal armed")
            .push((mem, idx, val));
    }

    /// Start journalling: subsequent [`MemoryImage::store`] calls are
    /// recorded in order until [`MemoryImage::end_journal`].
    pub fn begin_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// Stop journalling and take the recorded write stream (empty if
    /// journalling was never started).
    pub fn end_journal(&mut self) -> Vec<(MemId, i64, Value)> {
        self.journal.take().unwrap_or_default()
    }

    /// Replay a write stream recorded via the journal.
    pub fn replay(&mut self, writes: &[(MemId, i64, Value)]) {
        for &(m, idx, v) in writes {
            self.bufs[m.index()].set(idx as usize, v);
        }
    }

    /// Buffer for a region.
    #[inline]
    pub fn buf(&self, mem: MemId) -> &Buffer {
        &self.bufs[mem.index()]
    }

    /// Mutable buffer for a region.
    #[inline]
    pub fn buf_mut(&mut self, mem: MemId) -> &mut Buffer {
        &mut self.bufs[mem.index()]
    }

    /// Snapshot selected regions (the save step of RBR).
    pub fn snapshot(&self, regions: &[MemId]) -> Vec<(MemId, Buffer)> {
        regions.iter().map(|&m| (m, self.bufs[m.index()].clone())).collect()
    }

    /// Restore a snapshot taken with [`MemoryImage::snapshot`].
    pub fn restore(&mut self, snap: &[(MemId, Buffer)]) {
        for (m, buf) in snap {
            self.bufs[m.index()] = buf.clone();
        }
    }

    /// Total element count across selected regions (cost model for RBR's
    /// save/restore overhead).
    pub fn region_elems(&self, regions: &[MemId]) -> usize {
        regions.iter().map(|&m| self.bufs[m.index()].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_tables() {
        let mut p = Program::new();
        let m = p.add_mem("a", Type::F64, 8);
        let f = p.add_func(Function::new("main", None));
        assert_eq!(p.mem_by_name("a"), Some(m));
        assert_eq!(p.func_by_name("main"), Some(f));
        assert_eq!(p.func_by_name("nope"), None);
    }

    #[test]
    fn buffer_roundtrip() {
        let decl = MemDecl { name: "x".into(), elem: Type::I64, len: 4 };
        let mut b = Buffer::zeroed(&decl);
        assert_eq!(b.len(), 4);
        b.set(2, Value::I64(7));
        assert_eq!(b.get(2), Value::I64(7));
        assert_eq!(b.get(0), Value::I64(0));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn buffer_type_mismatch_panics() {
        let decl = MemDecl { name: "x".into(), elem: Type::I64, len: 1 };
        let mut b = Buffer::zeroed(&decl);
        b.set(0, Value::F64(1.0));
    }

    #[test]
    fn image_snapshot_restore() {
        let mut p = Program::new();
        let a = p.add_mem("a", Type::I64, 4);
        let b = p.add_mem("b", Type::I64, 4);
        let mut img = MemoryImage::new(&p);
        img.store(a, 0, Value::I64(1));
        img.store(b, 0, Value::I64(2));
        let snap = img.snapshot(&[a]);
        img.store(a, 0, Value::I64(99));
        img.store(b, 0, Value::I64(99));
        img.restore(&snap);
        assert_eq!(img.load(a, 0), Value::I64(1), "saved region restored");
        assert_eq!(img.load(b, 0), Value::I64(99), "unsaved region untouched");
        assert_eq!(img.region_elems(&[a, b]), 8);
    }
}
