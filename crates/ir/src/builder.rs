//! Ergonomic construction of IR functions.
//!
//! [`FunctionBuilder`] keeps a *current block* cursor and offers structured
//! control-flow helpers (`for_loop`, `while_loop`, `if_then`, `if_then_else`)
//! so workload kernels read like the Fortran/C loops they model.

use crate::func::Function;
use crate::stmt::{MemRef, Rvalue, Stmt, Terminator};
use crate::types::{BinOp, BlockId, FuncId, MemId, Operand, Type, UnOp, VarId};

/// Builder over a [`Function`] under construction.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start a new function. The entry block is current.
    pub fn new(name: impl Into<String>, ret: Option<Type>) -> Self {
        let func = Function::new(name, ret);
        let cur = func.entry;
        FunctionBuilder { func, cur }
    }

    /// Declare a parameter (must precede non-parameter variables).
    pub fn param(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        assert_eq!(
            self.func.params.len(),
            self.func.vars.len(),
            "declare all params before other variables"
        );
        let v = self.func.add_var(name, ty);
        self.func.params.push(v);
        v
    }

    /// Declare a local variable.
    pub fn var(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        self.func.add_var(name, ty)
    }

    /// Fresh temporary.
    pub fn temp(&mut self, ty: Type) -> VarId {
        self.func.add_temp(ty)
    }

    /// The block currently receiving statements.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Redirect emission to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
    }

    /// Create a new (unreachable until linked) block.
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Append a raw statement to the current block.
    pub fn emit(&mut self, s: Stmt) {
        self.func.block_mut(self.cur).stmts.push(s);
    }

    /// `dst = rv`.
    pub fn assign(&mut self, dst: VarId, rv: Rvalue) {
        self.emit(Stmt::Assign { dst, rv });
    }

    /// `dst = op`.
    pub fn copy(&mut self, dst: VarId, op: impl Into<Operand>) {
        self.assign(dst, Rvalue::Use(op.into()));
    }

    /// Fresh temp = `a <op> b`; returns the temp.
    pub fn binary(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> VarId {
        let a = a.into();
        let b = b.into();
        let ty = if op.is_comparison() {
            Type::I64
        } else if op == BinOp::PtrAdd {
            Type::Ptr
        } else if op == BinOp::PtrDiff {
            Type::I64
        } else if op.is_float() {
            Type::F64
        } else {
            Type::I64
        };
        let t = self.temp(ty);
        self.assign(t, Rvalue::Binary(op, a, b));
        t
    }

    /// `dst = a <op> b` into an existing variable.
    pub fn binary_into(
        &mut self,
        dst: VarId,
        op: BinOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.assign(dst, Rvalue::Binary(op, a.into(), b.into()));
    }

    /// Fresh temp = `op a`.
    pub fn unary(&mut self, op: UnOp, a: impl Into<Operand>) -> VarId {
        let ty = match op {
            UnOp::IntToF | UnOp::FNeg | UnOp::FAbs | UnOp::FSqrt => Type::F64,
            UnOp::FToInt | UnOp::Neg | UnOp::Not => Type::I64,
        };
        let t = self.temp(ty);
        self.assign(t, Rvalue::Unary(op, a.into()));
        t
    }

    /// Fresh temp = `load mem[idx]` with the region's element type.
    pub fn load(&mut self, elem_ty: Type, mr: MemRef) -> VarId {
        let t = self.temp(elem_ty);
        self.assign(t, Rvalue::Load(mr));
        t
    }

    /// `load mem[idx]` into an existing variable.
    pub fn load_into(&mut self, dst: VarId, mr: MemRef) {
        self.assign(dst, Rvalue::Load(mr));
    }

    /// `store mem[idx] = src`.
    pub fn store(&mut self, mr: MemRef, src: impl Into<Operand>) {
        self.emit(Stmt::Store { dst: mr, src: src.into() });
    }

    /// Fresh pointer temp = `&mem[idx]`.
    pub fn addr_of(&mut self, mem: MemId, idx: impl Into<Operand>) -> VarId {
        let t = self.temp(Type::Ptr);
        self.assign(t, Rvalue::AddrOf(mem, idx.into()));
        t
    }

    /// Fresh temp = `call f(args)` with result type `ty`.
    pub fn call(&mut self, ty: Type, func: FuncId, args: Vec<Operand>) -> VarId {
        let t = self.temp(ty);
        self.assign(t, Rvalue::Call { func, args });
        t
    }

    /// Void call.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Operand>) {
        self.emit(Stmt::CallVoid { func, args });
    }

    /// Terminate the current block with an unconditional jump and move to
    /// the target.
    pub fn jump(&mut self, target: BlockId) {
        self.func.block_mut(self.cur).term = Terminator::Jump(target);
        self.cur = target;
    }

    /// Terminate with a conditional branch (does not move the cursor).
    pub fn branch(&mut self, cond: impl Into<Operand>, on_true: BlockId, on_false: BlockId) {
        self.func.block_mut(self.cur).term =
            Terminator::Branch { cond: cond.into(), on_true, on_false };
    }

    /// Terminate with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.func.block_mut(self.cur).term = Terminator::Return(val);
    }

    /// Structured counted loop: `for iv = start; iv < end; iv += step`.
    ///
    /// `iv` must be a previously declared `I64` variable. The body closure
    /// emits into the loop body; afterwards the cursor sits in the exit
    /// block. The generated shape (preheader → header(test) → body… → latch
    /// → header; header → exit) is what [`crate::trip_count`] recognizes as
    /// a counted loop.
    pub fn for_loop(
        &mut self,
        iv: VarId,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut Self),
    ) {
        let end = end.into();
        self.copy(iv, start);
        let header = self.new_block();
        let body_bb = self.new_block();
        let latch = self.new_block();
        let exit = self.new_block();
        self.jump(header);
        let cond = self.binary(BinOp::Lt, iv, end);
        self.branch(cond, body_bb, exit);
        self.switch_to(body_bb);
        body(self);
        self.jump(latch);
        // Cursor may have moved inside `body`; `jump(latch)` linked the last
        // body block to the latch and left the cursor there.
        self.binary_into(iv, BinOp::Add, iv, step);
        self.jump(header);
        self.switch_to(exit);
    }

    /// Structured while loop. `cond` emits the condition computation into
    /// the header and returns the condition operand; `body` emits the body.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.new_block();
        let body_bb = self.new_block();
        let exit = self.new_block();
        self.jump(header);
        let c = cond(self);
        self.branch(c, body_bb, exit);
        self.switch_to(body_bb);
        body(self);
        self.jump(header);
        self.switch_to(exit);
    }

    /// Structured `if (cond) { then }`.
    pub fn if_then(&mut self, cond: impl Into<Operand>, then_b: impl FnOnce(&mut Self)) {
        let t = self.new_block();
        let join = self.new_block();
        self.branch(cond, t, join);
        self.switch_to(t);
        then_b(self);
        self.jump(join);
        self.switch_to(join);
    }

    /// Structured `if (cond) { then } else { else }`.
    pub fn if_then_else(
        &mut self,
        cond: impl Into<Operand>,
        then_b: impl FnOnce(&mut Self),
        else_b: impl FnOnce(&mut Self),
    ) {
        let t = self.new_block();
        let e = self.new_block();
        let join = self.new_block();
        self.branch(cond, t, e);
        self.switch_to(t);
        then_b(self);
        self.jump(join);
        self.switch_to(e);
        else_b(self);
        self.jump(join);
        self.switch_to(join);
    }

    /// `break`-like early exit helper: branch to `target` if `cond`,
    /// otherwise continue in a fresh fallthrough block.
    pub fn branch_out_if(&mut self, cond: impl Into<Operand>, target: BlockId) {
        let cont = self.new_block();
        self.branch(cond, target, cont);
        self.switch_to(cont);
    }

    /// Finish, returning the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Peek at the function mid-construction (tests).
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    #[test]
    fn param_ordering_enforced() {
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("n", Type::I64);
        assert_eq!(p, VarId(0));
        let _local = b.var("x", Type::I64);
        // Declaring a param after a local would panic; checked separately.
    }

    #[test]
    #[should_panic(expected = "declare all params")]
    fn late_param_panics() {
        let mut b = FunctionBuilder::new("f", None);
        let _local = b.var("x", Type::I64);
        let _p = b.param("n", Type::I64);
    }

    #[test]
    fn for_loop_shape() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        b.ret(Some(Operand::Var(acc)));
        let f = b.finish();
        // entry + header + body + latch + exit = 5 blocks.
        assert_eq!(f.num_blocks(), 5);
        // Exit block holds the return.
        let exit = &f.blocks[4];
        assert_eq!(exit.term, Terminator::Return(Some(Operand::Var(acc))));
        // Header has the comparison and a branch.
        let header = &f.blocks[1];
        assert!(matches!(header.term, Terminator::Branch { .. }));
    }

    #[test]
    fn if_then_else_joins() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        let c = b.binary(BinOp::Gt, x, 0i64);
        b.if_then_else(
            c,
            |b| b.copy(r, 1i64),
            |b| b.copy(r, Operand::Const(Value::I64(-1))),
        );
        b.ret(Some(Operand::Var(r)));
        let f = b.finish();
        assert_eq!(f.num_blocks(), 4); // entry, then, else, join
    }
}
