//! IR well-formedness validation.
//!
//! Run after construction and after every optimizer pass (in debug builds)
//! to catch malformed IR early: dangling ids, type mismatches, uses of
//! never-assigned locals, malformed terminators.

use crate::cfg::Cfg;
use crate::func::Function;
use crate::program::Program;
use crate::stmt::{MemBase, MemRef, Rvalue, Stmt, Terminator};
use crate::types::{BinOp, FuncId, Operand, Type, UnOp, VarId};

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Function where the failure occurred.
    pub func: String,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in {}: {}", self.func, self.msg)
    }
}

impl std::error::Error for ValidateError {}

/// Validate a whole program.
pub fn validate_program(prog: &Program) -> Result<(), ValidateError> {
    for (i, _) in prog.funcs.iter().enumerate() {
        validate_function(prog, FuncId(i as u32))?;
    }
    Ok(())
}

/// Validate one function.
pub fn validate_function(prog: &Program, func: FuncId) -> Result<(), ValidateError> {
    let f = prog.func(func);
    let err = |msg: String| ValidateError { func: f.name.clone(), msg };
    let nv = f.num_vars();
    let nb = f.num_blocks();
    if f.entry.index() >= nb {
        return Err(err("entry block out of range".into()));
    }
    for (pi, p) in f.params.iter().enumerate() {
        if p.index() != pi {
            return Err(err("params must be a prefix of the variable table".into()));
        }
    }
    let check_var = |v: VarId| -> Result<Type, ValidateError> {
        if v.index() >= nv {
            return Err(err(format!("variable v{} out of range", v.0)));
        }
        Ok(f.var_ty(v))
    };
    let check_op = |op: &Operand| -> Result<Type, ValidateError> {
        match op {
            Operand::Var(v) => check_var(*v),
            Operand::Const(c) => Ok(c.ty()),
        }
    };
    let check_memref = |mr: &MemRef| -> Result<Type, ValidateError> {
        if check_op(&mr.index)? != Type::I64 {
            return Err(err(format!("non-integer subscript in {mr}")));
        }
        match mr.base {
            MemBase::Global(m) => {
                if m.index() >= prog.mems.len() {
                    return Err(err(format!("region m{} out of range", m.0)));
                }
                Ok(prog.mems[m.index()].elem)
            }
            MemBase::Ptr(p) => {
                if check_var(p)? != Type::Ptr {
                    return Err(err(format!("indirect base v{} is not a pointer", p.0)));
                }
                // Element type through a pointer is checked dynamically by
                // the buffer; statically we accept any.
                Ok(Type::I64) // placeholder; callers use rvalue_ty instead
            }
        }
    };
    for b in f.block_ids() {
        let blk = f.block(b);
        for s in &blk.stmts {
            match s {
                Stmt::Assign { dst, rv } => {
                    let dt = check_var(*dst)?;
                    if let Some(rt) = rvalue_ty(prog, f, rv, &check_op)? {
                        // Loads via pointer have unknown static type.
                        if rt != dt && !matches!(rv, Rvalue::Load(MemRef { base: MemBase::Ptr(_), .. })) {
                            return Err(err(format!(
                                "type mismatch: v{}:{dt} = {rv} of type {rt}",
                                dst.0
                            )));
                        }
                    }
                    if let Rvalue::Load(mr) = rv {
                        check_memref(mr)?;
                        if let MemBase::Global(m) = mr.base {
                            if prog.mems[m.index()].elem != dt {
                                return Err(err(format!(
                                    "load type mismatch: v{}:{dt} = load {mr}",
                                    dst.0
                                )));
                            }
                        }
                    }
                    if let Rvalue::Call { func: callee, args } = rv {
                        check_call(prog, f, *callee, args, true).map_err(err)?;
                        for a in args {
                            check_op(a)?;
                        }
                    }
                }
                Stmt::Store { dst, src } => {
                    check_memref(dst)?;
                    let st = check_op(src)?;
                    if let MemBase::Global(m) = dst.base {
                        if prog.mems[m.index()].elem != st {
                            return Err(err(format!("store type mismatch into {dst}")));
                        }
                    }
                }
                Stmt::CallVoid { func: callee, args } => {
                    check_call(prog, f, *callee, args, false).map_err(err)?;
                    for a in args {
                        check_op(a)?;
                    }
                }
                Stmt::Prefetch { addr } => {
                    check_memref(addr)?;
                }
                Stmt::CounterInc { .. } => {}
            }
        }
        match &blk.term {
            Terminator::Jump(t) => {
                if t.index() >= nb {
                    return Err(err(format!("jump target b{} out of range", t.0)));
                }
            }
            Terminator::Branch { cond, on_true, on_false } => {
                check_op(cond)?;
                if on_true.index() >= nb || on_false.index() >= nb {
                    return Err(err("branch target out of range".into()));
                }
            }
            Terminator::Return(v) => {
                match (v, f.ret) {
                    (Some(op), Some(rt)) => {
                        let t = check_op(op)?;
                        if t != rt {
                            return Err(err(format!(
                                "return type mismatch: {t} vs declared {rt}"
                            )));
                        }
                    }
                    (None, Some(_)) => {
                        // Unsealed builder blocks default to bare `ret`;
                        // only reachable ones are a problem.
                        let cfg = Cfg::build(f);
                        if cfg.is_reachable(b) {
                            return Err(err(format!(
                                "reachable bare return in value function at b{}",
                                b.0
                            )));
                        }
                    }
                    (Some(_), None) => {
                        return Err(err("value return in void function".into()))
                    }
                    (None, None) => {}
                }
            }
        }
    }
    Ok(())
}

fn check_call(
    prog: &Program,
    _f: &Function,
    callee: FuncId,
    args: &[Operand],
    needs_value: bool,
) -> Result<(), String> {
    if callee.index() >= prog.funcs.len() {
        return Err(format!("callee f{} out of range", callee.0));
    }
    let cf = prog.func(callee);
    if cf.params.len() != args.len() {
        return Err(format!(
            "arity mismatch calling {}: {} args vs {} params",
            cf.name,
            args.len(),
            cf.params.len()
        ));
    }
    if needs_value && cf.ret.is_none() {
        return Err(format!("value call of void function {}", cf.name));
    }
    Ok(())
}

/// Static result type of an rvalue, `None` when unknowable (pointer loads).
fn rvalue_ty(
    prog: &Program,
    f: &Function,
    rv: &Rvalue,
    check_op: &dyn Fn(&Operand) -> Result<Type, ValidateError>,
) -> Result<Option<Type>, ValidateError> {
    Ok(match rv {
        Rvalue::Use(a) => Some(check_op(a)?),
        Rvalue::Unary(op, a) => {
            check_op(a)?;
            Some(match op {
                UnOp::Neg | UnOp::Not | UnOp::FToInt => Type::I64,
                UnOp::FNeg | UnOp::IntToF | UnOp::FAbs | UnOp::FSqrt => Type::F64,
            })
        }
        Rvalue::Binary(op, a, b) => {
            check_op(a)?;
            check_op(b)?;
            Some(if op.is_comparison() {
                Type::I64
            } else if *op == BinOp::PtrAdd {
                Type::Ptr
            } else if *op == BinOp::PtrDiff {
                Type::I64
            } else if op.is_float() {
                Type::F64
            } else {
                Type::I64
            })
        }
        Rvalue::Load(MemRef { base: MemBase::Global(m), .. }) => {
            if m.index() >= prog.mems.len() {
                return Err(ValidateError {
                    func: f.name.clone(),
                    msg: format!("region m{} out of range", m.0),
                });
            }
            Some(prog.mems[m.index()].elem)
        }
        Rvalue::Load(_) => None,
        Rvalue::AddrOf(..) => Some(Type::Ptr),
        Rvalue::Select { cond, on_true, on_false } => {
            check_op(cond)?;
            let t = check_op(on_true)?;
            let e = check_op(on_false)?;
            if t != e {
                return Err(ValidateError {
                    func: f.name.clone(),
                    msg: "select arm types differ".into(),
                });
            }
            Some(t)
        }
        Rvalue::Call { func: callee, .. } => prog.func(*callee).ret,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::stmt::MemRef;
    use crate::types::{MemId, Value};

    #[test]
    fn valid_function_passes() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::F64, 8);
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::F64, MemRef::global(a, i));
            b.binary_into(acc, BinOp::FAdd, acc, x);
        });
        b.ret(Some(acc.into()));
        prog.add_func(b.finish());
        assert_eq!(validate_program(&prog), Ok(()));
    }

    #[test]
    fn type_mismatch_caught() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", None);
        let x = b.var("x", Type::I64);
        // x:i64 = fadd 1.0, 2.0 — mismatch.
        b.assign(
            x,
            Rvalue::Binary(BinOp::FAdd, Operand::Const(Value::F64(1.0)), Operand::Const(Value::F64(2.0))),
        );
        b.ret(None);
        prog.add_func(b.finish());
        let e = validate_program(&prog).unwrap_err();
        assert!(e.msg.contains("type mismatch"), "{e}");
    }

    #[test]
    fn out_of_range_region_caught() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", None);
        let _x = b.load(Type::I64, MemRef::global(MemId(5), 0i64));
        b.ret(None);
        prog.add_func(b.finish());
        let e = validate_program(&prog).unwrap_err();
        assert!(e.msg.contains("out of range"), "{e}");
    }

    #[test]
    fn arity_mismatch_caught() {
        let mut prog = Program::new();
        let mut cb = FunctionBuilder::new("callee", None);
        let _p = cb.param("p", Type::I64);
        cb.ret(None);
        let callee = prog.add_func(cb.finish());
        let mut b = FunctionBuilder::new("f", None);
        b.call_void(callee, vec![]);
        b.ret(None);
        prog.add_func(b.finish());
        let e = validate_program(&prog).unwrap_err();
        assert!(e.msg.contains("arity"), "{e}");
    }

    #[test]
    fn store_type_mismatch_caught() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::F64, 4);
        let mut b = FunctionBuilder::new("f", None);
        b.store(MemRef::global(a, 0i64), 1i64);
        b.ret(None);
        prog.add_func(b.finish());
        let e = validate_program(&prog).unwrap_err();
        assert!(e.msg.contains("store type mismatch"), "{e}");
    }
}
