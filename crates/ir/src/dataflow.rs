//! Dense bitsets and small shared pieces of the dataflow analyses.

/// A fixed-universe dense bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Universe size.
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Insert `i`; returns true if newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Remove `i`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] &= !(1 << b);
        old & (1 << b) != 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Copy contents from `other`.
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to fit the max element; mostly a test convenience.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert is a no-op");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_and_change_detection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        b.insert(3);
        b.insert(99);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "idempotent union reports no change");
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 99]);
    }

    #[test]
    fn subtract_and_intersect() {
        let mut a: BitSet = [1, 2, 3, 64, 65].into_iter().collect();
        let b: BitSet = [2, 64, 65, 65].into_iter().collect();
        let mut c = a.clone();
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
        c.intersect_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 64, 65]);
    }

    #[test]
    fn iteration_order_is_sorted() {
        let s: BitSet = [77, 3, 5, 120].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 5, 77, 120]);
    }
}
