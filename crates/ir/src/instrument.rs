//! Basic-block counter instrumentation for model-based rating.
//!
//! MBR needs per-invocation entry counts for selected basic blocks (paper
//! §2.3). For regular blocks the counts come from [`crate::trip_count`]
//! expressions; the rest get a [`crate::stmt::Stmt::CounterInc`] prepended.
//! The counters "do not add control dependences or data dependences to the
//! original codes" — `CounterInc` reads and writes no IR variable — but the
//! simulator charges them cycles, modelling the paper's counter side
//! effect.

use crate::cfg::{Cfg, Dominators};
use crate::func::Function;
use crate::loops::LoopForest;
use crate::stmt::Stmt;
use crate::trip_count::{block_count_expr, recognize_all, CountExpr};
use crate::types::{BlockId, CounterId};

/// How the per-invocation entry count of one block is obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum CountSource {
    /// Computed from TS-entry values — no instrumentation needed.
    Expr(CountExpr),
    /// Read from a runtime counter.
    Counter(CounterId),
}

/// Instrumentation plan for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterPlan {
    /// Per requested block: how its count is obtained.
    pub sources: Vec<(BlockId, CountSource)>,
    /// Number of counters inserted.
    pub num_counters: usize,
}

/// Instrument `f` so each block in `blocks` has an obtainable entry count.
/// Regular blocks get symbolic expressions; irregular blocks get counters
/// inserted at the top of the block. Returns the plan.
pub fn instrument_block_counts(f: &mut Function, blocks: &[BlockId]) -> CounterPlan {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let counted = recognize_all(f, &cfg, &forest);
    let mut sources = Vec::with_capacity(blocks.len());
    let mut next = 0u32;
    for &b in blocks {
        match block_count_expr(f, &dom, &forest, &counted, b) {
            Some(expr) => sources.push((b, CountSource::Expr(expr))),
            None => {
                let c = CounterId(next);
                next += 1;
                f.block_mut(b)
                    .stmts
                    .insert(0, Stmt::CounterInc { counter: c });
                sources.push((b, CountSource::Counter(c)));
            }
        }
    }
    CounterPlan { sources, num_counters: next as usize }
}

/// Remove every `CounterInc` from `f` (the paper removes "unnecessary
/// instrumentation code for the merged blocks" after the profile run; the
/// tuned production version carries none at all).
pub fn strip_counters(f: &mut Function) {
    for b in f.block_ids().collect::<Vec<_>>() {
        f.block_mut(b)
            .stmts
            .retain(|s| !matches!(s, Stmt::CounterInc { .. }));
    }
}

/// Remove only the given counters (after component merging, counters for
/// merged-away blocks are unnecessary).
pub fn strip_selected_counters(f: &mut Function, drop: &[CounterId]) {
    for b in f.block_ids().collect::<Vec<_>>() {
        f.block_mut(b).stmts.retain(|s| match s {
            Stmt::CounterInc { counter } => !drop.contains(counter),
            _ => true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::interp::Interp;
    use crate::program::{MemoryImage, Program};
    use crate::stmt::MemRef;
    use crate::types::{Type, Value};

    /// A function with one counted loop and one data-dependent branch
    /// inside it.
    fn mixed_function(prog: &mut Program) -> crate::types::FuncId {
        let a = prog.add_mem("a", Type::I64, 64);
        let mut b = FunctionBuilder::new("mixed", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::I64, MemRef::global(a, i));
            b.if_then(x, |b| {
                b.store(MemRef::global(a, i), 0i64);
            });
        });
        b.ret(None);
        prog.add_func(b.finish())
    }

    #[test]
    fn regular_block_gets_expression_irregular_gets_counter() {
        let mut prog = Program::new();
        let fid = mixed_function(&mut prog);
        let f = prog.func_mut(fid);
        // Body block of the for loop is b2; the guarded then-block is b5.
        let body = BlockId(2);
        let guarded = BlockId(5);
        let plan = instrument_block_counts(f, &[body, guarded]);
        assert!(matches!(plan.sources[0], (b, CountSource::Expr(_)) if b == body));
        assert!(matches!(plan.sources[1], (b, CountSource::Counter(_)) if b == guarded));
        assert_eq!(plan.num_counters, 1);
    }

    #[test]
    fn counter_matches_actual_entries() {
        let mut prog = Program::new();
        let fid = mixed_function(&mut prog);
        let guarded = BlockId(5);
        let plan = instrument_block_counts(prog.func_mut(fid), &[guarded]);
        let CountSource::Counter(c) = plan.sources[0].1.clone() else {
            panic!("expected counter")
        };
        let mut mem = MemoryImage::new(&prog);
        let am = prog.mem_by_name("a").unwrap();
        // Make elements 0,2,4 nonzero → 3 guarded entries for n=6.
        for i in [0, 2, 4] {
            mem.store(am, i, Value::I64(1));
        }
        let interp = Interp { num_counters: plan.num_counters, ..Default::default() };
        let out = interp.run(&prog, fid, &[Value::I64(6)], &mut mem).unwrap();
        assert_eq!(out.counters[c.index()], 3);
        assert_eq!(out.block_entries[guarded.index()], 3, "sanity: matches block entries");
    }

    #[test]
    fn strip_counters_removes_all() {
        let mut prog = Program::new();
        let fid = mixed_function(&mut prog);
        let plan = instrument_block_counts(prog.func_mut(fid), &[BlockId(5)]);
        assert_eq!(plan.num_counters, 1);
        strip_counters(prog.func_mut(fid));
        let f = prog.func(fid);
        for b in f.block_ids() {
            assert!(f
                .block(b)
                .stmts
                .iter()
                .all(|s| !matches!(s, Stmt::CounterInc { .. })));
        }
    }

    #[test]
    fn expression_source_needs_no_instrumentation() {
        let mut prog = Program::new();
        let fid = mixed_function(&mut prog);
        let before = prog.func(fid).num_stmts();
        let plan = instrument_block_counts(prog.func_mut(fid), &[BlockId(2)]);
        assert_eq!(plan.num_counters, 0);
        assert_eq!(prog.func(fid).num_stmts(), before, "no statements added");
        // And the expression evaluates to n.
        let CountSource::Expr(e) = &plan.sources[0].1 else { panic!() };
        assert_eq!(e.eval(&|_| Some(Value::I64(9))), Some(9));
    }
}
