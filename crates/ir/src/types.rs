//! Core identifier and value types of the PEAK intermediate representation.
//!
//! The IR is a conventional three-address, basic-block form. Scalar values
//! live in virtual registers ([`VarId`]); aggregate data lives in named
//! memory regions ([`MemId`]) accessed through explicit `Load`/`Store`
//! statements. This split mirrors what the paper's analyses need: context
//! variables are scalars (paper §2.2), memory regions form the `Input(TS)`
//! and `Def(TS)` sets used by re-execution-based rating (paper §2.4).

use std::fmt;

/// A virtual register holding a scalar ([`Type::I64`], [`Type::F64`]) or a
/// pointer ([`Type::Ptr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A basic block within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// A named memory region (array) declared at program scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

/// A function within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// An instrumentation counter inserted by [`crate::instrument`]; used by
/// model-based rating to collect per-invocation component counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CounterId(pub u32);

impl VarId {
    /// Index into per-function variable tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Index into the function's block vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MemId {
    /// Index into the program's memory-region table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FuncId {
    /// Index into the program's function table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CounterId {
    /// Index into the execution engine's counter array.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Scalar type of a variable or memory region element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE float.
    F64,
    /// Pointer into a memory region (region id + element offset).
    Ptr,
}

impl Type {
    /// Whether values of this type can participate in a CBR context key.
    /// All our IR types are fixed-size scalars, so all qualify; what makes a
    /// *context variable* non-scalar in the paper's sense is being loaded
    /// through a varying subscript, which is handled in
    /// [`crate::context_vars`].
    pub fn is_scalar(self) -> bool {
        true
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I64 => write!(f, "i64"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr => write!(f, "ptr"),
        }
    }
}

/// A pointer value: a memory region plus an element offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PtrVal {
    /// Region the pointer points into.
    pub mem: MemId,
    /// Element offset within the region.
    pub offset: i64,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Pointer (region, offset).
    Ptr(PtrVal),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::I64(_) => Type::I64,
            Value::F64(_) => Type::F64,
            Value::Ptr(_) => Type::Ptr,
        }
    }

    /// Interpret as integer; panics on wrong type (IR is type-checked by
    /// [`crate::validate`] before execution).
    #[inline]
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected i64 value, found {other:?}"),
        }
    }

    /// Interpret as float; panics on wrong type.
    #[inline]
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            other => panic!("expected f64 value, found {other:?}"),
        }
    }

    /// Interpret as pointer; panics on wrong type.
    #[inline]
    pub fn as_ptr(&self) -> PtrVal {
        match self {
            Value::Ptr(p) => *p,
            other => panic!("expected ptr value, found {other:?}"),
        }
    }

    /// Truthiness used by `Branch` terminators: nonzero integers are true.
    #[inline]
    pub fn is_true(&self) -> bool {
        match self {
            Value::I64(v) => *v != 0,
            Value::F64(v) => *v != 0.0,
            Value::Ptr(_) => true,
        }
    }

    /// A stable bit-pattern key so values can participate in hash-based
    /// context keys (CBR groups invocations by context-variable values).
    pub fn context_key(&self) -> u64 {
        match self {
            Value::I64(v) => *v as u64,
            Value::F64(v) => v.to_bits(),
            Value::Ptr(p) => ((p.mem.0 as u64) << 48) ^ (p.offset as u64),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:?}"),
            Value::Ptr(p) => write!(f, "&m{}[{}]", p.mem.0, p.offset),
        }
    }
}

/// An operand of an instruction: a variable or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Read of a virtual register.
    Var(VarId),
    /// Immediate.
    Const(Value),
}

impl Operand {
    /// The variable read by this operand, if any.
    #[inline]
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }

    /// The constant carried by this operand, if any.
    #[inline]
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Operand::Var(_) => None,
            Operand::Const(c) => Some(*c),
        }
    }

    /// Integer-constant shortcut.
    pub fn const_i64(v: i64) -> Operand {
        Operand::Const(Value::I64(v))
    }

    /// Float-constant shortcut.
    pub fn const_f64(v: f64) -> Operand {
        Operand::Const(Value::F64(v))
    }
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Const(Value::I64(v))
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::Const(Value::F64(v))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "v{}", v.0),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Bitwise/logical not (integer).
    Not,
    /// Float negation.
    FNeg,
    /// i64 → f64 conversion.
    IntToF,
    /// f64 → i64 conversion (truncating).
    FToInt,
    /// Float absolute value.
    FAbs,
    /// Float square root (a real machine instruction on both target models).
    FSqrt,
}

/// Binary operators. Comparison operators produce `I64` 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer add.
    Add,
    /// Integer subtract.
    Sub,
    /// Integer multiply.
    Mul,
    /// Integer divide (traps on zero in interp; simulator saturates).
    Div,
    /// Integer remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Integer minimum (select-friendly; used by if-conversion).
    Min,
    /// Integer maximum.
    Max,
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Integer equality.
    Eq,
    /// Integer inequality.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Float equality.
    FEq,
    /// Float inequality.
    FNe,
    /// Float less-than.
    FLt,
    /// Float less-or-equal.
    FLe,
    /// Float greater-than.
    FGt,
    /// Float greater-or-equal.
    FGe,
    /// Pointer add: `ptr + i64` yields a pointer with bumped offset.
    PtrAdd,
    /// Pointer equality.
    PtrEq,
    /// Pointer difference (same region): yields i64 element distance.
    PtrDiff,
}

impl BinOp {
    /// True for comparison operators (result is a 0/1 integer).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::FEq
                | BinOp::FNe
                | BinOp::FLt
                | BinOp::FLe
                | BinOp::FGt
                | BinOp::FGe
                | BinOp::PtrEq
        )
    }

    /// True for float-typed arithmetic.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd
                | BinOp::FSub
                | BinOp::FMul
                | BinOp::FDiv
                | BinOp::FEq
                | BinOp::FNe
                | BinOp::FLt
                | BinOp::FLe
                | BinOp::FGt
                | BinOp::FGe
        )
    }

    /// Commutative operators (used by reassociation and CSE canonicalization).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Min
                | BinOp::Max
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::FEq
                | BinOp::FNe
                | BinOp::PtrEq
        )
    }

    /// Associative operators over which reassociation may rebalance.
    /// Float ops are only associative under the `reassociation` flag's
    /// fast-math license, so they are excluded here.
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Min | BinOp::Max
        )
    }

    /// The comparison with swapped operand order (`a < b` ⇒ `b > a`).
    pub fn swapped(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            BinOp::FLt => BinOp::FGt,
            BinOp::FLe => BinOp::FGe,
            BinOp::FGt => BinOp::FLt,
            BinOp::FGe => BinOp::FLe,
            _ => return None,
        })
    }

    /// The logically negated comparison (`a < b` ⇒ `a >= b`), used by
    /// branch-reordering and jump-threading.
    pub fn negated(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            BinOp::FEq => BinOp::FNe,
            BinOp::FNe => BinOp::FEq,
            // Negating ordered float comparisons is not NaN-safe; the
            // optimizer only negates integer comparisons.
            _ => return None,
        })
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::FNeg => "fneg",
            UnOp::IntToF => "i2f",
            UnOp::FToInt => "f2i",
            UnOp::FAbs => "fabs",
            UnOp::FSqrt => "fsqrt",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::FEq => "feq",
            BinOp::FNe => "fne",
            BinOp::FLt => "flt",
            BinOp::FLe => "fle",
            BinOp::FGt => "fgt",
            BinOp::FGe => "fge",
            BinOp::PtrAdd => "padd",
            BinOp::PtrEq => "peq",
            BinOp::PtrDiff => "pdiff",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_tags() {
        assert_eq!(Value::I64(3).ty(), Type::I64);
        assert_eq!(Value::F64(3.0).ty(), Type::F64);
        let p = Value::Ptr(PtrVal { mem: MemId(1), offset: 4 });
        assert_eq!(p.ty(), Type::Ptr);
    }

    #[test]
    fn value_truthiness() {
        assert!(Value::I64(1).is_true());
        assert!(!Value::I64(0).is_true());
        assert!(!Value::F64(0.0).is_true());
        assert!(Value::F64(-2.5).is_true());
    }

    #[test]
    fn context_key_distinguishes_values() {
        assert_ne!(Value::I64(1).context_key(), Value::I64(2).context_key());
        assert_ne!(Value::F64(1.0).context_key(), Value::F64(1.5).context_key());
        // Same numeric value, different type, may collide or not; only
        // same-variable comparisons occur in practice, so this is fine.
    }

    #[test]
    fn operand_conversions() {
        let v = VarId(7);
        assert_eq!(Operand::from(v).as_var(), Some(v));
        assert_eq!(Operand::from(42i64).as_const(), Some(Value::I64(42)));
        assert_eq!(Operand::from(1.5f64).as_const(), Some(Value::F64(1.5)));
        assert_eq!(Operand::Var(v).as_const(), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::FMul.is_float());
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(BinOp::Add.is_associative());
        assert!(!BinOp::FAdd.is_associative());
    }

    #[test]
    fn comparison_swapping_and_negation() {
        assert_eq!(BinOp::Lt.swapped(), Some(BinOp::Gt));
        assert_eq!(BinOp::Lt.negated(), Some(BinOp::Ge));
        assert_eq!(BinOp::FLt.negated(), None, "float negation is not NaN-safe");
        assert_eq!(BinOp::Add.swapped(), None);
    }
}
