//! Natural-loop detection.

use crate::cfg::{Cfg, Dominators};
use crate::func::Function;
use crate::types::BlockId;

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Loop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// Sources of back edges into the header (usually one latch).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop body, header included, sorted.
    pub body: Vec<BlockId>,
    /// Loop nesting depth (1 = outermost).
    pub depth: u32,
    /// Index of the parent loop in [`LoopForest::loops`], if nested.
    pub parent: Option<usize>,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }

    /// Blocks outside the loop that the loop can exit to.
    pub fn exit_targets(&self, f: &Function) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in &self.body {
            for s in f.block(b).term.successors() {
                if !self.contains(s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }
}

/// All natural loops of a function, with nesting info.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops, outermost-first within each nest.
    pub loops: Vec<Loop>,
    /// Innermost loop containing each block, if any.
    pub innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Find natural loops via back edges (`latch → header` where `header`
    /// dominates `latch`). Back edges sharing a header are merged into one
    /// loop, matching the usual definition.
    pub fn build(f: &Function, cfg: &Cfg, dom: &Dominators) -> Self {
        let nb = f.num_blocks();
        // Collect back edges grouped by header.
        let mut by_header: Vec<Vec<BlockId>> = vec![Vec::new(); nb];
        for b in f.block_ids() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for s in f.block(b).term.successors() {
                if dom.dominates(s, b) {
                    by_header[s.index()].push(b);
                }
            }
        }
        let mut loops = Vec::new();
        for h in f.block_ids() {
            let latches = std::mem::take(&mut by_header[h.index()]);
            if latches.is_empty() {
                continue;
            }
            // Body = header + all blocks that reach a latch without passing
            // through the header (standard worklist walking predecessors).
            let mut in_body = vec![false; nb];
            in_body[h.index()] = true;
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if in_body[b.index()] {
                    continue;
                }
                in_body[b.index()] = true;
                for &p in &cfg.preds[b.index()] {
                    if !in_body[p.index()] {
                        work.push(p);
                    }
                }
            }
            let body: Vec<BlockId> = (0..nb as u32)
                .map(BlockId)
                .filter(|b| in_body[b.index()])
                .collect();
            loops.push(Loop { header: h, latches, body, depth: 0, parent: None });
        }
        // Sort loops by body size descending so parents precede children,
        // then assign nesting.
        loops.sort_by_key(|l| std::cmp::Reverse(l.body.len()));
        let n = loops.len();
        for i in 0..n {
            // Parent = smallest enclosing loop among earlier (larger) ones.
            let mut parent: Option<usize> = None;
            for j in 0..i {
                if loops[j].contains(loops[i].header) && loops[j].header != loops[i].header {
                    parent = match parent {
                        Some(p) if loops[p].body.len() <= loops[j].body.len() => Some(p),
                        _ => Some(j),
                    };
                }
            }
            loops[i].parent = parent;
            loops[i].depth = match parent {
                Some(p) => loops[p].depth + 1,
                None => 1,
            };
        }
        let mut innermost: Vec<Option<usize>> = vec![None; nb];
        for (li, l) in loops.iter().enumerate() {
            for &b in &l.body {
                innermost[b.index()] = match innermost[b.index()] {
                    Some(prev) if loops[prev].body.len() <= l.body.len() => Some(prev),
                    _ => Some(li),
                };
            }
        }
        LoopForest { loops, innermost }
    }

    /// Loop nesting depth of a block (0 = not in any loop). Used by spill
    /// heuristics and LICM profitability.
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost[b.index()].map_or(0, |i| self.loops[i].depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cfg::{Cfg, Dominators};
    use crate::types::{BinOp, Type};

    fn forest(f: &Function) -> LoopForest {
        let cfg = Cfg::build(f);
        let dom = Dominators::build(f, &cfg);
        LoopForest::build(f, &cfg, &dom)
    }

    #[test]
    fn single_counted_loop() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |_| {});
        b.ret(None);
        let f = b.finish();
        let lf = forest(&f);
        assert_eq!(lf.loops.len(), 1);
        let l = &lf.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(3)]);
        assert_eq!(l.body, vec![BlockId(1), BlockId(2), BlockId(3)]);
        assert_eq!(l.depth, 1);
        assert_eq!(l.exit_targets(&f), vec![BlockId(4)]);
        assert_eq!(lf.depth_of(BlockId(2)), 1);
        assert_eq!(lf.depth_of(BlockId(0)), 0);
    }

    #[test]
    fn nested_loops_have_depths() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.for_loop(j, 0i64, n, 1, |b| {
                b.binary_into(acc, BinOp::Add, acc, j);
            });
        });
        b.ret(None);
        let f = b.finish();
        let lf = forest(&f);
        assert_eq!(lf.loops.len(), 2);
        let outer = lf.loops.iter().find(|l| l.depth == 1).unwrap();
        let inner = lf.loops.iter().find(|l| l.depth == 2).unwrap();
        assert!(outer.body.len() > inner.body.len());
        assert!(inner.body.iter().all(|b| outer.contains(*b)));
        assert_eq!(
            inner.parent.map(|p| lf.loops[p].header),
            Some(outer.header)
        );
    }

    #[test]
    fn while_loop_detected() {
        let mut b = FunctionBuilder::new("f", None);
        let x = b.param("x", Type::I64);
        b.while_loop(
            |b| b.binary(BinOp::Gt, x, 0i64).into(),
            |b| {
                b.binary_into(x, BinOp::Sub, x, 1i64);
            },
        );
        b.ret(None);
        let f = b.finish();
        let lf = forest(&f);
        assert_eq!(lf.loops.len(), 1);
    }

    #[test]
    fn no_loops_in_diamond() {
        let mut b = FunctionBuilder::new("f", None);
        let x = b.param("x", Type::I64);
        b.if_then_else(x, |_| {}, |_| {});
        b.ret(None);
        let f = b.finish();
        assert!(forest(&f).loops.is_empty());
    }
}
