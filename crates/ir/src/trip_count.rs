//! Counted-loop recognition and symbolic trip-count expressions.
//!
//! MBR (paper §2.3) obtains block-entry expressions "by compile-time
//! analysis … if the code structure is regular, such as the loop body of a
//! perfectly nested loop. Otherwise, it instruments the relevant blocks
//! with counters." This module provides the compile-time side: for loops of
//! the canonical shape `for (iv = start; iv < end; iv += step)` it derives
//! a symbolic count `max(0, ceil((end − start)/step))` over values known at
//! TS entry, letting the instrumenter skip those blocks.

use crate::cfg::Cfg;
use crate::func::Function;
use crate::loops::{Loop, LoopForest};
use crate::stmt::{Rvalue, Stmt, Terminator};
use crate::types::{BinOp, BlockId, Operand, Value, VarId};

/// A symbolic count expression over TS-entry variable values.
#[derive(Debug, Clone, PartialEq)]
pub enum CountExpr {
    /// Constant.
    Const(i64),
    /// Value of a variable at TS entry (parameters for extracted TSs).
    EntryVar(VarId),
    /// Sum.
    Add(Box<CountExpr>, Box<CountExpr>),
    /// Difference.
    Sub(Box<CountExpr>, Box<CountExpr>),
    /// Product (nested-loop trip counts multiply).
    Mul(Box<CountExpr>, Box<CountExpr>),
    /// `ceil(e / k)` with positive constant `k`.
    DivCeil(Box<CountExpr>, i64),
    /// `max(0, e)` — zero-trip loops execute their body zero times.
    Max0(Box<CountExpr>),
}

impl CountExpr {
    /// Evaluate given the TS-entry value of each variable. Returns `None`
    /// if a referenced variable has a non-integer entry value.
    pub fn eval(&self, entry: &dyn Fn(VarId) -> Option<Value>) -> Option<i64> {
        Some(match self {
            CountExpr::Const(c) => *c,
            CountExpr::EntryVar(v) => match entry(*v)? {
                Value::I64(x) => x,
                _ => return None,
            },
            CountExpr::Add(a, b) => a.eval(entry)?.checked_add(b.eval(entry)?)?,
            CountExpr::Sub(a, b) => a.eval(entry)?.checked_sub(b.eval(entry)?)?,
            CountExpr::Mul(a, b) => a.eval(entry)?.checked_mul(b.eval(entry)?)?,
            CountExpr::DivCeil(a, k) => {
                let x = a.eval(entry)?;
                debug_assert!(*k > 0);
                x.div_euclid(*k) + i64::from(x.rem_euclid(*k) != 0)
            }
            CountExpr::Max0(a) => a.eval(entry)?.max(0),
        })
    }

    /// Variables this expression reads.
    pub fn entry_vars(&self, out: &mut Vec<VarId>) {
        match self {
            CountExpr::Const(_) => {}
            CountExpr::EntryVar(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            CountExpr::Add(a, b) | CountExpr::Sub(a, b) | CountExpr::Mul(a, b) => {
                a.entry_vars(out);
                b.entry_vars(out);
            }
            CountExpr::DivCeil(a, _) | CountExpr::Max0(a) => a.entry_vars(out),
        }
    }
}

/// A recognized counted loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CountedLoop {
    /// Loop header block.
    pub header: BlockId,
    /// Induction variable.
    pub iv: VarId,
    /// Entry-symbolic trip count of the loop *relative to one entry of its
    /// preheader* (not multiplied by outer-loop trips).
    pub trips: CountExpr,
    /// Constant step.
    pub step: i64,
    /// Start operand (constant or entry variable).
    pub start: Operand,
    /// Bound operand.
    pub end: Operand,
}

/// Try to recognize `l` as a canonical counted loop within `f`.
///
/// Requirements (the shape [`crate::builder::FunctionBuilder::for_loop`]
/// emits, before optimization):
/// * single latch whose last assignment is `iv = iv + step` (const step > 0)
/// * header terminator `br (iv < end) ? body : exit`, with the comparison
///   defined in the header from `iv` and a loop-invariant `end`
/// * `start` from the preheader's last assignment to `iv`, which must be a
///   constant or a variable unmodified anywhere in the function body
///   (so its entry value is the start value)
pub fn recognize_counted(f: &Function, cfg: &Cfg, l: &Loop) -> Option<CountedLoop> {
    if l.latches.len() != 1 {
        return None;
    }
    let header = f.block(l.header);
    // Header: `c = lt iv, end` as last stmt; `br c ? body : exit`.
    let Terminator::Branch { cond: Operand::Var(c), on_true, on_false } = header.term else {
        return None;
    };
    if l.contains(on_false) || !l.contains(on_true) {
        // `for_loop` exits on false edge.
        return None;
    }
    let last = header.stmts.last()?;
    let Stmt::Assign { dst, rv: Rvalue::Binary(BinOp::Lt, Operand::Var(iv), end) } = last else {
        return None;
    };
    if *dst != c {
        return None;
    }
    let iv = *iv;
    let end = *end;
    // Latch: last assign to iv is `iv = iv + k`.
    let latch = f.block(l.latches[0]);
    let step = latch.stmts.iter().rev().find_map(|s| match s {
        Stmt::Assign { dst, rv: Rvalue::Binary(BinOp::Add, Operand::Var(a), Operand::Const(Value::I64(k))) }
            if *dst == iv && *a == iv =>
        {
            Some(*k)
        }
        _ => None,
    })?;
    if step <= 0 {
        return None;
    }
    // iv must not be defined elsewhere in the loop (other than the latch).
    for &b in &l.body {
        if b == l.latches[0] {
            continue;
        }
        for s in &f.block(b).stmts {
            if s.def() == Some(iv) {
                return None;
            }
        }
    }
    // `end` must be loop-invariant.
    if let Operand::Var(e) = end {
        for &b in &l.body {
            for s in &f.block(b).stmts {
                if s.def() == Some(e) {
                    return None;
                }
            }
        }
    }
    // Preheader: the unique out-of-loop predecessor of the header.
    let mut pre: Option<BlockId> = None;
    for &p in &cfg.preds[l.header.index()] {
        if !l.contains(p) {
            if pre.is_some() {
                return None;
            }
            pre = Some(p);
        }
    }
    let pre = pre?;
    // Start value: last assignment to iv in the preheader, walking up a
    // chain of straight-line predecessors if needed (register promotion
    // and similar passes insert guard/landing blocks between the iv
    // initialization and the header).
    let mut search = pre;
    let mut start = None;
    for _ in 0..6 {
        start = f.block(search).stmts.iter().rev().find_map(|s| match s {
            Stmt::Assign { dst, rv: Rvalue::Use(op) } if *dst == iv => Some(*op),
            Stmt::Assign { dst, .. } if *dst == iv => Some(Operand::Var(iv)), // opaque
            _ => None,
        });
        if start.is_some() {
            break;
        }
        // Move to a unique predecessor.
        let mut preds = f.block_ids().filter(|&b| {
            f.block(b).term.successors().any(|s| s == search)
        });
        let (Some(p), None) = (preds.next(), preds.next()) else { break };
        search = p;
    }
    let start = start?;
    let dom = crate::cfg::Dominators::build(f, cfg);
    let start_e = entry_expr(f, &dom, l.header, start, 5)?;
    let end_e = entry_expr(f, &dom, l.header, end, 5)?;
    let trips = CountExpr::Max0(Box::new(CountExpr::DivCeil(
        Box::new(CountExpr::Sub(Box::new(end_e), Box::new(start_e))),
        step,
    )));
    Some(CountedLoop { header: l.header, iv, trips, step, start, end })
}

/// Express an operand's value at entry of `anchor` as a [`CountExpr`]
/// over TS-entry variables: constants, never-assigned variables (params),
/// and single-def chains of ±/× whose definitions dominate `anchor`
/// (e.g. `bound = n - 1` computed before the loop).
fn entry_expr(
    f: &Function,
    dom: &crate::cfg::Dominators,
    anchor: BlockId,
    op: Operand,
    depth: u32,
) -> Option<CountExpr> {
    if depth == 0 {
        return None;
    }
    match op {
        Operand::Const(Value::I64(k)) => Some(CountExpr::Const(k)),
        Operand::Var(v) => {
            // Find defs of v.
            let mut def: Option<(BlockId, usize)> = None;
            for b in f.block_ids() {
                for (si, s) in f.block(b).stmts.iter().enumerate() {
                    if s.def() == Some(v) {
                        if def.is_some() {
                            return None; // multi-def
                        }
                        def = Some((b, si));
                    }
                }
            }
            let Some((db, dsi)) = def else {
                // Never assigned: value is the TS-entry value.
                return Some(CountExpr::EntryVar(v));
            };
            // The single def must dominate the anchor so its value is
            // fixed before the loop runs.
            if db == anchor || !dom.dominates(db, anchor) {
                return None;
            }
            let Stmt::Assign { rv, .. } = &f.block(db).stmts[dsi] else { return None };
            match rv {
                Rvalue::Use(inner) => entry_expr(f, dom, anchor, *inner, depth - 1),
                Rvalue::Binary(BinOp::Add, a, b) => Some(CountExpr::Add(
                    Box::new(entry_expr(f, dom, anchor, *a, depth - 1)?),
                    Box::new(entry_expr(f, dom, anchor, *b, depth - 1)?),
                )),
                Rvalue::Binary(BinOp::Sub, a, b) => Some(CountExpr::Sub(
                    Box::new(entry_expr(f, dom, anchor, *a, depth - 1)?),
                    Box::new(entry_expr(f, dom, anchor, *b, depth - 1)?),
                )),
                Rvalue::Binary(BinOp::Mul, a, b) => Some(CountExpr::Mul(
                    Box::new(entry_expr(f, dom, anchor, *a, depth - 1)?),
                    Box::new(entry_expr(f, dom, anchor, *b, depth - 1)?),
                )),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Recognize every counted loop in the function. For a block, the total
/// entry count per TS invocation is the product of the trip counts of all
/// enclosing counted loops — callers combine via [`LoopForest`] nesting.
pub fn recognize_all(f: &Function, cfg: &Cfg, forest: &LoopForest) -> Vec<Option<CountedLoop>> {
    forest
        .loops
        .iter()
        .map(|l| recognize_counted(f, cfg, l))
        .collect()
}

/// Per-invocation entry-count expression for `block`, if all enclosing
/// loops are counted with entry-symbolic trips *and* the block executes
/// exactly once per iteration of its innermost loop (it dominates the
/// latch — conditionally guarded blocks do not qualify). Blocks outside
/// loops get `Const(1)`. Returns `None` when the structure is irregular —
/// the MBR instrumenter then falls back to a counter (paper §2.3).
pub fn block_count_expr(
    f: &Function,
    dom: &crate::cfg::Dominators,
    forest: &LoopForest,
    counted: &[Option<CountedLoop>],
    block: BlockId,
) -> Option<CountExpr> {
    let mut expr = CountExpr::Const(1);
    let mut cur = forest.innermost[block.index()];
    let mut innermost_handled = false;
    while let Some(li) = cur {
        let cl = counted[li].as_ref()?;
        let l = &forest.loops[li];
        // Early exits (breaks) make the trip count an upper bound only:
        // every non-header block must stay inside the loop.
        for &b in &l.body {
            if b == l.header {
                continue;
            }
            if f.block(b).term.successors().any(|s| !l.contains(s)) {
                return None;
            }
        }
        if !innermost_handled {
            innermost_handled = true;
            if block == l.header {
                // The header runs trips+1 times per preheader entry; the +1
                // is multiplied by all outer trips as the walk continues.
                expr = CountExpr::Add(
                    Box::new(expr_mul(expr, cl.trips.clone())),
                    Box::new(CountExpr::Const(1)),
                );
                cur = l.parent;
                continue;
            }
            // Once-per-iteration check: every iteration passes through the
            // latch, so a block dominating the latch runs exactly once per
            // iteration (given no early exits bypassing it, which the
            // canonical `for_loop` shape guarantees).
            if !(dom.dominates(block, l.latches[0]) || block == l.latches[0]) {
                return None;
            }
        }
        expr = expr_mul(expr, cl.trips.clone());
        cur = l.parent;
    }
    Some(expr)
}

fn expr_mul(a: CountExpr, b: CountExpr) -> CountExpr {
    match (&a, &b) {
        (CountExpr::Const(1), _) => b,
        (_, CountExpr::Const(1)) => a,
        _ => CountExpr::Mul(Box::new(a), Box::new(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cfg::Dominators;
    use crate::types::Type;

    fn analyze(f: &Function) -> (Cfg, LoopForest) {
        let cfg = Cfg::build(f);
        let dom = Dominators::build(f, &cfg);
        let forest = LoopForest::build(f, &cfg, &dom);
        (cfg, forest)
    }

    #[test]
    fn simple_counted_loop_recognized() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |_| {});
        b.ret(None);
        let f = b.finish();
        let (cfg, forest) = analyze(&f);
        let cl = recognize_counted(&f, &cfg, &forest.loops[0]).expect("recognized");
        assert_eq!(cl.iv, i);
        assert_eq!(cl.step, 1);
        let trips = cl.trips.eval(&|v| (v == n).then_some(Value::I64(17)));
        assert_eq!(trips, Some(17));
        let zero = cl.trips.eval(&|v| (v == n).then_some(Value::I64(-3)));
        assert_eq!(zero, Some(0), "negative bound → zero trips");
    }

    #[test]
    fn strided_loop_ceil_division() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 3, |_| {});
        b.ret(None);
        let f = b.finish();
        let (cfg, forest) = analyze(&f);
        let cl = recognize_counted(&f, &cfg, &forest.loops[0]).unwrap();
        assert_eq!(cl.trips.eval(&|_| Some(Value::I64(10))), Some(4)); // ceil(10/3)
        assert_eq!(cl.trips.eval(&|_| Some(Value::I64(9))), Some(3));
    }

    #[test]
    fn data_dependent_while_not_counted() {
        let mut b = FunctionBuilder::new("f", None);
        let x = b.param("x", Type::I64);
        b.while_loop(
            |b| b.binary(BinOp::Gt, x, 0i64).into(),
            |b| {
                b.binary_into(x, BinOp::Shr, x, 1i64);
            },
        );
        b.ret(None);
        let f = b.finish();
        let (cfg, forest) = analyze(&f);
        assert!(recognize_counted(&f, &cfg, &forest.loops[0]).is_none());
    }

    #[test]
    fn nested_loop_body_count_is_product() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let m = b.param("m", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        let mut inner_body = BlockId(0);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.for_loop(j, 0i64, m, 1, |b| {
                inner_body = b.current_block();
            });
        });
        b.ret(None);
        let f = b.finish();
        let (cfg, forest) = analyze(&f);
        let dom = Dominators::build(&f, &cfg);
        let counted = recognize_all(&f, &cfg, &forest);
        assert!(counted.iter().all(|c| c.is_some()));
        let expr =
            block_count_expr(&f, &dom, &forest, &counted, inner_body).expect("regular nest");
        let val = expr.eval(&|v| {
            Some(Value::I64(if v == n { 4 } else if v == m { 5 } else { 0 }))
        });
        assert_eq!(val, Some(20));
    }

    #[test]
    fn trip_count_of_inner_loop_unaffected_by_outer_redefinition_of_iv() {
        // Inner loop bound defined by outer loop's body -> not
        // entry-symbolic -> block_count_expr returns None.
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let j = b.var("j", Type::I64);
        let mut inner_body = BlockId(0);
        b.for_loop(i, 0i64, n, 1, |b| {
            // bound = i (varies per outer iteration)
            b.for_loop(j, 0i64, i, 1, |b| {
                inner_body = b.current_block();
            });
        });
        b.ret(None);
        let f = b.finish();
        let (cfg, forest) = analyze(&f);
        let dom = Dominators::build(&f, &cfg);
        let counted = recognize_all(&f, &cfg, &forest);
        // Inner loop bound `i` is redefined (it's the outer iv) → inner not
        // entry-symbolic.
        assert!(block_count_expr(&f, &dom, &forest, &counted, inner_body).is_none());
    }
}
