//! Reaching definitions and use-def chains.
//!
//! The context-variable analysis of the paper (Figure 1) is phrased in
//! terms of `Find_UD_Chain(v, s)`: the definitions of `v` that may reach
//! statement `s`. We provide exactly that query. Every variable has a
//! synthetic *entry definition* representing its value at function entry;
//! a UD chain that reaches the entry definition corresponds to the paper's
//! "`m` is the entry statement", i.e. `v ∈ Input(TS)`.

use crate::cfg::Cfg;
use crate::dataflow::BitSet;
use crate::func::Function;
use crate::types::{BlockId, VarId};

/// Identifies one definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefSite {
    /// The variable's value at function entry (parameter or default-zero).
    Entry(VarId),
    /// A `Stmt::Assign` at `block.stmts[stmt]`.
    Stmt {
        /// Defining block.
        block: BlockId,
        /// Statement index within the block.
        stmt: usize,
    },
}

/// A location where a variable is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseSite {
    /// Use inside `block.stmts[stmt]`.
    Stmt {
        /// Block containing the use.
        block: BlockId,
        /// Statement index.
        stmt: usize,
    },
    /// Use in the block terminator.
    Term {
        /// Block whose terminator uses the variable.
        block: BlockId,
    },
}

/// Reaching-definitions solution for one function.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites; index = def id. The first `num_vars` entries
    /// are the entry definitions, in variable order.
    pub defs: Vec<DefSite>,
    /// Defined variable per def id.
    pub def_var: Vec<VarId>,
    /// Def ids reaching each block entry.
    pub reach_in: Vec<BitSet>,
    num_vars: usize,
}

impl ReachingDefs {
    /// Solve reaching definitions for `f`.
    pub fn build(f: &Function, cfg: &Cfg) -> Self {
        let nv = f.num_vars();
        let mut defs: Vec<DefSite> = (0..nv).map(|i| DefSite::Entry(VarId(i as u32))).collect();
        let mut def_var: Vec<VarId> = (0..nv).map(|i| VarId(i as u32)).collect();
        // Enumerate statement defs.
        for b in f.block_ids() {
            for (si, s) in f.block(b).stmts.iter().enumerate() {
                if let Some(d) = s.def() {
                    defs.push(DefSite::Stmt { block: b, stmt: si });
                    def_var.push(d);
                }
            }
        }
        let nd = defs.len();
        // defs-of-var index for kill sets.
        let mut defs_of_var: Vec<Vec<usize>> = vec![Vec::new(); nv];
        for (id, &v) in def_var.iter().enumerate() {
            defs_of_var[v.index()].push(id);
        }
        // Per-block gen/kill.
        let nb = f.num_blocks();
        let mut gen = vec![BitSet::new(nd); nb];
        let mut kill = vec![BitSet::new(nd); nb];
        {
            // Map (block, stmt) -> def id for quick lookup.
            let mut next_id = nv;
            for b in f.block_ids() {
                let bi = b.index();
                for s in &f.block(b).stmts {
                    if let Some(d) = s.def() {
                        let id = next_id;
                        next_id += 1;
                        // This def kills all other defs of d and gens itself.
                        for &other in &defs_of_var[d.index()] {
                            if other != id {
                                kill[bi].insert(other);
                            }
                        }
                        // Later defs in the same block overwrite: remove
                        // previous gens of d.
                        for &other in &defs_of_var[d.index()] {
                            if other != id {
                                gen[bi].remove(other);
                            }
                        }
                        gen[bi].insert(id);
                        kill[bi].remove(id);
                    }
                }
            }
        }
        // Forward union dataflow; entry block starts with entry defs.
        let mut reach_in = vec![BitSet::new(nd); nb];
        let mut reach_out = vec![BitSet::new(nd); nb];
        for i in 0..nv {
            reach_in[f.entry.index()].insert(i);
        }
        let mut changed = true;
        let mut tmp = BitSet::new(nd);
        while changed {
            changed = false;
            for &b in &cfg.rpo {
                let bi = b.index();
                tmp.copy_from(&reach_in[bi]);
                for &p in &cfg.preds[bi] {
                    tmp.union_with(&reach_out[p.index()]);
                }
                if b == f.entry {
                    for i in 0..nv {
                        tmp.insert(i);
                    }
                }
                if reach_in[bi] != tmp {
                    reach_in[bi].copy_from(&tmp);
                    changed = true;
                }
                // out = gen ∪ (in − kill)
                tmp.subtract(&kill[bi]);
                tmp.union_with(&gen[bi]);
                if reach_out[bi] != tmp {
                    reach_out[bi].copy_from(&tmp);
                    changed = true;
                }
            }
        }
        ReachingDefs { defs, def_var, reach_in, num_vars: nv }
    }

    /// The paper's `Find_UD_Chain(v, s)`: definition sites of `v` that may
    /// reach the use site `site`.
    pub fn ud_chain(&self, f: &Function, v: VarId, site: UseSite) -> Vec<DefSite> {
        let (block, before_stmt) = match site {
            UseSite::Stmt { block, stmt } => (block, stmt),
            UseSite::Term { block } => (block, f.block(block).stmts.len()),
        };
        // Walk the block from the top, tracking the last local def of v.
        let mut local: Option<DefSite> = None;
        for (si, s) in f.block(block).stmts.iter().take(before_stmt).enumerate() {
            if s.def() == Some(v) {
                local = Some(DefSite::Stmt { block, stmt: si });
            }
        }
        if let Some(d) = local {
            return vec![d];
        }
        // Otherwise all reaching defs of v at block entry.
        self.reach_in[block.index()]
            .iter()
            .filter(|&id| self.def_var[id] == v)
            .map(|id| self.defs[id])
            .collect()
    }

    /// Number of variables (entry-def prefix length).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{BinOp, Operand, Type};

    #[test]
    fn single_def_reaches_use() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.var("x", Type::I64);
        b.copy(x, 1i64); // def at (b0, s0)
        let y = b.binary(BinOp::Add, x, 2i64); // use at (b0, s1)
        b.ret(Some(Operand::Var(y)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let rd = ReachingDefs::build(&f, &cfg);
        let chain = rd.ud_chain(&f, x, UseSite::Stmt { block: BlockId(0), stmt: 1 });
        assert_eq!(chain, vec![DefSite::Stmt { block: BlockId(0), stmt: 0 }]);
    }

    #[test]
    fn param_use_reaches_entry() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let y = b.binary(BinOp::Add, p, 1i64);
        b.ret(Some(Operand::Var(y)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let rd = ReachingDefs::build(&f, &cfg);
        let chain = rd.ud_chain(&f, p, UseSite::Stmt { block: BlockId(0), stmt: 0 });
        assert_eq!(chain, vec![DefSite::Entry(p)]);
    }

    #[test]
    fn merge_of_two_defs_at_join() {
        // if (p) x = 1 else x = 2; use x at join terminator.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let x = b.var("x", Type::I64);
        b.if_then_else(p, |b| b.copy(x, 1i64), |b| b.copy(x, 2i64));
        b.ret(Some(Operand::Var(x)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let rd = ReachingDefs::build(&f, &cfg);
        let join = BlockId(3);
        let chain = rd.ud_chain(&f, x, UseSite::Term { block: join });
        assert_eq!(chain.len(), 2, "both branch defs reach the join: {chain:?}");
        assert!(chain.iter().all(|d| matches!(d, DefSite::Stmt { .. })));
    }

    #[test]
    fn loop_carried_def_reaches_header() {
        // acc defined before loop and in body; both reach the header use.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        b.ret(Some(Operand::Var(acc)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let rd = ReachingDefs::build(&f, &cfg);
        // In the body block (2), the use of acc in `acc = acc + i` sees two
        // defs: the init in entry and the body def itself (loop carried).
        let chain = rd.ud_chain(&f, acc, UseSite::Stmt { block: BlockId(2), stmt: 0 });
        assert_eq!(chain.len(), 2, "{chain:?}");
    }

    #[test]
    fn local_redefinition_shadows() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.var("x", Type::I64);
        b.copy(x, 1i64);
        b.copy(x, 2i64);
        let y = b.binary(BinOp::Add, x, 0i64);
        b.ret(Some(Operand::Var(y)));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let rd = ReachingDefs::build(&f, &cfg);
        let chain = rd.ud_chain(&f, x, UseSite::Stmt { block: BlockId(0), stmt: 2 });
        assert_eq!(chain, vec![DefSite::Stmt { block: BlockId(0), stmt: 1 }]);
    }
}
