//! Functions and basic blocks.

use crate::stmt::{Stmt, Terminator};
use crate::types::{BlockId, Type, VarId};
use std::fmt;

/// Metadata for one variable of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    /// Human-readable name (workload sources name their variables).
    pub name: String,
    /// Scalar type.
    pub ty: Type,
}

/// A basic block: straight-line statements plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in execution order.
    pub stmts: Vec<Stmt>,
    /// Control transfer out of the block.
    pub term: Terminator,
    /// Codegen hint set by the `align-loops` / `align-jumps` flags; the
    /// machine simulator charges a reduced front-end penalty for entering an
    /// aligned block from a taken branch.
    pub aligned: bool,
}

impl Block {
    /// A block with no statements jumping to `target`.
    pub fn jump_to(target: BlockId) -> Self {
        Block { stmts: Vec::new(), term: Terminator::Jump(target), aligned: false }
    }
}

/// A function: parameter list, variable table, and a CFG of basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within a program).
    pub name: String,
    /// Parameter variables, in call order. A prefix of the variable table.
    pub params: Vec<VarId>,
    /// Return type, `None` for void functions.
    pub ret: Option<Type>,
    /// Variable table; `VarId(i)` indexes entry `i`.
    pub vars: Vec<VarInfo>,
    /// Basic blocks; `BlockId(i)` indexes entry `i`.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl Function {
    /// Create an empty function with an entry block that returns.
    pub fn new(name: impl Into<String>, ret: Option<Type>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret,
            vars: Vec::new(),
            blocks: vec![Block {
                stmts: Vec::new(),
                term: Terminator::Return(None),
                aligned: false,
            }],
            entry: BlockId(0),
        }
    }

    /// Add a variable and return its id.
    pub fn add_var(&mut self, name: impl Into<String>, ty: Type) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo { name: name.into(), ty });
        id
    }

    /// Add a fresh anonymous temporary.
    pub fn add_temp(&mut self, ty: Type) -> VarId {
        let n = self.vars.len();
        self.add_var(format!("t{n}"), ty)
    }

    /// Add a new empty block (terminated by `ret` until sealed).
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block { stmts: Vec::new(), term: Terminator::Return(None), aligned: false });
        id
    }

    /// Access a block.
    #[inline]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    #[inline]
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Type of a variable.
    #[inline]
    pub fn var_ty(&self, v: VarId) -> Type {
        self.vars[v.index()].ty
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total statement count (a cheap code-size proxy used by inlining and
    /// unrolling heuristics, and by the I-cache footprint model).
    pub fn num_stmts(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// Iterate over block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Find a variable by name (builder/test convenience).
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "v{}: {}", p.0, self.var_ty(*p))?;
        }
        write!(f, ")")?;
        if let Some(t) = self.ret {
            write!(f, " -> {t}")?;
        }
        writeln!(f, " {{")?;
        // Local declarations (needed by the textual parser for types).
        let locals: Vec<String> = self
            .vars
            .iter()
            .enumerate()
            .skip(self.params.len())
            .map(|(i, v)| format!("v{i}: {}", v.ty))
            .collect();
        if !locals.is_empty() {
            writeln!(f, "  locals {}", locals.join(", "))?;
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let mut marks = Vec::new();
            if BlockId(i as u32) == self.entry {
                marks.push("entry");
            }
            if b.aligned {
                marks.push("aligned");
            }
            let marker = if marks.is_empty() {
                String::new()
            } else {
                format!(" ({})", marks.join(", "))
            };
            writeln!(f, "b{i}:{marker}")?;
            for s in &b.stmts {
                writeln!(f, "  {s}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Rvalue;
    use crate::types::Operand;

    #[test]
    fn build_function_skeleton() {
        let mut f = Function::new("f", Some(Type::I64));
        let x = f.add_var("x", Type::I64);
        f.params.push(x);
        let b = f.add_block();
        assert_eq!(b, BlockId(1));
        f.block_mut(f.entry).term = Terminator::Jump(b);
        f.block_mut(b).stmts.push(Stmt::Assign {
            dst: x,
            rv: Rvalue::Use(Operand::const_i64(1)),
        });
        f.block_mut(b).term = Terminator::Return(Some(Operand::Var(x)));
        assert_eq!(f.num_blocks(), 2);
        assert_eq!(f.num_stmts(), 1);
        assert_eq!(f.var_by_name("x"), Some(x));
        assert_eq!(f.var_ty(x), Type::I64);
    }

    #[test]
    fn display_smoke() {
        let mut f = Function::new("g", None);
        let v = f.add_temp(Type::F64);
        f.block_mut(f.entry).stmts.push(Stmt::Assign {
            dst: v,
            rv: Rvalue::Use(Operand::const_f64(2.5)),
        });
        let s = format!("{f}");
        assert!(s.contains("fn g("));
        assert!(s.contains("2.5"));
    }
}
