//! Trace sinks: where emitted events go.
//!
//! The tracer serializes each event to its JSONL line *before* handing
//! it to the sink, so sinks only move bytes — the [`JsonlSink`] holds
//! its buffer lock for a `Vec` append, never for serialization or I/O
//! formatting work.

use crate::event::TraceEvent;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Destination for serialized trace events.
///
/// `emit` receives both the structured event and its pre-rendered JSONL
/// line; most sinks only need the line. Implementations must be
/// thread-safe — the parallel bench bins share one tracer per job but
/// tests may hammer a sink from several threads.
pub trait TraceSink: Send + Sync {
    /// Record one event. `line` is `event.to_line()`, rendered by the
    /// tracer outside any sink lock.
    fn emit(&self, event: &TraceEvent, line: &str);

    /// Flush any buffered output to its backing store.
    fn flush(&self) {}
}

/// Discards every event; backs disabled tracers in tests that still
/// want a sink object.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn emit(&self, _event: &TraceEvent, _line: &str) {}
}

/// In-memory sink collecting JSONL lines.
///
/// This is the determinism workhorse: the parallel bench bins give each
/// scoped-thread job its own `BufferSink`, then append the buffers to
/// the trace file in job-index order after joining, so the file is
/// byte-identical regardless of thread interleaving. Tests use it to
/// compare whole event streams across replays.
#[derive(Debug, Default)]
pub struct BufferSink {
    lines: Mutex<Vec<String>>,
}

impl BufferSink {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the collected lines.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }

    /// Take the collected lines, leaving the buffer empty.
    pub fn drain(&self) -> Vec<String> {
        std::mem::take(&mut *self.lines.lock().unwrap())
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap().len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().unwrap().is_empty()
    }
}

impl TraceSink for BufferSink {
    fn emit(&self, _event: &TraceEvent, line: &str) {
        self.lines.lock().unwrap().push(line.to_owned());
    }
}

/// Buffered JSONL file sink.
///
/// Writes one line per event through a [`BufWriter`]; the mutex guards
/// only the byte append (serialization already happened in the tracer).
/// Flushes on [`TraceSink::flush`] and on drop.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Append raw pre-rendered JSONL lines (used by the bench bins to
    /// splice per-job [`BufferSink`] buffers in deterministic order).
    pub fn append_lines<I, S>(&self, lines: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut w = self.writer.lock().unwrap();
        for line in lines {
            let _ = w.write_all(line.as_ref().as_bytes());
            let _ = w.write_all(b"\n");
        }
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, _event: &TraceEvent, line: &str) {
        let mut w = self.writer.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.write_all(b"\n");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.flush();
        }
    }
}

/// Bounded ring of the most recent JSONL lines.
///
/// The flight recorder's backing store: it keeps the trailing window of
/// a job's events at O(capacity) memory no matter how long the job
/// runs, counting (not storing) everything older. On success the ring
/// is simply dropped; on failure its contents become the post-mortem.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    inner: Mutex<Ring>,
}

#[derive(Debug, Default)]
struct Ring {
    lines: std::collections::VecDeque<String>,
    dropped: u64,
}

impl RingSink {
    /// Ring keeping at most `capacity` lines (`capacity == 0` keeps
    /// one — an empty post-mortem would be useless).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring::default()),
        }
    }

    /// Lines currently retained, oldest first.
    pub fn lines(&self) -> Vec<String> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.lines.iter().cloned().collect()
    }

    /// Events evicted to make room (total emitted = retained + dropped).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Maximum retained lines.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl TraceSink for RingSink {
    fn emit(&self, _event: &TraceEvent, line: &str) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.lines.len() == self.capacity {
            g.lines.pop_front();
            g.dropped += 1;
        }
        g.lines.push_back(line.to_owned());
    }
}

/// Tees each event to every inner sink, in order.
///
/// Lets a job's tracer feed the daemon's main trace file *and* its
/// flight-recorder ring from a single emit — the instrumented code
/// neither knows nor cares that it is being flight-recorded.
pub struct FanoutSink {
    sinks: Vec<std::sync::Arc<dyn TraceSink>>,
}

impl FanoutSink {
    /// Fan out to `sinks` (evaluated in the given order).
    pub fn new(sinks: Vec<std::sync::Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl std::fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink").field("sinks", &self.sinks.len()).finish()
    }
}

impl TraceSink for FanoutSink {
    fn emit(&self, event: &TraceEvent, line: &str) {
        for s in &self.sinks {
            s.emit(event, line);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_util::Json;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            span: 0,
            kind: "t".into(),
            fields: vec![("v".to_owned(), Json::U(seq * 2))],
        }
    }

    #[test]
    fn buffer_sink_collects_in_order() {
        let sink = BufferSink::new();
        for seq in 0..4 {
            let e = ev(seq);
            sink.emit(&e, &e.to_line());
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].starts_with(r#"{"seq":3,"#));
        assert_eq!(sink.drain().len(), 4);
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_sink_keeps_the_tail_and_counts_drops() {
        let sink = RingSink::new(3);
        for seq in 0..7 {
            let e = ev(seq);
            sink.emit(&e, &e.to_line());
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(r#"{"seq":4,"#), "{}", lines[0]);
        assert!(lines[2].starts_with(r#"{"seq":6,"#), "{}", lines[2]);
        assert_eq!(sink.dropped(), 4);
    }

    #[test]
    fn fanout_sink_tees_to_all_inner_sinks() {
        let a = std::sync::Arc::new(BufferSink::new());
        let ring = std::sync::Arc::new(RingSink::new(8));
        let fan = FanoutSink::new(vec![a.clone(), ring.clone()]);
        for seq in 0..2 {
            let e = ev(seq);
            fan.emit(&e, &e.to_line());
        }
        assert_eq!(a.len(), 2);
        assert_eq!(ring.lines().len(), 2);
        assert_eq!(a.lines(), ring.lines());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("peak-obs-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        for seq in 0..3 {
            let e = ev(seq);
            sink.emit(&e, &e.to_line());
        }
        sink.append_lines(["{\"seq\":99,\"span\":0,\"kind\":\"spliced\"}"]);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<_> = text
            .lines()
            .map(|l| TraceEvent::parse_line(l).unwrap())
            .collect();
        assert_eq!(parsed.len(), 4);
        assert_eq!(parsed[2].seq, 2);
        assert_eq!(parsed[3].kind, "spliced");
        std::fs::remove_file(&path).ok();
    }
}
