//! The [`Tracer`] handle, span guards, and the emission macros.

use crate::event::TraceEvent;
use crate::sink::TraceSink;
use peak_util::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cheaply clonable tracing handle.
///
/// A disabled tracer (the default, [`Tracer::disabled`]) carries no
/// state at all; [`Tracer::enabled`] is a single `Option` check, and
/// every instrumentation site guards field construction behind it so
/// the traced code runs unchanged when telemetry is off.
///
/// When enabled, events get a process-unique monotonic `seq` and the id
/// of the current span. Span nesting is tracked per tracer handle
/// family (all clones share the counter): [`Tracer::span`] emits a
/// `span.enter` event, makes the new span current, and returns a
/// [`SpanGuard`] that emits `span.exit` and restores the previous span
/// on drop. The tuning pipeline is single-threaded per tracer (the
/// parallel bench bins give each job its own tracer), which keeps this
/// save/restore scheme exact.
///
/// Determinism: `seq`, span ids and all instrumented payloads are
/// logical values, so same-seed runs produce byte-identical streams.
/// Wall-clock self-profiling ([`Tracer::with_wall_clock`]) adds a
/// `wall_ns` field to `span.exit` and `method.profile` events; it is
/// off by default precisely because it breaks byte-identity.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

struct Inner {
    sink: Arc<dyn TraceSink>,
    seq: AtomicU64,
    next_span: AtomicU64,
    current_span: AtomicU64,
    wall_clock: bool,
    start: Instant,
    ctx: Vec<(String, Json)>,
}

impl Tracer {
    /// The no-op tracer: every operation is a cheap branch-and-return.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Tracer writing to `sink`, deterministic fields only.
    pub fn to_sink(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                sink,
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                current_span: AtomicU64::new(0),
                wall_clock: false,
                start: Instant::now(),
                ctx: Vec::new(),
            })),
        }
    }

    /// Opt in to wall-clock self-profiling (`wall_ns` on span exits).
    /// Traces with wall-clock enabled are **not** byte-reproducible.
    pub fn with_wall_clock(self) -> Tracer {
        self.rebuild(|inner| inner.wall_clock = true)
    }

    /// Stamp fixed context fields (e.g. `benchmark`, `ts`, `machine`)
    /// onto every subsequent event. A context key already present in an
    /// event's own payload is not duplicated. Builder-style: call right
    /// after [`Tracer::to_sink`], before emitting.
    pub fn with_context(self, ctx: Vec<(String, Json)>) -> Tracer {
        self.rebuild(move |inner| inner.ctx = ctx)
    }

    /// Clone-and-tweak the inner state (builder support; counters carry
    /// over so pre-emission configuration keeps sequence continuity).
    fn rebuild(self, f: impl FnOnce(&mut Inner)) -> Tracer {
        match self.inner {
            Some(inner) => {
                let mut next = Inner {
                    sink: Arc::clone(&inner.sink),
                    seq: AtomicU64::new(inner.seq.load(Ordering::Relaxed)),
                    next_span: AtomicU64::new(inner.next_span.load(Ordering::Relaxed)),
                    current_span: AtomicU64::new(inner.current_span.load(Ordering::Relaxed)),
                    wall_clock: inner.wall_clock,
                    start: inner.start,
                    ctx: inner.ctx.clone(),
                };
                f(&mut next);
                Tracer { inner: Some(Arc::new(next)) }
            }
            None => Tracer { inner: None },
        }
    }

    /// True when events will actually be recorded. Call sites use this
    /// to skip building field vectors entirely.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when wall-clock self-profiling was requested.
    pub fn wall_clock(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.wall_clock)
    }

    /// Nanoseconds since the tracer was created, when wall-clock
    /// profiling is on; `None` otherwise. Deterministic traces never
    /// call this.
    pub fn wall_ns(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        if !inner.wall_clock {
            return None;
        }
        Some(inner.start.elapsed().as_nanos() as u64)
    }

    /// Emit one event with the given payload fields. No-op (and no
    /// field evaluation cost beyond the caller's) when disabled.
    pub fn emit(&self, kind: &str, fields: Vec<(String, Json)>) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        inner.record(kind, fields);
    }

    /// Enter a named span: emits `span.enter` (with `name` plus the
    /// given fields), makes the span current, and returns a guard that
    /// emits `span.exit` and restores the previous span on drop.
    pub fn span(&self, name: &str, fields: Vec<(String, Json)>) -> SpanGuard {
        let Some(inner) = self.inner.as_ref() else {
            return SpanGuard { state: None };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        let prev = inner.current_span.load(Ordering::Relaxed);
        let mut enter = Vec::with_capacity(fields.len() + 2);
        enter.push(("name".to_owned(), Json::Str(name.to_owned())));
        enter.push(("id".to_owned(), Json::U(id)));
        enter.extend(fields);
        inner.record("span.enter", enter);
        inner.current_span.store(id, Ordering::Relaxed);
        SpanGuard {
            state: Some(GuardState {
                inner: Arc::clone(inner),
                name: name.to_owned(),
                id,
                prev,
                entered: Instant::now(),
            }),
        }
    }

    /// The underlying sink, when enabled. The serve daemon uses this to
    /// tee a job's events into a flight-recorder ring without rebuilding
    /// the daemon tracer's configuration.
    pub fn sink(&self) -> Option<Arc<dyn TraceSink>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.sink))
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = self.inner.as_ref() {
            inner.sink.flush();
        }
    }
}

impl Inner {
    fn record(&self, kind: &str, mut fields: Vec<(String, Json)>) {
        for (k, v) in &self.ctx {
            if !fields.iter().any(|(fk, _)| fk == k) {
                fields.push((k.clone(), v.clone()));
            }
        }
        let event = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            span: self.current_span.load(Ordering::Relaxed),
            kind: kind.to_owned(),
            fields,
        };
        let line = event.to_line();
        self.sink.emit(&event, &line);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("wall_clock", &self.wall_clock())
            .finish()
    }
}

struct GuardState {
    inner: Arc<Inner>,
    name: String,
    id: u64,
    prev: u64,
    entered: Instant,
}

/// RAII guard for an open span; emits `span.exit` (restoring the
/// enclosing span as current) when dropped.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    state: Option<GuardState>,
}

impl SpanGuard {
    /// The span's id (`0` for a guard from a disabled tracer). Events
    /// emitted while this guard is live carry this id in `span`.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let mut fields = vec![
            ("name".to_owned(), Json::Str(state.name.clone())),
            ("id".to_owned(), Json::U(state.id)),
        ];
        if state.inner.wall_clock {
            fields.push((
                "wall_ns".to_owned(),
                Json::U(state.entered.elapsed().as_nanos() as u64),
            ));
        }
        // Exit while still "inside" the span so the exit event carries
        // the span's own id, then restore the enclosing span.
        state.inner.current_span.store(state.id, Ordering::Relaxed);
        state.inner.record("span.exit", fields);
        state.inner.current_span.store(state.prev, Ordering::Relaxed);
    }
}

/// Build the `Vec<(String, Json)>` payload for [`Tracer::emit`] /
/// [`Tracer::span`] from `key = value` pairs. Values go through
/// [`FieldValue`], so integers, floats, bools, strings and [`Json`]
/// all work directly.
#[macro_export]
macro_rules! fields {
    ($($key:ident = $value:expr),* $(,)?) => {
        vec![$((stringify!($key).to_owned(), $crate::event::FieldValue::into_field($value))),*]
    };
}

/// Emit one event when the tracer is enabled; evaluates the field
/// expressions only in that case.
///
/// ```ignore
/// event!(tracer, "rating", method = "cbr", cv = 0.004, samples = 160u64);
/// ```
#[macro_export]
macro_rules! event {
    ($tracer:expr, $kind:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $tracer.enabled() {
            $tracer.emit($kind, $crate::fields!($($key = $value),*));
        }
    };
}

/// Enter a span (returns the [`SpanGuard`](crate::SpanGuard)); field
/// expressions are only evaluated when the tracer is enabled.
///
/// ```ignore
/// let _round = span!(tracer, "tuner.round", round = 3u64);
/// ```
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $tracer.enabled() {
            $tracer.span($name, $crate::fields!($($key = $value),*))
        } else {
            $tracer.span($name, Vec::new())
        }
    };
}

/// Emit a named counter sample: a `counter` event with `name` and
/// `value` fields (plus any extra `key = value` context).
///
/// ```ignore
/// counter!(tracer, "sim.instructions", total, ts = ts_name);
/// ```
#[macro_export]
macro_rules! counter {
    ($tracer:expr, $name:expr, $value:expr $(, $key:ident = $value2:expr)* $(,)?) => {
        if $tracer.enabled() {
            let mut f = $crate::fields!($($key = $value2),*);
            let mut all = Vec::with_capacity(f.len() + 2);
            all.push(("name".to_owned(), $crate::event::FieldValue::into_field($name)));
            all.push(("value".to_owned(), $crate::event::FieldValue::into_field($value)));
            all.append(&mut f);
            $tracer.emit("counter", all);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::BufferSink;

    fn traced() -> (Tracer, Arc<BufferSink>) {
        let sink = Arc::new(BufferSink::new());
        (Tracer::to_sink(sink.clone()), sink)
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        crate::event!(t, "rating", cv = 0.5);
        let g = crate::span!(t, "outer");
        assert_eq!(g.id(), 0);
        drop(g);
        t.flush();
    }

    #[test]
    fn sequence_is_monotonic_and_spans_nest() {
        let (t, sink) = traced();
        {
            let outer = t.span("outer", vec![]);
            crate::event!(t, "inside_outer", x = 1u64);
            {
                let inner = t.span("inner", vec![]);
                crate::event!(t, "inside_inner", y = 2u64);
                assert_ne!(inner.id(), outer.id());
            }
            crate::event!(t, "back_in_outer", z = 3u64);
        }
        crate::event!(t, "top_level");
        let evs: Vec<_> = sink
            .lines()
            .iter()
            .map(|l| TraceEvent::parse_line(l).unwrap())
            .collect();
        let seqs: Vec<_> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..evs.len() as u64).collect::<Vec<_>>());
        let by_kind = |k: &str| evs.iter().find(|e| e.kind == k).unwrap();
        let outer_id = by_kind("span.enter").field("id").unwrap().as_u64().unwrap();
        assert_eq!(by_kind("inside_outer").span, outer_id);
        let inner_id = evs
            .iter()
            .filter(|e| e.kind == "span.enter")
            .nth(1)
            .unwrap()
            .field("id")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(by_kind("inside_inner").span, inner_id);
        assert_eq!(by_kind("back_in_outer").span, outer_id);
        assert_eq!(by_kind("top_level").span, 0);
        // exits carry their own span id and name
        let exits: Vec<_> = evs.iter().filter(|e| e.kind == "span.exit").collect();
        assert_eq!(exits.len(), 2);
        assert_eq!(exits[0].field("name").unwrap().as_str(), Some("inner"));
        assert_eq!(exits[1].field("name").unwrap().as_str(), Some("outer"));
    }

    #[test]
    fn counter_macro_shapes_fields() {
        let (t, sink) = traced();
        crate::counter!(t, "sim.instructions", 1234u64, ts = "TS7");
        let ev = TraceEvent::parse_line(&sink.lines()[0]).unwrap();
        assert_eq!(ev.kind, "counter");
        assert_eq!(ev.field("name").unwrap().as_str(), Some("sim.instructions"));
        assert_eq!(ev.field("value").unwrap().as_u64(), Some(1234));
        assert_eq!(ev.field("ts").unwrap().as_str(), Some("TS7"));
    }

    #[test]
    fn deterministic_streams_without_wall_clock() {
        let run = || {
            let (t, sink) = traced();
            let _s = t.span("work", crate::fields!(job = 1u64));
            crate::event!(t, "step", n = 2u64);
            drop(_s);
            sink.lines()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wall_clock_adds_wall_ns_to_exits() {
        let sink = Arc::new(BufferSink::new());
        let t = Tracer::to_sink(sink.clone()).with_wall_clock();
        assert!(t.wall_clock());
        assert!(t.wall_ns().is_some());
        drop(t.span("timed", vec![]));
        let exit = sink
            .lines()
            .iter()
            .map(|l| TraceEvent::parse_line(l).unwrap())
            .find(|e| e.kind == "span.exit")
            .unwrap();
        assert!(exit.field("wall_ns").is_some());
    }
}
