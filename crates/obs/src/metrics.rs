//! Process-wide live metrics: atomic counters, gauges, and fixed
//! log-bucketed histograms behind a [`MetricsRegistry`].
//!
//! Where the [`tracer`](crate::tracer) answers *"what happened, in
//! order?"* (a stream you replay), metrics answer *"how much, right
//! now?"* (a snapshot you poll). The design constraints mirror the
//! tracer's:
//!
//! 1. **Lock-free hot path.** A metric handle is an `Arc` around plain
//!    atomics; [`Counter::inc`] is one relaxed `fetch_add`, zero
//!    allocation, no lock. The registry mutex is touched only at
//!    registration and snapshot time. Call sites cache handles in
//!    `OnceLock` statics so steady-state cost is one atomic load plus
//!    the increment.
//! 2. **Globally switchable.** [`enabled`] is a single relaxed load of
//!    a process-wide flag (default on; `PEAK_METRICS=0` or
//!    [`set_enabled`]`(false)` turns it off). The hotpath bench gate
//!    measures on-vs-off and fails the build if observation perturbs
//!    the observed system by more than its budget.
//! 3. **Deterministic snapshots.** [`Snapshot`] orders metrics by name
//!    and exposes an exact [`Snapshot::delta`], so same-seed runs
//!    produce identical counter snapshots. Wall-clock *histograms*
//!    (latency observations) are the documented exception — their
//!    bucket contents depend on real time and are excluded from
//!    determinism comparisons (see DESIGN.md §14).
//!
//! Exposition is dual: Prometheus-style text ([`Snapshot::render_prometheus`],
//! parseable back with [`parse_exposition`] — CI round-trips it) and a
//! JSON form ([`Snapshot::to_json`] / [`Snapshot::from_json`]) carried
//! in the serve daemon's `stats` response.

use peak_util::{Json, ToJson};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets. Bucket `k ≥ 1` holds values whose bit
/// length is `k` (i.e. `2^(k-1) ..= 2^k - 1`); bucket `0` holds zero;
/// the last bucket absorbs everything wider.
pub const HIST_BUCKETS: usize = 32;

fn enabled_flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let off = std::env::var("PEAK_METRICS")
            .is_ok_and(|v| matches!(v.as_str(), "0" | "off" | "false"));
        AtomicBool::new(!off)
    })
}

/// Whether metric recording is on. One relaxed atomic load — hot sites
/// guard their increment behind this so a metrics-off run does no
/// metric work at all.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Flip metric recording at runtime (the overhead bench uses this to
/// interleave on/off measurement slices in one process).
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, busy workers, cache
/// entries).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (e.g. +1 when a worker picks a job up).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed log₂-bucketed histogram of `u64` observations (latencies in
/// ms, retry counts, queue depths at admission). Observation is two
/// relaxed `fetch_add`s plus one on the bucket — no allocation, no
/// lock, no floating point.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Bucket index for a value: 0 for 0, else its bit length, clamped to
/// the last bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `k` (`None` = unbounded last bucket).
pub fn bucket_bound(k: usize) -> Option<u64> {
    if k + 1 >= HIST_BUCKETS {
        None
    } else if k >= 63 {
        Some(u64::MAX)
    } else {
        Some((1u64 << k) - 1)
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// Point-in-time copy of one histogram (per-bucket counts are raw, not
/// cumulative; the Prometheus renderer accumulates).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Raw count per bucket (length [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Counts accumulated since `earlier`.
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

/// One registered metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistSnapshot),
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    metric: Metric,
}

/// Registry of named metrics. Registration is idempotent by name (a
/// second registration returns the existing handle); registering the
/// same name as a different metric kind panics — that is a programming
/// error, not a runtime condition.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// Fresh empty registry (tests; production uses
    /// [`MetricsRegistry::global`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry every subsystem registers into.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> Metric,
        cast: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries
            .entry(name.to_owned())
            .or_insert_with(|| Entry { help: help.to_owned(), metric: make() });
        cast(&entry.metric).unwrap_or_else(|| {
            panic!("metric {name:?} already registered as a {}", entry.metric.kind())
        })
    }

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(
            name,
            help,
            || Metric::Counter(Arc::new(Counter::default())),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(
            name,
            help,
            || Metric::Gauge(Arc::new(Gauge::default())),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register(
            name,
            help,
            || Metric::Histogram(Arc::new(Histogram::default())),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Point-in-time copy of every registered metric, name-ordered
    /// (BTreeMap iteration), so two snapshots of identical state render
    /// byte-identically.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        Snapshot {
            entries: entries
                .iter()
                .map(|(name, e)| SnapEntry {
                    name: name.clone(),
                    help: e.help.clone(),
                    value: match &e.metric {
                        Metric::Counter(c) => SnapValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.entries.lock().map(|e| e.len()).unwrap_or(0);
        f.debug_struct("MetricsRegistry").field("metrics", &n).finish()
    }
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapEntry {
    /// Dotted metric name (`serve.jobs_ok`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Value at snapshot time.
    pub value: SnapValue,
}

/// Deterministically ordered point-in-time copy of a registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Metrics, sorted by name.
    pub entries: Vec<SnapEntry>,
}

/// Dotted names → Prometheus identifier charset.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

impl Snapshot {
    /// Look a metric up by its dotted name.
    pub fn get(&self, name: &str) -> Option<&SnapValue> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.value)
    }

    /// Counter value by name (`None` for absent or non-counter).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SnapValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            SnapValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Counters and histograms accumulated since `earlier`; gauges keep
    /// their current (instantaneous) value. Metrics registered since
    /// `earlier` delta against zero.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .map(|e| {
                    let value = match (&e.value, earlier.get(&e.name)) {
                        (SnapValue::Counter(now), Some(SnapValue::Counter(then))) => {
                            SnapValue::Counter(now.saturating_sub(*then))
                        }
                        (SnapValue::Histogram(now), Some(SnapValue::Histogram(then))) => {
                            SnapValue::Histogram(now.delta(then))
                        }
                        (v, _) => v.clone(),
                    };
                    SnapEntry { name: e.name.clone(), help: e.help.clone(), value }
                })
                .collect(),
        }
    }

    /// Drop histograms (the wall-clock-dependent metrics), keeping the
    /// deterministic counters and gauges — the form the determinism
    /// tests compare.
    pub fn without_histograms(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| !matches!(e.value, SnapValue::Histogram(_)))
                .cloned()
                .collect(),
        }
    }

    /// Prometheus-style text exposition (`# HELP` / `# TYPE` comments,
    /// one sample line per value, cumulative `_bucket{le="…"}` series
    /// for histograms).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let name = prom_name(&e.name);
            if !e.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", e.help));
            }
            match &e.value {
                SnapValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                SnapValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                SnapValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (k, c) in h.buckets.iter().enumerate() {
                        cumulative += c;
                        // Only emit non-empty prefixes plus +Inf: full
                        // 32-bucket series per histogram would dominate
                        // the page with zeros.
                        if *c == 0 && k + 1 < HIST_BUCKETS {
                            continue;
                        }
                        match bucket_bound(k) {
                            Some(le) => out.push_str(&format!(
                                "{name}_bucket{{le=\"{le}\"}} {cumulative}\n"
                            )),
                            None => out.push_str(&format!(
                                "{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"
                            )),
                        }
                    }
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// Rebuild a snapshot from its [`Snapshot::to_json`] form (the serve
    /// CLI uses this to re-render a daemon's stats response as
    /// Prometheus text).
    pub fn from_json(j: &Json) -> Option<Snapshot> {
        let mut entries = Vec::new();
        if let Some(Json::Obj(pairs)) = j.get("counters") {
            for (name, v) in pairs {
                entries.push(SnapEntry {
                    name: name.clone(),
                    help: String::new(),
                    value: SnapValue::Counter(v.as_u64()?),
                });
            }
        }
        if let Some(Json::Obj(pairs)) = j.get("gauges") {
            for (name, v) in pairs {
                entries.push(SnapEntry {
                    name: name.clone(),
                    help: String::new(),
                    value: SnapValue::Gauge(v.as_i64()?),
                });
            }
        }
        if let Some(Json::Obj(pairs)) = j.get("histograms") {
            for (name, v) in pairs {
                let mut buckets = vec![0u64; HIST_BUCKETS];
                for b in v.get("buckets")?.as_arr()? {
                    let k = b.get("bucket")?.as_u64()? as usize;
                    if k < HIST_BUCKETS {
                        buckets[k] = b.get("count")?.as_u64()?;
                    }
                }
                entries.push(SnapEntry {
                    name: name.clone(),
                    help: String::new(),
                    value: SnapValue::Histogram(HistSnapshot {
                        count: v.get("count")?.as_u64()?,
                        sum: v.get("sum")?.as_u64()?,
                        buckets,
                    }),
                });
            }
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Some(Snapshot { entries })
    }
}

impl ToJson for Snapshot {
    /// `{"counters":{…},"gauges":{…},"histograms":{…}}`, each section
    /// name-ordered; histogram buckets list only non-empty ones as
    /// `{"bucket":k,"le":…,"count":…}`.
    fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for e in &self.entries {
            match &e.value {
                SnapValue::Counter(v) => counters.push((e.name.clone(), Json::U(*v))),
                SnapValue::Gauge(v) => gauges.push((e.name.clone(), Json::I(*v))),
                SnapValue::Histogram(h) => {
                    let buckets: Vec<Json> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(k, c)| {
                            Json::obj(vec![
                                ("bucket", Json::U(k as u64)),
                                (
                                    "le",
                                    bucket_bound(k).map_or(Json::Null, Json::U),
                                ),
                                ("count", Json::U(*c)),
                            ])
                        })
                        .collect();
                    histograms.push((
                        e.name.clone(),
                        Json::obj(vec![
                            ("count", Json::U(h.count)),
                            ("sum", Json::U(h.sum)),
                            ("buckets", Json::Arr(buckets)),
                        ]),
                    ));
                }
            }
        }
        Json::obj(vec![
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }
}

/// One parsed exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpoSample {
    /// Sample name (histogram series keep their `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse Prometheus-style exposition text back into samples. Strict
/// about shape (CI uses this to validate the daemon's exposition):
/// every non-comment line must be `name[{k="v",…}] value` with a
/// finite value.
pub fn parse_exposition(text: &str) -> Result<Vec<ExpoSample>, String> {
    let mut samples = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", n + 1);
        let (head, value_str) = line.rsplit_once(' ').ok_or_else(|| err("no value"))?;
        let value: f64 = value_str.parse().map_err(|_| err("bad value"))?;
        if !value.is_finite() {
            return Err(err("non-finite value"));
        }
        let (name, labels) = match head.split_once('{') {
            None => (head.to_owned(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').ok_or_else(|| err("unclosed labels"))?;
                let mut labels = Vec::new();
                for part in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = part.split_once('=').ok_or_else(|| err("bad label"))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.to_owned(), v.to_owned()));
                }
                (name.to_owned(), labels)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("bad metric name"));
        }
        samples.push(ExpoSample { name, labels, value });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_u64_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Bucket bounds nest: every value ≤ its bucket's bound.
        for v in [0u64, 1, 7, 100, 4096, 1 << 30] {
            let k = bucket_index(v);
            if let Some(le) = bucket_bound(k) {
                assert!(v <= le, "{v} escapes bucket {k} (le {le})");
            }
        }
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.count", "a counter");
        let b = r.counter("x.count", "ignored duplicate help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name shares one atom");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = r.gauge("x.count", "wrong kind");
        }));
        assert!(caught.is_err(), "kind mismatch must panic");
    }

    #[test]
    fn concurrent_increments_are_exact() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let r = MetricsRegistry::new();
        let c = r.counter("stress.count", "");
        let g = r.gauge("stress.level", "");
        let h = r.histogram("stress.hist", "");
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (c, g, h) = (c.clone(), g.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        g.add(1);
                        g.sub(1);
                        h.observe(t as u64 * 1000 + i % 17);
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
        let snap = r.snapshot();
        let SnapValue::Histogram(hs) = snap.get("stress.hist").unwrap() else {
            panic!("histogram expected")
        };
        assert_eq!(hs.buckets.iter().sum::<u64>(), hs.count, "buckets partition the count");
    }

    #[test]
    fn snapshot_is_name_ordered_and_delta_subtracts() {
        let r = MetricsRegistry::new();
        let b = r.counter("b.count", "");
        let a = r.counter("a.count", "");
        let g = r.gauge("m.gauge", "");
        a.add(5);
        b.add(2);
        g.set(9);
        let first = r.snapshot();
        let names: Vec<&str> = first.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.count", "b.count", "m.gauge"]);
        a.add(10);
        g.set(4);
        let d = r.snapshot().delta(&first);
        assert_eq!(d.counter("a.count"), Some(10));
        assert_eq!(d.counter("b.count"), Some(0));
        assert_eq!(d.gauge("m.gauge"), Some(4), "gauges stay instantaneous");
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let r = MetricsRegistry::new();
        r.counter("serve.jobs_ok", "Jobs completed").add(42);
        r.gauge("serve.queue_depth", "Queued jobs").set(3);
        let h = r.histogram("serve.job_wall_ms", "Job latency");
        for v in [0, 1, 3, 500, 500, 70_000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let text = snap.render_prometheus();
        let samples = parse_exposition(&text).expect("exposition must parse");
        let by_name = |n: &str| {
            samples.iter().find(|s| s.name == n).unwrap_or_else(|| panic!("no sample {n}"))
        };
        assert_eq!(by_name("serve_jobs_ok").value, 42.0);
        assert_eq!(by_name("serve_queue_depth").value, 3.0);
        assert_eq!(by_name("serve_job_wall_ms_count").value, 6.0);
        assert_eq!(by_name("serve_job_wall_ms_sum").value, 71_004.0);
        // +Inf bucket is cumulative == count.
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "serve_job_wall_ms_bucket"
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf.value, 6.0);
        // Bucket series is monotonically non-decreasing.
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "serve_job_wall_ms_bucket")
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        // Garbage does not parse.
        assert!(parse_exposition("no value here").is_err());
        assert!(parse_exposition("bad{le=\"1\" 3").is_err());
    }

    #[test]
    fn json_round_trip_preserves_values() {
        let r = MetricsRegistry::new();
        r.counter("c.one", "").add(7);
        r.gauge("g.one", "").set(-2);
        let h = r.histogram("h.one", "");
        h.observe(12);
        h.observe(900);
        let snap = r.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).expect("json round-trip");
        assert_eq!(back.counter("c.one"), Some(7));
        assert_eq!(back.gauge("g.one"), Some(-2));
        let (SnapValue::Histogram(a), Some(SnapValue::Histogram(b))) =
            (snap.get("h.one").unwrap(), back.get("h.one"))
        else {
            panic!("histograms expected")
        };
        assert_eq!(a, b);
        // And re-rendering the rebuilt snapshot still parses.
        assert!(parse_exposition(&back.render_prometheus()).is_ok());
    }

    #[test]
    fn without_histograms_drops_only_histograms() {
        let r = MetricsRegistry::new();
        r.counter("keep.count", "").inc();
        r.histogram("drop.hist", "").observe(1);
        let snap = r.snapshot().without_histograms();
        assert!(snap.get("keep.count").is_some());
        assert!(snap.get("drop.hist").is_none());
    }

    #[test]
    fn enable_switch_is_observable() {
        // Don't assume the ambient default (other tests may have
        // flipped it); just check both transitions.
        let before = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(before);
    }
}
