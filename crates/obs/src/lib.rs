//! # peak-obs — tuning telemetry
//!
//! A first-class observability layer for the tuning pipeline: every
//! rating decision, degradation step, simulated run, and tuner round can
//! emit structured [`TraceEvent`]s through a [`TraceSink`], making the
//! evidence behind each timing decision auditable and replayable.
//!
//! Design constraints (in priority order):
//!
//! 1. **Zero cost when disabled.** A disabled [`Tracer`] is a `None` —
//!    every instrumentation site guards on [`Tracer::enabled`] (a single
//!    branch) and builds no fields. The fault-free hot path stays
//!    bit-identical and within measurement noise of an uninstrumented
//!    build.
//! 2. **Deterministic by default.** Events are stamped with logical
//!    sequence numbers, not wall-clock times, so the same seed and the
//!    same [`FaultConfig`](../peak_sim/faults) produce byte-identical
//!    event streams — the property the replay tests pin. Wall-clock
//!    self-profiling is opt-in via [`Tracer::with_wall_clock`] and adds
//!    a `wall_ns` field that diff tooling knows to ignore.
//! 3. **No registry dependencies.** Like `peak-util`, this crate builds
//!    offline; events serialize through the shared `peak-util` JSON
//!    model as compact JSONL lines.
//!
//! The crate provides:
//!
//! * [`event`] — the [`TraceEvent`] model and its JSONL round-trip;
//! * [`sink`] — the [`TraceSink`] trait with a no-op sink, an in-memory
//!   [`BufferSink`] (used for deterministic per-job buffering in the
//!   parallel bench bins), a buffered file [`JsonlSink`], a bounded
//!   [`RingSink`] (the flight recorder's window), and a teeing
//!   [`FanoutSink`];
//! * [`tracer`] — the [`Tracer`] handle plus the [`span!`], [`event!`]
//!   and [`counter!`] macros;
//! * [`metrics`] — the live-aggregate counterpart to tracing: a
//!   process-wide [`MetricsRegistry`] of atomic counters, gauges and
//!   log-bucketed histograms with deterministic [`Snapshot`]s,
//!   Prometheus-style text exposition and a JSON form.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod sink;
pub mod tracer;

pub use event::{FieldValue, TraceEvent};
pub use metrics::{
    Counter, Gauge, Histogram, MetricsRegistry, SnapValue, Snapshot,
};
pub use sink::{BufferSink, FanoutSink, JsonlSink, NoopSink, RingSink, TraceSink};
pub use tracer::{SpanGuard, Tracer};
