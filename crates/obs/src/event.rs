//! The trace event model and its JSONL round-trip.

use peak_util::{from_str, Json, ParseError, ToJson};

/// One structured telemetry record.
///
/// Events serialize as one compact JSON object per line with three
/// reserved keys — `seq` (logical sequence number, the deterministic
/// substitute for a timestamp), `span` (id of the enclosing span, `0`
/// for top-level events) and `kind` (event name such as `rating` or
/// `sim.run`) — followed by the event's payload fields flattened into
/// the same object in insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Logical sequence number, unique and monotonic per tracer.
    pub seq: u64,
    /// Id of the enclosing span (`0` when emitted outside any span).
    pub span: u64,
    /// Event name, dot-separated by convention (`span.enter`, `sim.run`).
    pub kind: String,
    /// Payload fields in insertion order. Field names must not collide
    /// with the reserved keys `seq` / `span` / `kind`.
    pub fields: Vec<(String, Json)>,
}

/// A value convertible into an event field. Implemented for the common
/// scalar types plus [`Json`] itself so instrumentation sites can pass
/// counters, ratios, names and pre-built JSON values uniformly.
pub trait FieldValue {
    /// Convert into the JSON field representation.
    fn into_field(self) -> Json;
}

impl FieldValue for Json {
    fn into_field(self) -> Json {
        self
    }
}

macro_rules! field_via_to_json {
    ($($ty:ty),+) => {$(
        impl FieldValue for $ty {
            fn into_field(self) -> Json {
                self.to_json()
            }
        }
    )+};
}

field_via_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, bool, String);

impl FieldValue for &str {
    fn into_field(self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T> FieldValue for Option<T>
where
    T: FieldValue,
{
    fn into_field(self) -> Json {
        match self {
            Some(v) => v.into_field(),
            None => Json::Null,
        }
    }
}

impl TraceEvent {
    /// Serialize as a single JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut pairs = Vec::with_capacity(3 + self.fields.len());
        pairs.push(("seq".to_owned(), Json::U(self.seq)));
        pairs.push(("span".to_owned(), Json::U(self.span)));
        pairs.push(("kind".to_owned(), Json::Str(self.kind.clone())));
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs).compact()
    }

    /// Parse one JSONL line back into an event. Lines must be objects
    /// with the three reserved keys leading in any position; every other
    /// key becomes a payload field, preserving file order.
    pub fn parse_line(line: &str) -> Result<TraceEvent, ParseError> {
        let json = from_str(line.trim())?;
        Self::from_json(&json).ok_or_else(|| ParseError {
            offset: 0,
            message: "trace event must be an object with seq/span/kind".to_owned(),
        })
    }

    /// Build from an already-parsed JSON object; `None` when the value
    /// is not an object or lacks the reserved keys.
    pub fn from_json(json: &Json) -> Option<TraceEvent> {
        let Json::Obj(pairs) = json else { return None };
        let seq = json.get("seq")?.as_u64()?;
        let span = json.get("span")?.as_u64()?;
        let kind = json.get("kind")?.as_str()?.to_owned();
        let fields = pairs
            .iter()
            .filter(|(k, _)| k != "seq" && k != "span" && k != "kind")
            .cloned()
            .collect();
        Some(TraceEvent {
            seq,
            span,
            kind,
            fields,
        })
    }

    /// Payload field lookup by name.
    pub fn field(&self, name: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut pairs = Vec::with_capacity(3 + self.fields.len());
        pairs.push(("seq".to_owned(), Json::U(self.seq)));
        pairs.push(("span".to_owned(), Json::U(self.span)));
        pairs.push(("kind".to_owned(), Json::Str(self.kind.clone())));
        pairs.extend(self.fields.iter().cloned());
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trip_preserves_field_order() {
        let ev = TraceEvent {
            seq: 41,
            span: 7,
            kind: "rating".into(),
            fields: vec![
                ("method".to_owned(), Json::Str("cbr".into())),
                ("cv".to_owned(), Json::F(0.0042)),
                ("samples".to_owned(), Json::U(160)),
                ("converged".to_owned(), Json::Bool(true)),
            ],
        };
        let line = ev.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(
            line,
            r#"{"seq":41,"span":7,"kind":"rating","method":"cbr","cv":0.0042,"samples":160,"converged":true}"#
        );
        assert_eq!(TraceEvent::parse_line(&line).unwrap(), ev);
    }

    #[test]
    fn parse_rejects_non_events() {
        assert!(TraceEvent::parse_line("[1,2,3]").is_err());
        assert!(TraceEvent::parse_line(r#"{"seq":1,"span":0}"#).is_err());
        assert!(TraceEvent::parse_line("not json").is_err());
    }

    #[test]
    fn field_lookup() {
        let ev = TraceEvent {
            seq: 0,
            span: 0,
            kind: "k".into(),
            fields: vec![("x".to_owned(), Json::U(9))],
        };
        assert_eq!(ev.field("x").and_then(Json::as_u64), Some(9));
        assert!(ev.field("y").is_none());
    }
}
