//! Ablation A1 (paper §2.4.2): basic vs improved re-execution-based
//! rating under cache effects.
//!
//! The basic protocol times the first version on a cache preconditioned
//! by the save pass and the second on a cache warmed by the first — a
//! systematic bias the improved protocol removes with its precondition
//! pass and order swapping. The bench measures both the *bias* (mean
//! rating of a version against itself, ideal = 1.0) and the host cost.

use criterion::{criterion_group, criterion_main, Criterion};
use peak_core::consultant::Method;
use peak_core::rating::{rate, rate_rbr_basic, TuningSetup};
use peak_opt::OptConfig;
use peak_sim::MachineSpec;
use peak_workloads::{crafty::CraftyAttacked, Dataset};

fn self_rating_bias(improved: bool) -> f64 {
    // CRAFTY: branchy, data-dependent control — the cache AND
    // branch-predictor warm-up asymmetries the improved protocol targets.
    let w = CraftyAttacked::new();
    let mut setup = TuningSetup::new(&w, MachineSpec::pentium_iv(), Dataset::Train);
    let base = OptConfig::o3();
    let out = if improved {
        rate(&mut setup, Method::Rbr, base, &[base]).expect("RBR applies")
    } else {
        rate_rbr_basic(&mut setup, base, &[base])
    };
    out.improvements[0]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rbr_ablation");
    group.sample_size(10);
    group.bench_function("improved_protocol", |b| {
        b.iter(|| std::hint::black_box(self_rating_bias(true)))
    });
    group.bench_function("basic_protocol", |b| {
        b.iter(|| std::hint::black_box(self_rating_bias(false)))
    });
    group.finish();
    // Report the bias itself (the scientific payload of this ablation).
    let improved = self_rating_bias(true);
    let basic = self_rating_bias(false);
    println!("\n=== RBR ablation: self-rating (ideal = 1.000) ===");
    println!("  improved protocol: {improved:.4}  (bias {:+.2}%)", (improved - 1.0) * 100.0);
    println!("  basic protocol:    {basic:.4}  (bias {:+.2}%)", (basic - 1.0) * 100.0);
    println!(
        "  paper §2.4.2: the precondition pass + order swap remove the cache warm-up bias"
    );
    assert!(
        (improved - 1.0).abs() < (basic - 1.0).abs(),
        "improved protocol must reduce the warm-up bias: {improved:.4} vs {basic:.4}"
    );
    assert!(
        (basic - 1.0).abs() > 0.02,
        "the basic protocol's bias should be visible on a branchy TS: {basic:.4}"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
