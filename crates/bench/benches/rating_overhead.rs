//! Ablation A2 (paper §3): rating overhead per method, and the effect of
//! outlier elimination on window convergence.
//!
//! Measures (a) the *simulated* cycles each method spends to produce one
//! confident rating of a single candidate — the overhead hierarchy
//! CBR < MBR < RBR ≪ WHL the paper's method-selection order relies on —
//! and (b) how many samples a window needs to converge with and without
//! the MAD outlier filter when interrupt-like spikes pollute the stream.

use criterion::{criterion_group, criterion_main, Criterion};
use peak_core::consultant::Method;
use peak_core::rating::{rate, TuningSetup};
use peak_core::stats::{summarize, trim_outliers, OUTLIER_K};
use peak_opt::{Flag, OptConfig};
use peak_sim::MachineSpec;
use peak_workloads::{mgrid::MgridResid, Dataset};
use rand::{Rng, SeedableRng};

fn rating_cycles(method: Method) -> Option<u64> {
    let w = MgridResid::new();
    let mut setup = TuningSetup::new(&w, MachineSpec::sparc_ii(), Dataset::Train);
    let base = OptConfig::o3();
    let cand = [base.without(Flag::PrefetchLoopArrays)];
    rate(&mut setup, method, base, &cand)?;
    Some(setup.tuning_cycles)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rating_overhead");
    group.sample_size(10);
    for method in [Method::Cbr, Method::Mbr, Method::Rbr, Method::Avg] {
        group.bench_function(method.name(), |b| {
            b.iter(|| std::hint::black_box(rating_cycles(method)))
        });
    }
    group.finish();

    println!("\n=== Simulated tuning cycles to rate one candidate (MGRID, SPARC II) ===");
    let mut cycles: Vec<(Method, u64)> = Vec::new();
    for method in [Method::Cbr, Method::Mbr, Method::Rbr, Method::Avg, Method::Whl] {
        if let Some(cy) = rating_cycles(method) {
            println!("  {:<4} {:>14} cycles", method.name(), cy);
            cycles.push((method, cy));
        }
    }
    let whl = cycles.iter().find(|(m, _)| *m == Method::Whl).map(|(_, c)| *c);
    let mbr = cycles.iter().find(|(m, _)| *m == Method::Mbr).map(|(_, c)| *c);
    if let (Some(whl), Some(mbr)) = (whl, mbr) {
        println!("  MBR / WHL = {:.3} (paper Fig. 7c/d: well under 1)", mbr as f64 / whl as f64);
        assert!(mbr < whl, "section rating must be cheaper than whole-program rating");
    }

    // Outlier-elimination ablation: spiked samples.
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let samples: Vec<f64> = (0..400)
        .map(|_| {
            let base = 10_000.0 + rng.gen_range(-80.0..80.0);
            if rng.gen_bool(0.02) {
                base + rng.gen_range(40_000.0..120_000.0) // interrupt
            } else {
                base
            }
        })
        .collect();
    let raw = summarize(&samples);
    let clean = summarize(&trim_outliers(&samples, OUTLIER_K));
    println!("\n=== Outlier elimination (2% interrupt spikes on a 10k-cycle TS) ===");
    println!("  raw:      mean {:>9.1}  cv {:.4}", raw.mean, raw.cv());
    println!("  filtered: mean {:>9.1}  cv {:.4}", clean.mean, clean.cv());
    assert!(clean.cv() < raw.cv() / 3.0, "filter must cut the dispersion");
    assert!((clean.mean - 10_000.0).abs() < 100.0, "filtered mean unbiased");
}

criterion_group!(benches, bench);
criterion_main!(benches);
