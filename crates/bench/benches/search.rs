//! Ablation A3: search algorithms over the flag space — Iterative
//! Elimination (the paper's choice, O(n²)) against exhaustive search on a
//! small subspace and Cooper-style biased random search, all using the
//! same rating machinery ("Alternative pruning algorithms could also be
//! plugged into our system", paper §5.2).
//!
//! The Criterion timings cover a *single rating round* (the unit all
//! search algorithms are built from); the full-search quality comparison
//! runs once and prints its table after the timings.

use criterion::{criterion_group, criterion_main, Criterion};
use peak_core::consultant::Method;
use peak_core::rating::{rate, TuningSetup};
use peak_core::search::{exhaustive, iterative_elimination, random_search};
use peak_opt::{Flag, OptConfig};
use peak_sim::MachineSpec;
use peak_workloads::{art::ArtMatch, Dataset};

/// Small subspace for exhaustive search: the flags that matter for ART.
const SUBSPACE: [Flag; 5] = [
    Flag::StrictAliasing,
    Flag::RegisterPromotion,
    Flag::ScheduleInsns,
    Flag::LoopUnroll,
    Flag::PrefetchLoopArrays,
];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_round");
    group.sample_size(10);
    // One rating round with 6 candidates — the repeated unit of every
    // search algorithm here.
    group.bench_function("rbr_rate_6_candidates", |b| {
        b.iter(|| {
            let w = ArtMatch::new();
            let mut setup = TuningSetup::new(&w, MachineSpec::pentium_iv(), Dataset::Train);
            let base = OptConfig::o3();
            let cands: Vec<OptConfig> =
                SUBSPACE.iter().map(|&f| base.without(f)).collect();
            std::hint::black_box(rate(&mut setup, Method::Rbr, base, &cands))
        })
    });
    group.finish();

    // Quality comparison: all should find the strict-aliasing win on P4.
    println!("\n=== Search quality on ART / Pentium IV ===");
    let run = |label: &str, f: &dyn Fn(&mut TuningSetup<'_>) -> peak_core::SearchResult| {
        let w = ArtMatch::new();
        let mut setup = TuningSetup::new(&w, MachineSpec::pentium_iv(), Dataset::Train);
        let r = f(&mut setup);
        let t = peak_core::production_time(&w, &MachineSpec::pentium_iv(), r.best, Dataset::Ref);
        let base = peak_core::production_time(
            &w,
            &MachineSpec::pentium_iv(),
            OptConfig::o3(),
            Dataset::Ref,
        );
        println!(
            "  {:<24} {:+6.1}%  ({} ratings, {} tuning cycles) off={:?}",
            label,
            (base as f64 / t as f64 - 1.0) * 100.0,
            r.ratings,
            r.tuning_cycles,
            r.disabled_flags
        );
        r
    };
    let ie = run("iterative-elimination", &|s| iterative_elimination(s, Method::Rbr));
    let ex = run("exhaustive (5 flags)", &|s| exhaustive(s, Method::Rbr, &SUBSPACE));
    let _ = run("random (24 samples)", &|s| random_search(s, Method::Rbr, 24, 0.15, 9));
    assert!(
        ie.disabled_flags.iter().any(|f| f == "strict-aliasing"),
        "IE finds the aliasing win"
    );
    assert!(
        ex.disabled_flags.iter().any(|f| f == "strict-aliasing")
            || ex.disabled_flags.iter().any(|f| f == "register-promotion"),
        "exhaustive finds the pressure fix: {:?}",
        ex.disabled_flags
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
