//! Table-1 companion bench: host cost of producing one consistency row
//! per rating method, plus a shape assertion that windows tighten with
//! size (the paper's central Table 1 observation).

use criterion::{criterion_group, criterion_main, Criterion};
use peak_core::consistency::consistency_rows;
use peak_sim::MachineSpec;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("consistency");
    group.sample_size(10);
    // One representative per method family.
    group.bench_function("cbr_swim", |b| {
        b.iter(|| {
            let w = peak_workloads::swim::SwimCalc3::new();
            std::hint::black_box(consistency_rows(&w, &MachineSpec::sparc_ii()))
        })
    });
    group.bench_function("mbr_mgrid", |b| {
        b.iter(|| {
            let w = peak_workloads::mgrid::MgridResid::new();
            std::hint::black_box(consistency_rows(&w, &MachineSpec::sparc_ii()))
        })
    });
    group.bench_function("rbr_mcf", |b| {
        b.iter(|| {
            let w = peak_workloads::mcf::McfPrimalBeaMpp::new();
            std::hint::black_box(consistency_rows(&w, &MachineSpec::sparc_ii()))
        })
    });
    group.finish();

    println!("\n=== Table 1 shape check (σ decreases with window size) ===");
    for w in [
        Box::new(peak_workloads::swim::SwimCalc3::new()) as Box<dyn peak_workloads::Workload>,
        Box::new(peak_workloads::mgrid::MgridResid::new()),
        Box::new(peak_workloads::mcf::McfPrimalBeaMpp::new()),
    ] {
        for row in consistency_rows(w.as_ref(), &MachineSpec::sparc_ii()) {
            let sd_first = row.cells.first().unwrap().2;
            let sd_last = row.cells.last().unwrap().2;
            println!(
                "  {:<8} {:<4} σ(w=10)={sd_first:6.2}  σ(w=160)={sd_last:6.2}",
                row.benchmark,
                row.method.name()
            );
            assert!(sd_last <= sd_first, "{}: window growth must tighten σ", row.benchmark);
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
