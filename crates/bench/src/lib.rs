//! # peak-bench — experiment harness regenerating every table and figure
//!
//! Binaries:
//! * `table1` — the rating-consistency experiment (paper Table 1);
//! * `figure7` — performance improvement and normalized tuning time
//!   (paper Figure 7 a–d);
//!
//! Criterion benches under `benches/` cover rating overheads, the RBR
//! basic-vs-improved ablation, and search-algorithm comparisons.

#![warn(missing_docs)]

use peak_core::consultant::Method;
use peak_core::TuneReport;
use peak_obs::Tracer;
use peak_sim::{MachineKind, MachineSpec};
use peak_util::{Json, ToJson};
use peak_workloads::{Dataset, Workload};

/// One Figure-7 cell: benchmark × machine × method × tuning dataset.
#[derive(Debug, Clone)]
pub struct Figure7Cell {
    /// The tuning report (improvement, search stats).
    pub report: TuneReport,
    /// Tuning time normalized to the WHL tuning time of the same
    /// benchmark/machine/dataset (Figure 7 c/d bars). Filled by the
    /// aggregation step.
    pub tuning_time_vs_whl: Option<f64>,
}

impl ToJson for Figure7Cell {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("report", self.report.to_json()),
            ("tuning_time_vs_whl", self.tuning_time_vs_whl.to_json()),
        ])
    }
}

/// Methods plotted for a benchmark in Figure 7: every method with a plan
/// (including over-budget CBR — MGRID_CBR is plotted to show the
/// pathology), plus the AVG and WHL baselines.
pub fn figure7_method_list(workload: &dyn Workload, spec: &MachineSpec) -> Vec<Method> {
    let c = peak_core::consult(workload, spec);
    let mut ms = Vec::new();
    if c.cbr.is_some() {
        ms.push(Method::Cbr);
    }
    if c.mbr.is_some() {
        ms.push(Method::Mbr);
    }
    ms.push(Method::Rbr);
    ms.push(Method::Avg);
    ms.push(Method::Whl);
    ms
}

/// Compute one Figure-7 cell.
pub fn figure7_cell(
    name: &str,
    kind: MachineKind,
    method: Method,
    tuned_on: Dataset,
) -> Figure7Cell {
    figure7_cell_traced(name, kind, method, tuned_on, Tracer::disabled())
}

/// [`figure7_cell`] with telemetry: tuning-loop spans and measurement
/// provenance go to `tracer`. The tracer is stamped with the cell's
/// benchmark/ts/machine/method/dataset context so trace consumers can
/// attribute every event without reconstructing the job layout.
pub fn figure7_cell_traced(
    name: &str,
    kind: MachineKind,
    method: Method,
    tuned_on: Dataset,
    tracer: Tracer,
) -> Figure7Cell {
    figure7_cell_pooled(name, kind, method, tuned_on, tracer, &peak_core::Pool::with_threads(1))
}

/// [`figure7_cell_traced`] with a job pool installed for candidate-frontier
/// pre-compilation. Warm-up is pure, so the cell's report and trace are
/// byte-identical at any pool size; the pool only moves compile work off
/// the rating path (and lets an otherwise-idle sibling worker help, via
/// the pool's shared helper budget).
pub fn figure7_cell_pooled(
    name: &str,
    kind: MachineKind,
    method: Method,
    tuned_on: Dataset,
    tracer: Tracer,
    pool: &peak_core::Pool,
) -> Figure7Cell {
    let workload = peak_workloads::workload_by_name(name).expect("known workload");
    let spec = MachineSpec::of(kind);
    let tracer = if tracer.enabled() {
        let ds = match tuned_on {
            Dataset::Train => "train",
            Dataset::Ref => "ref",
        };
        tracer.with_context(vec![
            ("benchmark".to_owned(), Json::Str(name.to_owned())),
            ("ts".to_owned(), Json::Str(workload.ts_name().to_owned())),
            ("machine".to_owned(), Json::Str(spec.kind.name().to_owned())),
            ("method".to_owned(), Json::Str(method.name().to_owned())),
            ("tuned_on".to_owned(), Json::Str(ds.to_owned())),
        ])
    } else {
        tracer
    };
    let report =
        peak_core::tune_traced_pooled(workload.as_ref(), &spec, method, tuned_on, tracer, pool);
    Figure7Cell { report, tuning_time_vs_whl: None }
}

/// Fill `tuning_time_vs_whl` within a group of cells sharing
/// benchmark/machine/dataset.
pub fn normalize_tuning_times(cells: &mut [Figure7Cell]) {
    let whl: std::collections::HashMap<(String, String, String), u64> = cells
        .iter()
        .filter(|c| c.report.method == Method::Whl)
        .map(|c| {
            (
                (
                    c.report.benchmark.clone(),
                    c.report.machine.clone(),
                    c.report.tuned_on.clone(),
                ),
                c.report.search.tuning_cycles,
            )
        })
        .collect();
    for c in cells.iter_mut() {
        let key = (
            c.report.benchmark.clone(),
            c.report.machine.clone(),
            c.report.tuned_on.clone(),
        );
        if let Some(&w) = whl.get(&key) {
            c.tuning_time_vs_whl = Some(c.report.search.tuning_cycles as f64 / w.max(1) as f64);
        }
    }
}

/// Pretty-print a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

/// Render a Table-1 style row string.
pub fn render_consistency_row(row: &peak_core::ConsistencyRow) -> String {
    let ctx = if row.context > 0 {
        format!("(Context {})", row.context)
    } else {
        String::new()
    };
    let cells: Vec<String> = row
        .cells
        .iter()
        .map(|(w, m, s)| format!("w={w}: {m:.2}({s:.2})"))
        .collect();
    format!(
        "{:<8} {:<18} {:<4} {:>8} | {}",
        row.benchmark,
        format!("{}{}", row.ts, ctx),
        row.method.name(),
        row.invocations,
        cells.join("  ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_lists_match_figure7_labels() {
        let spec = MachineSpec::sparc_ii();
        let mgrid = peak_workloads::workload_by_name("mgrid").unwrap();
        let ms = figure7_method_list(mgrid.as_ref(), &spec);
        assert!(ms.contains(&Method::Cbr), "MGRID_CBR is plotted (the pathology)");
        assert!(ms.contains(&Method::Mbr));
        assert_eq!(ms.last(), Some(&Method::Whl));
        let art = peak_workloads::workload_by_name("art").unwrap();
        let ms = figure7_method_list(art.as_ref(), &spec);
        assert!(!ms.contains(&Method::Cbr), "ART has no CBR plan");
    }

    #[test]
    fn normalization_uses_whl_denominator() {
        let mut cells = vec![
            fake_cell("X", "M", Method::Rbr, 100),
            fake_cell("X", "M", Method::Whl, 1000),
        ];
        normalize_tuning_times(&mut cells);
        assert_eq!(cells[0].tuning_time_vs_whl, Some(0.1));
        assert_eq!(cells[1].tuning_time_vs_whl, Some(1.0));
    }

    fn fake_cell(bench: &str, machine: &str, method: Method, cycles: u64) -> Figure7Cell {
        Figure7Cell {
            report: TuneReport {
                benchmark: bench.into(),
                ts: "ts".into(),
                machine: machine.into(),
                method,
                tuned_on: "train".into(),
                search: peak_core::SearchResult {
                    best: peak_opt::OptConfig::o3(),
                    disabled_flags: vec![],
                    method,
                    switches: 0,
                    ratings: 0,
                    tuning_cycles: cycles,
                    runs: 1,
                    invocations: 0,
                },
                baseline_cycles: 1,
                tuned_cycles: 1,
                improvement_pct: 0.0,
            },
            tuning_time_vs_whl: None,
        }
    }
}
