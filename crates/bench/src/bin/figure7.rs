//! Regenerate **Figure 7**: performance improvement by PEAK (a, b) and
//! tuning time normalized to the WHL approach (c, d), on both machine
//! models.
//!
//! ```text
//! cargo run --release -p peak-bench --bin figure7 -- [--machine sparc|p4|both] \
//!     [--bench swim|mgrid|art|equake] [--quick] [--json PATH] [--trace PATH]
//! ```
//!
//! `--quick` tunes on the train input only (the left bars); the full run
//! adds ref-input tuning (the right bars of each pair).
//!
//! `--trace PATH` writes a JSONL telemetry trace (tuning rounds, rating
//! outcomes, per-run simulator metrics) readable with the `peak-trace`
//! binary. Each parallel cell buffers its events; buffers are written in
//! job order so the trace is deterministic regardless of scheduling.

use peak_bench::{figure7_cell_pooled, figure7_method_list, normalize_tuning_times, Figure7Cell};
use peak_core::consultant::Method;
use peak_core::VersionCache;
use peak_obs::{BufferSink, JsonlSink, TraceSink, Tracer};
use peak_sim::{MachineKind, MachineSpec};
use peak_workloads::Dataset;
use std::io::Write;
use std::sync::Arc;

const BENCHMARKS: [&str; 4] = ["SWIM", "MGRID", "ART", "EQUAKE"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine = arg_value(&args, "--machine").unwrap_or_else(|| "both".into());
    let json_path = arg_value(&args, "--json");
    let only_bench = arg_value(&args, "--bench");
    let quick = args.iter().any(|a| a == "--quick");
    let kinds: Vec<MachineKind> = match machine.as_str() {
        "sparc" => vec![MachineKind::SparcII],
        "p4" | "pentium" | "pentium4" => vec![MachineKind::PentiumIV],
        "both" => vec![MachineKind::SparcII, MachineKind::PentiumIV],
        other => {
            eprintln!("error: unknown machine `{other}` (expected sparc, p4, or both)");
            std::process::exit(1);
        }
    };
    if let Some(b) = &only_bench {
        if !BENCHMARKS.iter().any(|n| n.eq_ignore_ascii_case(b)) {
            eprintln!(
                "error: unknown benchmark `{b}` (Figure 7 covers {})",
                BENCHMARKS.join(", ")
            );
            std::process::exit(1);
        }
    }
    let datasets: Vec<Dataset> =
        if quick { vec![Dataset::Train] } else { vec![Dataset::Train, Dataset::Ref] };
    // Build the cell list.
    let mut jobs: Vec<(String, MachineKind, Method, Dataset)> = Vec::new();
    for &kind in &kinds {
        let spec = MachineSpec::of(kind);
        for name in BENCHMARKS {
            if only_bench.as_deref().is_some_and(|b| !b.eq_ignore_ascii_case(name)) {
                continue;
            }
            let w = peak_workloads::workload_by_name(name).expect("benchmark");
            for m in figure7_method_list(w.as_ref(), &spec) {
                for &ds in &datasets {
                    jobs.push((name.to_string(), kind, m, ds));
                }
            }
        }
    }
    let trace_path = arg_value(&args, "--trace");
    let tracing = trace_path.is_some();
    let pool = peak_core::Pool::from_env();
    eprintln!("figure7: {} cells (pool: {} threads)", jobs.len(), pool.threads());
    // Parallel evaluation on the shared work-stealing pool; cells are
    // fully independent jobs and `Pool::run` returns results in job
    // order. With `--trace`, each cell buffers its events locally;
    // buffers are spliced into the trace file in job order after the
    // pool drains. Each cell also re-uses the pool (via its shared
    // helper budget) to pre-compile IE candidate frontiers.
    let cell_jobs: Vec<_> = jobs
        .iter()
        .map(|(name, kind, method, ds)| {
            let pool = pool.clone();
            move || {
                let t0 = std::time::Instant::now();
                let (tracer, sink) = if tracing {
                    let sink = Arc::new(BufferSink::new());
                    (Tracer::to_sink(sink.clone()), Some(sink))
                } else {
                    (Tracer::disabled(), None)
                };
                let cell = figure7_cell_pooled(name, *kind, *method, *ds, tracer, &pool);
                eprintln!(
                    "  {name:<7} {:<10} {:<4} {:<5}  {:+6.1}%  ({} ratings, {:.1}s)",
                    kind.name(),
                    method.name(),
                    cell.report.tuned_on,
                    cell.report.improvement_pct,
                    cell.report.search.ratings,
                    t0.elapsed().as_secs_f64(),
                );
                (cell, sink.map(|s| s.drain()).unwrap_or_default())
            }
        })
        .collect();
    let results: Vec<(Figure7Cell, Vec<String>)> = pool.run(cell_jobs);
    let mut cells = Vec::with_capacity(results.len());
    if let Some(path) = &trace_path {
        let sink = JsonlSink::create(std::path::Path::new(path)).expect("create trace file");
        for (_, lines) in &results {
            sink.append_lines(lines.iter());
        }
        sink.flush();
        eprintln!("trace: wrote {path}");
    }
    for (cell, _) in results {
        cells.push(cell);
    }
    // Compile-cache effectiveness across the whole run (stderr only:
    // stdout stays byte-stable across cache-layer changes).
    let vc = VersionCache::global();
    eprintln!("{}", vc.stats().render(vc.len()));
    normalize_tuning_times(&mut cells);
    // --- Figure 7 (a)/(b): improvement over -O3 ---
    for &kind in &kinds {
        println!();
        println!(
            "Figure 7 ({}) — performance improvement over -O3 on {} (measured on ref)",
            if kind == MachineKind::SparcII { "a" } else { "b" },
            MachineSpec::of(kind).kind.name()
        );
        print_improvements(&cells, kind, &datasets);
    }
    // --- Figure 7 (c)/(d): tuning time normalized to WHL ---
    for &kind in &kinds {
        println!();
        println!(
            "Figure 7 ({}) — tuning time normalized to WHL on {}",
            if kind == MachineKind::SparcII { "c" } else { "d" },
            MachineSpec::of(kind).kind.name()
        );
        print_tuning_times(&cells, kind, &datasets);
    }
    // --- Headline aggregates ---
    println!();
    summarize(&cells);
    if let Some(path) = json_path {
        let json = peak_util::to_string_pretty(&cells);
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .expect("write json");
        println!("wrote {path}");
    }
}

fn print_improvements(cells: &[Figure7Cell], kind: MachineKind, datasets: &[Dataset]) {
    let mname = MachineSpec::of(kind).kind.name();
    println!("{:<18} {}", "bar", datasets_header(datasets));
    for name in BENCHMARKS {
        for method in [Method::Cbr, Method::Mbr, Method::Rbr, Method::Avg, Method::Whl] {
            let vals: Vec<String> = datasets
                .iter()
                .map(|ds| {
                    cells
                        .iter()
                        .find(|c| {
                            c.report.benchmark == name
                                && c.report.machine == mname
                                && c.report.method == method
                                && c.report.tuned_on == ds_name(*ds)
                        })
                        .map(|c| format!("{:+7.1}%", c.report.improvement_pct))
                        .unwrap_or_else(|| "      —".into())
                })
                .collect();
            if vals.iter().any(|v| !v.contains('—')) {
                println!(
                    "  {:<16} {}",
                    format!("{}_{}", name.to_lowercase(), method.name()),
                    vals.join("  ")
                );
            }
        }
    }
}

fn print_tuning_times(cells: &[Figure7Cell], kind: MachineKind, datasets: &[Dataset]) {
    let mname = MachineSpec::of(kind).kind.name();
    println!("{:<18} {}", "bar", datasets_header(datasets));
    for name in BENCHMARKS {
        for method in [Method::Cbr, Method::Mbr, Method::Rbr, Method::Avg] {
            let vals: Vec<String> = datasets
                .iter()
                .map(|ds| {
                    cells
                        .iter()
                        .find(|c| {
                            c.report.benchmark == name
                                && c.report.machine == mname
                                && c.report.method == method
                                && c.report.tuned_on == ds_name(*ds)
                        })
                        .and_then(|c| c.tuning_time_vs_whl)
                        .map(|t| format!("{t:7.3}"))
                        .unwrap_or_else(|| "      —".into())
                })
                .collect();
            if vals.iter().any(|v| !v.contains('—')) {
                println!(
                    "  {:<16} {}",
                    format!("{}_{}", name.to_lowercase(), method.name()),
                    vals.join("  ")
                );
            }
        }
    }
}

fn summarize(cells: &[Figure7Cell]) {
    // Paper headline: "up to 178% performance improvements (26% on
    // average). … reduction in program tuning time of up to 96% (80% on
    // average)" — using the PEAK-suggested method per benchmark.
    let suggested: Vec<&Figure7Cell> = cells
        .iter()
        .filter(|c| {
            c.report.tuned_on == "train"
                && c.report.method != Method::Whl
                && c.report.method != Method::Avg
                && is_suggested(c)
        })
        .collect();
    if suggested.is_empty() {
        return;
    }
    let best = suggested
        .iter()
        .map(|c| c.report.improvement_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let avg = suggested.iter().map(|c| c.report.improvement_pct).sum::<f64>()
        / suggested.len() as f64;
    let reductions: Vec<f64> = suggested
        .iter()
        .filter_map(|c| c.tuning_time_vs_whl)
        .map(|t| (1.0 - t) * 100.0)
        .collect();
    let max_red = reductions.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let avg_red = reductions.iter().sum::<f64>() / reductions.len().max(1) as f64;
    println!("Headline (PEAK-suggested methods, tuned on train):");
    println!("  performance improvement: up to {best:+.0}%, average {avg:+.0}%  (paper: up to +178%, avg +26%)");
    println!("  tuning-time reduction vs WHL: up to {max_red:.0}%, average {avg_red:.0}%  (paper: up to 96%, avg 80%)");
}

/// The method the PEAK compiler chooses per benchmark (paper §5.2: "MBR
/// for MGRID, CBR for SWIM, CBR for EQUAKE, and RBR for ART").
fn is_suggested(c: &Figure7Cell) -> bool {
    matches!(
        (c.report.benchmark.as_str(), c.report.method),
        ("SWIM", Method::Cbr) | ("MGRID", Method::Mbr) | ("EQUAKE", Method::Cbr) | ("ART", Method::Rbr)
    )
}

fn ds_name(ds: Dataset) -> &'static str {
    match ds {
        Dataset::Train => "train",
        Dataset::Ref => "ref",
    }
}

fn datasets_header(datasets: &[Dataset]) -> String {
    datasets.iter().map(|d| format!("{:>8}", ds_name(*d))).collect::<Vec<_>>().join("  ")
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}
