//! Hot-path microbenchmark: how fast is one simulated TS invocation, and
//! how fast is one compile+prepare? Seeds the perf trajectory — every
//! executor or cache change reruns this and compares.
//!
//! ```text
//! cargo run --release -p peak-bench --bin hotpath \
//!     [-- --machine sparc|p4] [--bench NAME] [--json PATH] [--min-ms N] [--search]
//! ```
//!
//! Emits `BENCH_hotpath.json` (stable schema, one record per
//! workload×machine): `workload`, `machine`, `invocations_per_sec`,
//! `compiles_per_sec`, `cache_hit_rate`, plus the raw counts/durations
//! behind the rates. Rates are wall-clock and machine-dependent; the
//! *schema* and the cache-hit-rate are what CI pins down.
//!
//! `--search` additionally runs the scheduler scaling benchmark and
//! emits `BENCH_search.json`: the full Table-1 sweep and a capped
//! parallel Iterative-Elimination search, each at 1, 2, and the default
//! thread count, reporting wall seconds per leg, the default-vs-1
//! speedup, and whether the outputs were byte-identical across thread
//! counts (they must be — the pool is deterministic by construction).
//!
//! `--obs` runs the metrics-overhead gate and emits `BENCH_obs.json`:
//! interleaved metrics-on/metrics-off slices of the same fixed
//! invocation workload, medians of each side, and the on-vs-off
//! overhead percentage. Exits non-zero when the overhead exceeds the
//! gate (default 2%) — instrumentation that taxes the hot path gets
//! caught in CI, not in production.
//!
//! `--tier {interp,predecoded,jit}` forces the execution tier for the
//! invocation benchmark (overriding `PEAK_TIER`), and `--jit` runs the
//! tier A/B comparison: interleaved fixed-work slices of all three
//! tiers per workload×machine pair, medians, and the jit-vs-predecoded
//! speedup, written to `BENCH_jit.json`. Exits non-zero when the jit
//! tier is *slower* than predecoded on more than 25% of pairs (the CI
//! bench-smoke gate; tune with `--jit-gate-pct`).
//!
//! `--strategies` runs the search-strategy shoot-out and emits
//! `BENCH_strategies.json`: per workload×machine pair, serial-reference
//! IE runs first (unlimited) and its unique-configuration spend becomes
//! the pair's `CompilationBudget`; GA, phase-clustered IE, and biased
//! random search then run capped at that budget. Winner quality is the
//! train-input production speedup over -O3 (the ref-input speedup and a
//! shared winner re-rating are reported alongside). Every strategy is
//! replayed at 1, 2, and the default thread count and must be
//! bit-identical across them. The quality gate is two-level: per pair,
//! GA and clustered IE must each stay within a catastrophe band of
//! random's quality (default 3%, `--strategies-tolerance-pct` — at
//! one-frontier budgets scatter sampling legitimately wins single pairs
//! by a couple percent, but a structured strategy losing *big* anywhere
//! is a bug); across the grid, each must be geomean non-inferior to
//! random within a noise band (default 0.5%,
//! `--strategies-agg-tolerance-pct`). Exits non-zero on any gate or
//! thread-identity failure.

use peak_core::{RunHarness, VersionCache};
use peak_opt::{Flag, OptConfig, ALL_FLAGS};
use peak_sim::{ExecOptions, ExecTier, MachineKind, MachineSpec, PreparedVersion};
use peak_util::Json;
use peak_workloads::{Dataset, Workload};
use std::io::Write;
use std::time::Instant;

/// Distinct configs used for the compile and cache measurements: -O3 plus
/// one-flag-off neighbours — the request stream of an Iterative
/// Elimination first round.
const NEIGHBOUR_FLAGS: usize = 7;

struct Record {
    workload: &'static str,
    machine: &'static str,
    invocations: u64,
    invoke_secs: f64,
    compiles: u64,
    compile_secs: f64,
    cache_hits: u64,
    cache_lookups: u64,
}

impl Record {
    fn invocations_per_sec(&self) -> f64 {
        self.invocations as f64 / self.invoke_secs.max(1e-9)
    }
    fn compiles_per_sec(&self) -> f64 {
        self.compiles as f64 / self.compile_secs.max(1e-9)
    }
    fn cache_hit_rate(&self) -> f64 {
        self.cache_hits as f64 / (self.cache_lookups.max(1)) as f64
    }
}

fn neighbour_configs() -> Vec<OptConfig> {
    let mut cfgs = vec![OptConfig::o3()];
    cfgs.extend(
        ALL_FLAGS[..NEIGHBOUR_FLAGS]
            .iter()
            .map(|&f: &Flag| OptConfig::o3().without(f)),
    );
    cfgs
}

/// Time `min_ms` worth of TS invocations of the -O3 version (fresh
/// harness per exhausted invocation budget — cache/predictor state warms
/// exactly like a tuning run's).
fn time_invocations(
    w: &dyn Workload,
    spec: &MachineSpec,
    min_ms: u64,
    tier: ExecTier,
) -> (u64, f64) {
    let pv = PreparedVersion::prepare(
        peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()),
        spec,
    );
    let opts = ExecOptions::default();
    // Warm-up run so one-time costs (lazy allocs, page faults, the jit
    // tier's lowering) don't pollute the first timed slice.
    {
        let mut h = RunHarness::new(w, Dataset::Train, spec, 1);
        h.set_tier(tier);
        for _ in 0..8 {
            let Some(args) = h.next_args() else { break };
            let _ = h.execute(&pv, &args, &opts);
        }
    }
    let budget = std::time::Duration::from_millis(min_ms);
    let start = Instant::now();
    let mut n = 0u64;
    let mut seed = 2u64;
    'outer: loop {
        let mut h = RunHarness::new(w, Dataset::Train, spec, seed);
        h.set_tier(tier);
        seed += 1;
        while let Some(args) = h.next_args() {
            let _ = h.execute(&pv, &args, &opts);
            n += 1;
            if n.is_multiple_of(64) && start.elapsed() >= budget {
                break 'outer;
            }
        }
    }
    (n, start.elapsed().as_secs_f64())
}

/// Time uncached compile+prepare over the neighbour configs, repeating
/// the sweep until `min_ms` elapsed.
fn time_compiles(w: &dyn Workload, spec: &MachineSpec, min_ms: u64) -> (u64, f64) {
    let cfgs = neighbour_configs();
    let budget = std::time::Duration::from_millis(min_ms);
    let start = Instant::now();
    let mut n = 0u64;
    loop {
        for cfg in &cfgs {
            let pv = PreparedVersion::prepare(peak_opt::optimize(w.program(), w.ts(), cfg), spec);
            std::hint::black_box(&pv);
            n += 1;
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    (n, start.elapsed().as_secs_f64())
}

/// Replay an Iterative-Elimination-shaped request stream (two rounds over
/// the neighbour configs) against a fresh cache and report its hit/miss
/// counters. Deterministic: round one misses, round two hits.
fn cache_profile(w: &dyn Workload, spec: &MachineSpec) -> (u64, u64) {
    let cache = VersionCache::new();
    for _round in 0..2 {
        for cfg in neighbour_configs() {
            let _ = cache.prepare_workload(w, spec, cfg);
        }
    }
    let s = cache.stats();
    (s.hits, s.hits + s.misses)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine = arg_value(&args, "--machine");
    let only = arg_value(&args, "--bench");
    let json_path = arg_value(&args, "--json").unwrap_or_else(|| "BENCH_hotpath.json".into());
    let min_ms: u64 = arg_value(&args, "--min-ms").map_or(300, |v| v.parse().expect("--min-ms"));
    let tier = arg_value(&args, "--tier").map_or_else(ExecTier::from_env, |t| {
        ExecTier::parse(&t).unwrap_or_else(|| {
            eprintln!("error: unknown tier `{t}` (expected interp, predecoded, or jit)");
            std::process::exit(1);
        })
    });
    let kinds: Vec<MachineKind> = match machine.as_deref() {
        None => vec![MachineKind::SparcII, MachineKind::PentiumIV],
        Some("sparc") => vec![MachineKind::SparcII],
        Some("p4" | "pentium" | "pentium4") => vec![MachineKind::PentiumIV],
        Some(other) => {
            eprintln!("error: unknown machine `{other}` (expected sparc or p4)");
            std::process::exit(1);
        }
    };
    if let Some(b) = &only {
        if peak_workloads::workload_by_name(b).is_none() {
            eprintln!("error: unknown benchmark `{b}`");
            std::process::exit(1);
        }
    }
    let workloads: Vec<_> = peak_workloads::all_workloads()
        .into_iter()
        .filter(|w| only.as_deref().is_none_or(|o| w.name().eq_ignore_ascii_case(o)))
        .collect();
    println!(
        "hotpath — invocations/sec ({tier} tier) and compiles/sec per workload×machine"
    );
    println!(
        "{:<10} {:>9} | {:>16} {:>14} {:>14}",
        "workload", "machine", "invocations/s", "compiles/s", "cache hit rate"
    );
    let mut records = Vec::new();
    for w in &workloads {
        for &kind in &kinds {
            let spec = MachineSpec::of(kind);
            let (invocations, invoke_secs) = time_invocations(w.as_ref(), &spec, min_ms, tier);
            let (compiles, compile_secs) = time_compiles(w.as_ref(), &spec, min_ms.min(150));
            let (cache_hits, cache_lookups) = cache_profile(w.as_ref(), &spec);
            let r = Record {
                workload: w.name(),
                machine: kind.name(),
                invocations,
                invoke_secs,
                compiles,
                compile_secs,
                cache_hits,
                cache_lookups,
            };
            println!(
                "{:<10} {:>9} | {:>16.0} {:>14.0} {:>14.2}",
                r.workload,
                r.machine,
                r.invocations_per_sec(),
                r.compiles_per_sec(),
                r.cache_hit_rate()
            );
            records.push(r);
        }
    }
    let json = Json::Arr(
        records
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("workload", Json::Str(r.workload.to_owned())),
                    ("machine", Json::Str(r.machine.to_owned())),
                    ("tier", Json::Str(tier.name().to_owned())),
                    ("invocations_per_sec", Json::F(r.invocations_per_sec())),
                    ("compiles_per_sec", Json::F(r.compiles_per_sec())),
                    ("cache_hit_rate", Json::F(r.cache_hit_rate())),
                    ("invocations", Json::U(r.invocations)),
                    ("invoke_secs", Json::F(r.invoke_secs)),
                    ("compiles", Json::U(r.compiles)),
                    ("compile_secs", Json::F(r.compile_secs)),
                ])
            })
            .collect(),
    );
    std::fs::File::create(&json_path)
        .and_then(|mut f| f.write_all((json.pretty() + "\n").as_bytes()))
        .expect("write json");
    println!();
    println!("wrote {json_path}");
    if args.iter().any(|a| a == "--search") {
        let search_json =
            arg_value(&args, "--search-json").unwrap_or_else(|| "BENCH_search.json".into());
        search_bench(&search_json);
    }
    if args.iter().any(|a| a == "--obs") {
        let obs_json = arg_value(&args, "--obs-json").unwrap_or_else(|| "BENCH_obs.json".into());
        let gate_pct: f64 = arg_value(&args, "--obs-gate-pct")
            .map_or(2.0, |v| v.parse().expect("--obs-gate-pct"));
        if !obs_bench(&obs_json, gate_pct, min_ms) {
            std::process::exit(1);
        }
    }
    if args.iter().any(|a| a == "--jit") {
        let jit_json = arg_value(&args, "--jit-json").unwrap_or_else(|| "BENCH_jit.json".into());
        let gate_pct: f64 = arg_value(&args, "--jit-gate-pct")
            .map_or(25.0, |v| v.parse().expect("--jit-gate-pct"));
        if !jit_bench(&jit_json, gate_pct, min_ms, &workloads, &kinds) {
            std::process::exit(1);
        }
    }
    if args.iter().any(|a| a == "--strategies") {
        let s_json = arg_value(&args, "--strategies-json")
            .unwrap_or_else(|| "BENCH_strategies.json".into());
        let tol_pct: f64 = arg_value(&args, "--strategies-tolerance-pct")
            .map_or(3.0, |v| v.parse().expect("--strategies-tolerance-pct"));
        let agg_tol_pct: f64 = arg_value(&args, "--strategies-agg-tolerance-pct")
            .map_or(0.5, |v| v.parse().expect("--strategies-agg-tolerance-pct"));
        if !strategies_bench(&s_json, tol_pct, agg_tol_pct, &workloads, &kinds) {
            std::process::exit(1);
        }
    }
    if args.iter().any(|a| a == "--costmodel") {
        let cm_json =
            arg_value(&args, "--costmodel-json").unwrap_or_else(|| "BENCH_costmodel.json".into());
        let tol_pct: f64 = arg_value(&args, "--costmodel-tolerance-pct")
            .map_or(25.0, |v| v.parse().expect("--costmodel-tolerance-pct"));
        let bench_tier = if tier == ExecTier::Predecoded { ExecTier::Jit } else { tier };
        if !costmodel_bench(&cm_json, tol_pct, min_ms, &workloads, &kinds, bench_tier) {
            std::process::exit(1);
        }
    }
}

/// The cost-model no-regression gate behind `--costmodel`. Per
/// workload×machine pair: interleaved fixed-work slices of the
/// predecoded tier and the target tier (`--tier`, default jit), medians,
/// and the tier-vs-predecoded speedup *ratio*. The gate compares the
/// median ratio against the committed `BENCH_costmodel.json` baseline
/// (read before overwriting): ratios divide out host speed, so the
/// baseline is portable across CI machines where absolute wall-clock is
/// not. A run regresses when its median ratio falls more than
/// `tolerance_pct` percent below the baseline's. First run (no
/// baseline) records and passes.
fn costmodel_bench(
    json_path: &str,
    tolerance_pct: f64,
    min_ms: u64,
    workloads: &[Box<dyn Workload>],
    kinds: &[MachineKind],
    tier: ExecTier,
) -> bool {
    const ROUNDS: usize = 5;
    let baseline_ratio: Option<f64> = std::fs::read_to_string(json_path)
        .ok()
        .and_then(|t| peak_util::from_str(&t).ok())
        .and_then(|j| j.get("median_speedup_vs_predecoded").and_then(Json::as_f64));
    println!();
    println!(
        "cost-model gate — {} tier vs predecoded, {ROUNDS} interleaved rounds per pair",
        tier.name()
    );
    println!(
        "{:<10} {:>9} | {:>13} {:>13} {:>9}",
        "workload", "machine", "predecoded/s", "tier/s", "speedup"
    );
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for w in workloads {
        for &kind in kinds {
            let spec = MachineSpec::of(kind);
            let pv = PreparedVersion::prepare(
                peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()),
                &spec,
            );
            // Warm both paths (jit lowering, arg-stream materialization)
            // and calibrate the slice on the predecoded tier.
            let _ = timed_fixed_invocations(w.as_ref(), &spec, &pv, 64, tier);
            let warm = timed_fixed_invocations(w.as_ref(), &spec, &pv, 512, ExecTier::Predecoded);
            let rate = 512.0 / warm.max(1e-9);
            let slice =
                ((rate * (min_ms as f64 / 1000.0) / ROUNDS as f64) as u64).clamp(256, 1 << 20);
            let mut pre_secs = Vec::with_capacity(ROUNDS);
            let mut tier_secs = Vec::with_capacity(ROUNDS);
            for round in 0..ROUNDS {
                // Alternate order so drift cannot favour one side.
                let tier_first = round % 2 == 1;
                for leg in 0..2 {
                    if (leg == 0) == tier_first {
                        tier_secs.push(timed_fixed_invocations(
                            w.as_ref(),
                            &spec,
                            &pv,
                            slice,
                            tier,
                        ));
                    } else {
                        pre_secs.push(timed_fixed_invocations(
                            w.as_ref(),
                            &spec,
                            &pv,
                            slice,
                            ExecTier::Predecoded,
                        ));
                    }
                }
            }
            let pre = slice as f64 / median(&pre_secs).max(1e-9);
            let fast = slice as f64 / median(&tier_secs).max(1e-9);
            let ratio = fast / pre.max(1e-9);
            ratios.push(ratio);
            println!(
                "{:<10} {:>9} | {:>13.0} {:>13.0} {:>8.2}x",
                w.name(),
                kind.name(),
                pre,
                fast,
                ratio
            );
            rows.push(Json::obj(vec![
                ("workload", Json::Str(w.name().to_owned())),
                ("machine", Json::Str(kind.name().to_owned())),
                ("invocations_per_slice", Json::U(slice)),
                ("rounds", Json::U(ROUNDS as u64)),
                ("predecoded_per_sec", Json::F(pre)),
                ("tier_per_sec", Json::F(fast)),
                ("speedup_vs_predecoded", Json::F(ratio)),
            ]));
        }
    }
    let med_ratio = median(&ratios);
    let (pass, regression_pct) = match baseline_ratio {
        Some(base) if base > 0.0 => {
            let reg = (base - med_ratio) / base * 100.0;
            (reg <= tolerance_pct, reg)
        }
        _ => (true, 0.0),
    };
    let doc = Json::obj(vec![
        ("tier", Json::Str(tier.name().to_owned())),
        ("pairs", Json::U(rows.len() as u64)),
        ("median_speedup_vs_predecoded", Json::F(med_ratio)),
        (
            "baseline_median_speedup",
            baseline_ratio.map_or(Json::Null, Json::F),
        ),
        ("regression_pct", Json::F(regression_pct)),
        ("tolerance_pct", Json::F(tolerance_pct)),
        ("pass", Json::Bool(pass)),
        ("records", Json::Arr(rows)),
    ]);
    std::fs::File::create(json_path)
        .and_then(|mut f| f.write_all((doc.pretty() + "\n").as_bytes()))
        .expect("write costmodel json");
    println!();
    match baseline_ratio {
        Some(base) => println!(
            "cost-model gate — median {} speedup {med_ratio:.2}x vs baseline {base:.2}x \
             ({regression_pct:+.1}% regression, tolerance {tolerance_pct}%)",
            tier.name()
        ),
        None => println!(
            "cost-model gate — median {} speedup {med_ratio:.2}x (no baseline; recorded)",
            tier.name()
        ),
    }
    println!("wrote {json_path}");
    if !pass {
        eprintln!(
            "error: cost-model speedup regressed {regression_pct:.1}% vs baseline \
             (tolerance {tolerance_pct}%)"
        );
    }
    pass
}

/// The tier A/B comparison behind `--jit`. For every workload×machine
/// pair: interleaved fixed-work slices of the three execution tiers
/// (rotating tier order per round cancels thermal/frequency drift),
/// medians per tier, and the jit-vs-predecoded speedup. Writes
/// `json_path` and returns whether the fraction of pairs where jit is
/// *slower* than predecoded stayed at or under `gate_pct`.
fn jit_bench(
    json_path: &str,
    gate_pct: f64,
    min_ms: u64,
    workloads: &[Box<dyn Workload>],
    kinds: &[MachineKind],
) -> bool {
    const ROUNDS: usize = 5;
    const TIERS: [ExecTier; 3] = [ExecTier::Interp, ExecTier::Predecoded, ExecTier::Jit];
    println!();
    println!("jit tier A/B — {ROUNDS} interleaved rounds per workload×machine");
    println!(
        "{:<10} {:>9} | {:>13} {:>13} {:>13} {:>9}",
        "workload", "machine", "interp/s", "predecoded/s", "jit/s", "jit/pre"
    );
    let mut rows = Vec::new();
    let mut slower = 0usize;
    let mut fast5 = 0usize;
    for w in workloads {
        for &kind in kinds {
            let spec = MachineSpec::of(kind);
            let pv = PreparedVersion::prepare(
                peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()),
                &spec,
            );
            // Calibrate the slice on the predecoded tier so each
            // tier-slice runs roughly min_ms/ROUNDS (also warms the
            // jit lowering before any timed slice).
            let _ = timed_fixed_invocations(w.as_ref(), &spec, &pv, 64, ExecTier::Jit);
            let warm = timed_fixed_invocations(w.as_ref(), &spec, &pv, 512, ExecTier::Predecoded);
            let rate = 512.0 / warm.max(1e-9);
            let slice =
                ((rate * (min_ms as f64 / 1000.0) / ROUNDS as f64) as u64).clamp(256, 1 << 20);
            let mut secs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            for round in 0..ROUNDS {
                for k in 0..TIERS.len() {
                    // Rotate which tier goes first each round.
                    let ti = (round + k) % TIERS.len();
                    secs[ti].push(timed_fixed_invocations(
                        w.as_ref(),
                        &spec,
                        &pv,
                        slice,
                        TIERS[ti],
                    ));
                }
            }
            let rate_of = |i: usize| slice as f64 / median(&secs[i]).max(1e-9);
            let (interp, pre, jit) = (rate_of(0), rate_of(1), rate_of(2));
            let speedup = jit / pre.max(1e-9);
            if speedup < 1.0 {
                slower += 1;
            }
            if speedup >= 5.0 {
                fast5 += 1;
            }
            println!(
                "{:<10} {:>9} | {:>13.0} {:>13.0} {:>13.0} {:>8.2}x",
                w.name(),
                kind.name(),
                interp,
                pre,
                jit,
                speedup
            );
            rows.push(Json::obj(vec![
                ("workload", Json::Str(w.name().to_owned())),
                ("machine", Json::Str(kind.name().to_owned())),
                ("invocations_per_slice", Json::U(slice)),
                ("rounds", Json::U(ROUNDS as u64)),
                ("interp_per_sec", Json::F(interp)),
                ("predecoded_per_sec", Json::F(pre)),
                ("jit_per_sec", Json::F(jit)),
                ("jit_speedup_vs_predecoded", Json::F(speedup)),
                ("interp_slowdown_vs_predecoded", Json::F(pre / interp.max(1e-9))),
            ]));
        }
    }
    let pairs = rows.len().max(1);
    let slower_pct = slower as f64 / pairs as f64 * 100.0;
    let pass = slower_pct <= gate_pct;
    let doc = Json::obj(vec![
        ("pairs", Json::U(pairs as u64)),
        ("jit_slower_pairs", Json::U(slower as u64)),
        ("jit_slower_pct", Json::F(slower_pct)),
        ("jit_5x_or_better_pairs", Json::U(fast5 as u64)),
        ("gate_pct", Json::F(gate_pct)),
        ("pass", Json::Bool(pass)),
        ("records", Json::Arr(rows)),
    ]);
    std::fs::File::create(json_path)
        .and_then(|mut f| f.write_all((doc.pretty() + "\n").as_bytes()))
        .expect("write jit json");
    println!();
    println!(
        "jit gate — {slower}/{pairs} pairs slower than predecoded ({slower_pct:.0}%, \
         gate {gate_pct}%); {fast5}/{pairs} pairs at ≥5x"
    );
    println!("wrote {json_path}");
    if !pass {
        eprintln!(
            "error: jit tier slower than predecoded on {slower_pct:.0}% of pairs \
             (gate {gate_pct}%)"
        );
    }
    pass
}

/// The search-strategy shoot-out behind `--strategies`. Per
/// workload×machine pair: the serial-reference IE search runs first with
/// no cap, and its unique-configuration spend becomes the pair's
/// `CompilationBudget`; GA, phase-clustered IE, and biased random search
/// then run capped at exactly that budget, so every strategy pays for
/// the same number of distinct configurations. Quality is the
/// train-input production speedup over -O3; the ref-input speedup (the
/// Figure 7 generalization framing) and a shared re-rating of all four
/// winners in one frontier (the searches' own objective under identical
/// windows) ride along in the artifact. Every strategy replays at 1, 2,
/// and the default thread count; the runs must be bit-identical — the
/// simulator is deterministic, so any divergence is a seeding or
/// merge-order bug, not noise. The quality gate is two-level. Per pair,
/// GA and clustered IE must each stay within `tolerance_pct` of random's
/// quality — a catastrophe guard: no-free-lunch means scatter sampling
/// legitimately wins individual pairs by a couple percent at
/// one-frontier budgets, but a structured strategy losing big anywhere
/// is a real search bug. Across the grid, each must be geomean
/// non-inferior to random within `agg_tolerance_pct` — random may win
/// pairs, it must not win the war.
fn strategies_bench(
    json_path: &str,
    tolerance_pct: f64,
    agg_tolerance_pct: f64,
    workloads: &[Box<dyn Workload>],
    kinds: &[MachineKind],
) -> bool {
    use peak_core::consultant::Method;
    use peak_core::{
        production_time, search_with_strategy_spent, strategy_seed, Pool, SearchResult,
        StrategyKind, TuningSetup,
    };

    let default_threads = peak_core::default_threads();
    let mut threads: Vec<usize> = Vec::new();
    for k in [1, 2, default_threads] {
        if !threads.contains(&k) {
            threads.push(k);
        }
    }
    println!();
    println!(
        "strategy shoot-out — GA / clustered IE / random at IE's budget, threads {threads:?}"
    );
    println!(
        "{:<10} {:>9} {:>7} | {:>8} {:>8} {:>9} {:>8}",
        "workload", "machine", "budget", "ie", "ga", "clustered", "random"
    );
    let mut rows = Vec::new();
    let mut quality_failures = 0usize;
    let mut identity_failures = 0usize;
    // Σ ln(q_strategy / q_random) across pairs — exp(mean) is the
    // geomean quality ratio the aggregate gate checks.
    let mut log_ga = 0.0f64;
    let mut log_cl = 0.0f64;
    for w in workloads {
        for &kind in kinds {
            let spec = MachineSpec::of(kind);
            let seed = strategy_seed(w.name(), kind.name());
            // One strategy leg, replayed across the thread matrix; the
            // 1-thread run is the reference, and any divergence at 2 or
            // the default count fails the identity gate. The warm global
            // version cache makes the replays nearly free — the budget
            // charges unique configurations, not compiles, so warmth
            // cannot change any result.
            let run_legs =
                |sk: StrategyKind, budget: Option<usize>| -> (SearchResult, usize, bool) {
                    let mut reference: Option<(SearchResult, usize)> = None;
                    let mut identical = true;
                    for &t in &threads {
                        let pool = Pool::with_threads(t);
                        let mut setup =
                            TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
                        let (r, s) = search_with_strategy_spent(
                            &mut setup, &pool, Method::Cbr, sk, budget, seed,
                        );
                        match &reference {
                            None => reference = Some((r, s)),
                            Some((r0, s0)) => {
                                identical &= r.best == r0.best
                                    && r.disabled_flags == r0.disabled_flags
                                    && r.ratings == r0.ratings
                                    && r.switches == r0.switches
                                    && s == *s0;
                            }
                        }
                    }
                    let (r, s) = reference.expect("at least one thread leg");
                    (r, s, identical)
                };
            let (ie, ie_spent, ie_id) = run_legs(StrategyKind::Ie, None);
            let budget = Some(ie_spent);
            let (ga, ga_spent, ga_id) = run_legs(StrategyKind::Ga, budget);
            let (cl, cl_spent, cl_id) = run_legs(StrategyKind::ClusteredIe, budget);
            let (rnd, rnd_spent, rnd_id) = run_legs(StrategyKind::Random, budget);
            let identical = ie_id && ga_id && cl_id && rnd_id;
            if !identical {
                identity_failures += 1;
            }
            // Quality: production-time speedup over -O3 on the train
            // input (the tuning objective's ground truth), with the
            // ref-input speedup and a shared winner re-rating reported
            // alongside. The per-pair gate tolerates `tolerance_pct` as
            // a catastrophe band: the searches pick winners by windowed
            // TS ratings whose round-to-round reproducibility is ~1%,
            // and at one-frontier budgets random's scatter sampling can
            // legitimately land a multi-flag combination no structured
            // search at the same budget would rate — so single-pair
            // losses of a couple percent are expected, and the per-pair
            // gate only catches a strategy losing by a margin a user
            // would feel. Systematic inferiority is the aggregate
            // geomean gate's job.
            let o3_train = production_time(w.as_ref(), &spec, OptConfig::o3(), Dataset::Train);
            let o3_ref = production_time(w.as_ref(), &spec, OptConfig::o3(), Dataset::Ref);
            let quality = |r: &SearchResult, ds: Dataset, o3: u64| {
                o3 as f64 / (production_time(w.as_ref(), &spec, r.best, ds) as f64).max(1.0)
            };
            let train_q =
                |r: &SearchResult| quality(r, Dataset::Train, o3_train);
            let ref_q = |r: &SearchResult| quality(r, Dataset::Ref, o3_ref);
            let (q_ie, q_ga, q_cl, q_rnd) =
                (train_q(&ie), train_q(&ga), train_q(&cl), train_q(&rnd));
            let winners = [ie.best, ga.best, cl.best, rnd.best];
            let rated: Vec<f64> = {
                let mut setup = TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
                peak_core::rate(&mut setup, Method::Cbr, OptConfig::o3(), &winners)
                    .map(|o| o.improvements)
                    .unwrap_or_else(|| vec![1.0; winners.len()])
            };
            let (ri_ga, ri_cl, ri_rnd) = (rated[1], rated[2], rated[3]);
            let floor = q_rnd * (1.0 - tolerance_pct / 100.0);
            let quality_ok = q_ga >= floor && q_cl >= floor;
            if !quality_ok {
                quality_failures += 1;
            }
            log_ga += (q_ga / q_rnd).ln();
            log_cl += (q_cl / q_rnd).ln();
            println!(
                "{:<10} {:>9} {:>7} | {:>8.4} {:>8.4} {:>9.4} {:>8.4}{}",
                w.name(),
                kind.name(),
                ie_spent,
                q_ie,
                q_ga,
                q_cl,
                q_rnd,
                if quality_ok && identical { "" } else { "  FAIL" }
            );
            let strat_json = |name: &str, r: &SearchResult, spent: usize, q: f64, ri: f64| {
                Json::obj(vec![
                    ("strategy", Json::Str(name.to_owned())),
                    ("train_quality_vs_o3", Json::F(q)),
                    ("ref_quality_vs_o3", Json::F(ref_q(r))),
                    ("rerated_improvement", Json::F(ri)),
                    ("budget_spent", Json::U(spent as u64)),
                    ("ratings", Json::U(r.ratings as u64)),
                    (
                        "disabled_flags",
                        Json::Arr(
                            r.disabled_flags.iter().map(|f| Json::Str(f.clone())).collect(),
                        ),
                    ),
                ])
            };
            rows.push(Json::obj(vec![
                ("workload", Json::Str(w.name().to_owned())),
                ("machine", Json::Str(kind.name().to_owned())),
                ("budget", Json::U(ie_spent as u64)),
                ("thread_identical", Json::Bool(identical)),
                ("quality_gate_ok", Json::Bool(quality_ok)),
                (
                    "strategies",
                    Json::Arr(vec![
                        strat_json("ie", &ie, ie_spent, q_ie, rated[0]),
                        strat_json("ga", &ga, ga_spent, q_ga, ri_ga),
                        strat_json("clustered", &cl, cl_spent, q_cl, ri_cl),
                        strat_json("random", &rnd, rnd_spent, q_rnd, ri_rnd),
                    ]),
                ),
            ]));
        }
    }
    let pairs = rows.len();
    // Aggregate gate: geomean quality ratio vs random across the grid.
    let gm_ga = (log_ga / (pairs.max(1)) as f64).exp();
    let gm_cl = (log_cl / (pairs.max(1)) as f64).exp();
    let agg_floor = 1.0 - agg_tolerance_pct / 100.0;
    let aggregate_ok = gm_ga >= agg_floor && gm_cl >= agg_floor;
    let pass = quality_failures == 0 && identity_failures == 0 && aggregate_ok;
    let doc = Json::obj(vec![
        ("pairs", Json::U(pairs as u64)),
        (
            "threads",
            Json::Arr(threads.iter().map(|&t| Json::U(t as u64)).collect()),
        ),
        ("tolerance_pct", Json::F(tolerance_pct)),
        ("agg_tolerance_pct", Json::F(agg_tolerance_pct)),
        (
            "geomean_vs_random",
            Json::obj(vec![("ga", Json::F(gm_ga)), ("clustered", Json::F(gm_cl))]),
        ),
        ("aggregate_gate_ok", Json::Bool(aggregate_ok)),
        ("quality_gate_failures", Json::U(quality_failures as u64)),
        ("thread_identity_failures", Json::U(identity_failures as u64)),
        ("pass", Json::Bool(pass)),
        ("records", Json::Arr(rows)),
    ]);
    std::fs::File::create(json_path)
        .and_then(|mut f| f.write_all((doc.pretty() + "\n").as_bytes()))
        .expect("write strategies json");
    println!();
    println!(
        "strategy gate — {pairs} pairs: {quality_failures} quality failures, \
         {identity_failures} thread-identity failures; \
         geomean vs random: ga {gm_ga:.4}, clustered {gm_cl:.4} \
         (floor {agg_floor:.4}{})",
        if aggregate_ok { "" } else { ", FAIL" }
    );
    println!("wrote {json_path}");
    if !pass {
        eprintln!(
            "error: strategy shoot-out failed ({quality_failures} quality, \
             {identity_failures} identity, aggregate_ok {aggregate_ok})"
        );
    }
    pass
}

/// Run exactly `count` TS invocations of `pv` and return wall seconds —
/// the fixed-work slice both sides of the A/B comparison share.
fn timed_fixed_invocations(
    w: &dyn Workload,
    spec: &MachineSpec,
    pv: &PreparedVersion,
    count: u64,
    tier: ExecTier,
) -> f64 {
    let opts = ExecOptions::default();
    let mut n = 0u64;
    let mut seed = 7u64;
    let start = Instant::now();
    'outer: loop {
        let mut h = RunHarness::new(w, Dataset::Train, spec, seed);
        h.set_tier(tier);
        seed += 1;
        while let Some(args) = h.next_args() {
            let _ = h.execute(pv, &args, &opts);
            n += 1;
            if n >= count {
                break 'outer;
            }
        }
    }
    start.elapsed().as_secs_f64()
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// The metrics-overhead gate behind `--obs`. Interleaves metrics-on and
/// metrics-off slices of the same fixed invocation count (interleaving
/// cancels thermal/frequency drift; medians shrug off outlier slices),
/// writes `json_path`, and returns whether the median on-vs-off overhead
/// stayed at or under `gate_pct`.
fn obs_bench(json_path: &str, gate_pct: f64, min_ms: u64) -> bool {
    use peak_obs::metrics;

    const PAIRS: usize = 9;
    let w = peak_workloads::workload_by_name("swim").expect("swim workload");
    let spec = MachineSpec::sparc_ii();
    let pv = PreparedVersion::prepare(
        peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3()),
        &spec,
    );
    // Calibrate the slice size so each of the 2×PAIRS slices runs for
    // roughly min_ms/PAIRS — enough work that timer granularity is noise.
    let warm_secs = timed_fixed_invocations(w.as_ref(), &spec, &pv, 4096, ExecTier::Predecoded);
    let rate = 4096.0 / warm_secs.max(1e-9);
    let slice = ((rate * (min_ms as f64 / 1000.0) / PAIRS as f64) as u64).max(4096);
    let restore = metrics::enabled();
    let mut on = Vec::with_capacity(PAIRS);
    let mut off = Vec::with_capacity(PAIRS);
    for pair in 0..PAIRS {
        // Alternate which side goes first so slow-start/thermal drift
        // within a pair cannot systematically favour one side.
        let order = if pair % 2 == 0 { [false, true] } else { [true, false] };
        for enabled in order {
            metrics::set_enabled(enabled);
            let secs = timed_fixed_invocations(w.as_ref(), &spec, &pv, slice, ExecTier::Predecoded);
            if enabled { on.push(secs) } else { off.push(secs) }
        }
    }
    metrics::set_enabled(restore);
    let (med_on, med_off) = (median(&on), median(&off));
    let overhead_pct = (med_on - med_off) / med_off.max(1e-9) * 100.0;
    let pass = overhead_pct <= gate_pct;
    let doc = Json::obj(vec![
        ("workload", Json::Str("swim".to_owned())),
        ("machine", Json::Str("SPARC-II".to_owned())),
        ("invocations_per_slice", Json::U(slice)),
        ("pairs", Json::U(PAIRS as u64)),
        ("on_secs", Json::Arr(on.iter().map(|&s| Json::F(s)).collect())),
        ("off_secs", Json::Arr(off.iter().map(|&s| Json::F(s)).collect())),
        ("median_on_secs", Json::F(med_on)),
        ("median_off_secs", Json::F(med_off)),
        ("overhead_pct", Json::F(overhead_pct)),
        ("gate_pct", Json::F(gate_pct)),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::File::create(json_path)
        .and_then(|mut f| f.write_all((doc.pretty() + "\n").as_bytes()))
        .expect("write obs json");
    println!();
    println!(
        "obs overhead gate — {slice} invocations/slice × {PAIRS} interleaved pairs: \
         metrics on {med_on:.4}s vs off {med_off:.4}s → {overhead_pct:+.2}% (gate {gate_pct}%)"
    );
    println!("wrote {json_path}");
    if !pass {
        eprintln!("error: metrics overhead {overhead_pct:.2}% exceeds the {gate_pct}% gate");
    }
    pass
}

/// Render the full Table-1 sweep (all workloads, SPARC-II) on `pool` and
/// return the rendered rows — the same per-benchmark fan-out `table1`
/// runs, minus the I/O.
fn table1_rows(pool: &peak_core::Pool) -> Vec<String> {
    let workloads = peak_workloads::all_workloads();
    let spec = MachineSpec::sparc_ii();
    let jobs: Vec<_> = workloads
        .iter()
        .map(|w| {
            let spec = &spec;
            move || {
                peak_core::consistency_rows(w.as_ref(), spec)
                    .iter()
                    .map(peak_bench::render_consistency_row)
                    .collect::<Vec<String>>()
            }
        })
        .collect();
    pool.run(jobs).into_iter().flatten().collect()
}

/// Scheduler scaling benchmark behind `--search`: time the Table-1 sweep
/// and a 2-round parallel IE search at 1, 2, and the default thread
/// count. The global version cache is cleared before every leg so each
/// one pays (and, at >1 threads, parallelizes) the same compile work.
fn search_bench(json_path: &str) {
    use peak_core::consultant::Method;
    use peak_core::{iterative_elimination_parallel_capped, Pool, TuningSetup};

    const SEARCH_ROUNDS: usize = 2;
    let default_threads = peak_core::default_threads();
    let mut ks: Vec<usize> = Vec::new();
    for k in [1, 2, default_threads] {
        if !ks.contains(&k) {
            ks.push(k);
        }
    }
    println!();
    println!("search scaling — thread counts {ks:?} (default {default_threads})");

    let mut t1_legs: Vec<(usize, f64)> = Vec::new();
    let mut t1_outputs: Vec<String> = Vec::new();
    for &k in &ks {
        VersionCache::global().clear();
        let pool = peak_core::Pool::with_threads(k);
        let start = Instant::now();
        let rows = table1_rows(&pool);
        let secs = start.elapsed().as_secs_f64();
        println!("  table1 sweep   threads={k:<2}  {secs:7.2}s  ({} rows)", rows.len());
        t1_legs.push((k, secs));
        t1_outputs.push(rows.join("\n"));
    }
    let t1_identical = t1_outputs.windows(2).all(|w| w[0] == w[1]);
    let t1_speedup = t1_legs[0].1 / t1_legs.last().unwrap().1.max(1e-9);

    let spec = MachineSpec::sparc_ii();
    let swim = peak_workloads::workload_by_name("swim").expect("swim workload");
    let mut se_legs: Vec<(usize, f64, peak_core::SearchResult)> = Vec::new();
    for &k in &ks {
        VersionCache::global().clear();
        let pool = Pool::with_threads(k);
        let mut setup = TuningSetup::new(swim.as_ref(), spec.clone(), Dataset::Train);
        let start = Instant::now();
        let result =
            iterative_elimination_parallel_capped(&mut setup, Method::Cbr, &pool, SEARCH_ROUNDS);
        let secs = start.elapsed().as_secs_f64();
        println!(
            "  parallel IE    threads={k:<2}  {secs:7.2}s  ({} ratings, {} runs)",
            result.ratings, result.runs
        );
        se_legs.push((k, secs, result));
    }
    let se_identical = se_legs.windows(2).all(|w| {
        let (a, b) = (&w[0].2, &w[1].2);
        a.disabled_flags == b.disabled_flags
            && a.ratings == b.ratings
            && a.tuning_cycles == b.tuning_cycles
            && a.runs == b.runs
            && a.invocations == b.invocations
    });
    let se_speedup = se_legs[0].1 / se_legs.last().unwrap().1.max(1e-9);

    let leg_json = |threads: usize, secs: f64| {
        Json::obj(vec![("threads", Json::U(threads as u64)), ("secs", Json::F(secs))])
    };
    let doc = Json::obj(vec![
        ("default_threads", Json::U(default_threads as u64)),
        (
            "table1_scaling",
            Json::Arr(t1_legs.iter().map(|&(k, s)| leg_json(k, s)).collect()),
        ),
        ("table1_identical", Json::Bool(t1_identical)),
        ("table1_speedup_default_vs_1", Json::F(t1_speedup)),
        ("search_rounds", Json::U(SEARCH_ROUNDS as u64)),
        (
            "search_scaling",
            Json::Arr(
                se_legs
                    .iter()
                    .map(|(k, s, r)| {
                        Json::obj(vec![
                            ("threads", Json::U(*k as u64)),
                            ("secs", Json::F(*s)),
                            ("secs_per_round", Json::F(*s / SEARCH_ROUNDS as f64)),
                            ("ratings", Json::U(r.ratings as u64)),
                            ("runs", Json::U(r.runs as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("search_identical", Json::Bool(se_identical)),
        ("search_speedup_default_vs_1", Json::F(se_speedup)),
    ]);
    std::fs::File::create(json_path)
        .and_then(|mut f| f.write_all((doc.pretty() + "\n").as_bytes()))
        .expect("write search json");
    println!(
        "  table1 identical: {t1_identical}, speedup {t1_speedup:.2}x; \
         search identical: {se_identical}, speedup {se_speedup:.2}x"
    );
    println!("wrote {json_path}");
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}
