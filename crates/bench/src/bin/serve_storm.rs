//! Storm harness for the tuning daemon: hammer an in-process
//! `peak-serve` instance with a seeded mix of valid, malformed, slow,
//! panicking, and overloading requests and assert the crash-safety
//! contract:
//!
//! * the daemon never dies — every request (including garbage) answers
//!   exactly one structured JSONL response;
//! * panicking jobs are retried and reported, and the shared pool stays
//!   healthy for the jobs after them;
//! * valid jobs' results are **bit-identical** to offline
//!   [`peak_core::tune_traced_pooled`] — serving adds failure handling,
//!   never answer drift;
//! * `stats` and `health` answer on a second connection while the job
//!   queue is saturated, and panicking jobs leave post-mortem artifacts
//!   behind.
//!
//! ```text
//! cargo run --release -p peak-bench --bin serve_storm [-- --jobs N] [--seed S]
//! ```
//!
//! Exits non-zero on any contract violation (CI runs a short storm).

use peak_core::{consult, Pool};
use peak_obs::Tracer;
use peak_serve::{RetryPolicy, ServeConfig};
use peak_util::{Json, ToJson};
use peak_workloads::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

/// Valid-job menu: figure-7 benchmarks on both machines.
const BENCHMARKS: &[&str] = &["SWIM", "MGRID", "ART", "EQUAKE"];
const MACHINES: &[&str] = &["SPARC-II", "Pentium-IV"];
const METHODS: &[Option<&str>] = &[Some("CBR"), Some("RBR"), None];

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    fn connect(socket: &std::path::Path) -> Client {
        let stream = UnixStream::connect(socket).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone socket"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send request");
        self.stream.flush().expect("flush request");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "daemon closed the connection (daemon death?)");
        peak_util::from_str(line.trim_end()).expect("response must be valid JSON")
    }

    /// Send many lines, then collect one response per line (any order),
    /// returned as (id → response).
    fn roundtrip(&mut self, lines: &[String]) -> Vec<Json> {
        for line in lines {
            self.send(line);
        }
        (0..lines.len()).map(|_| self.recv()).collect()
    }
}

fn str_field<'j>(j: &'j Json, key: &str) -> &'j str {
    j.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string {key:?} in {}", j.compact()))
}

fn assert_structured(responses: &[Json]) {
    const KINDS: &[&str] = &[
        "malformed",
        "unknown_benchmark",
        "unknown_machine",
        "unknown_method",
        "panicked",
        "deadline_exceeded",
        "cancelled",
        "overloaded",
        "shutdown",
    ];
    for r in responses {
        match str_field(r, "status") {
            "ok" => {}
            "error" => {
                let kind = str_field(r, "error");
                assert!(KINDS.contains(&kind), "unknown error kind in {}", r.compact());
            }
            other => panic!("bad status {other:?} in {}", r.compact()),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs: usize = arg_value(&args, "--jobs").map_or(6, |v| v.parse().expect("--jobs N"));
    let seed: u64 =
        arg_value(&args, "--seed").map_or(0x5702, |v| v.parse().expect("--seed S"));
    let mut rng = StdRng::seed_from_u64(seed);

    let dir = std::env::temp_dir().join(format!("peak-storm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create storm dir");
    let socket = dir.join("peak.sock");
    let mut config = ServeConfig::new(&socket, dir.join("store"));
    config.workers = 2;
    config.queue_cap = jobs.max(8);
    config.retry = RetryPolicy { max_retries: 2, base_backoff_ms: 1, factor: 2 };
    let handle = peak_serve::start(config, Tracer::disabled()).expect("start daemon");
    println!("serve_storm: daemon up on {} (seed {seed:#x}, {jobs} valid jobs)", socket.display());

    // ── Phase 1: adversarial barrage ────────────────────────────────
    // Malformed garbage, spec errors, panics, blown deadlines, and an
    // overload burst. Every line must answer; the daemon must live.
    let mut adversarial: Vec<String> = vec![
        "complete garbage".into(),
        r#"{"kind":"tune","benchmark":"SWIM","machine":"SPARC-II"}"#.into(), // no id
        r#"{"id":"a0","kind":"dance"}"#.into(),
        r#"{"id":"a1","kind":"tune","benchmark":"NOPE","machine":"SPARC-II"}"#.into(),
        r#"{"id":"a2","kind":"tune","benchmark":"SWIM","machine":"vax"}"#.into(),
        r#"{"id":"a3","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"best"}"#
            .into(),
    ];
    for k in 0..3 {
        adversarial.push(format!(
            r#"{{"id":"panic{k}","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"panic"}}"#
        ));
    }
    for k in 0..2 {
        adversarial.push(format!(
            r#"{{"id":"dead{k}","kind":"tune","benchmark":"ART","machine":"Pentium-IV","inject":"slow:30000","deadline_ms":{}}}"#,
            20 + rng.gen_range(0..30)
        ));
    }
    // Deterministic shuffle of the barrage order.
    for i in (1..adversarial.len()).rev() {
        adversarial.swap(i, rng.gen_range(0..=i));
    }
    let mut client = Client::connect(&socket);
    let responses = client.roundtrip(&adversarial);
    assert_structured(&responses);
    let panics =
        responses.iter().filter(|r| r.get("error").and_then(Json::as_str) == Some("panicked"));
    assert_eq!(panics.count(), 3, "all injected panics must report");
    println!("serve_storm: adversarial barrage ok ({} responses, all structured)", responses.len());

    // Overload burst on a dedicated connection: more slow jobs than
    // queue_cap + workers can hold must shed at least one. While the
    // burst is still queued, a *second* connection probes `stats` and
    // `health` — both are answered inline on the connection thread, so
    // they must keep working while the workers are drowning.
    let burst: Vec<String> = (0..config_burst(jobs))
        .map(|k| {
            format!(
                r#"{{"id":"burst{k}","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"slow:300","deadline_ms":400}}"#
            )
        })
        .collect();
    for line in &burst {
        client.send(line);
    }
    let mut probe = Client::connect(&socket);
    let under_load = probe.roundtrip(&[
        r#"{"id":"p-stats","kind":"stats"}"#.to_owned(),
        r#"{"id":"p-health","type":"health"}"#.to_owned(),
    ]);
    for r in &under_load {
        assert_eq!(
            str_field(r, "status"),
            "ok",
            "stats/health must answer under overload: {}",
            r.compact()
        );
    }
    let health = under_load
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("p-health"))
        .expect("health response");
    assert_eq!(health.get("healthy").and_then(Json::as_bool), Some(true));
    assert!(health.get("queue_depth").and_then(Json::as_u64).is_some());
    let probed_stats = under_load
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some("p-stats"))
        .expect("stats response");
    assert!(
        probed_stats.get("metrics").is_some(),
        "stats under load must still carry the metrics snapshot"
    );
    println!("serve_storm: stats+health answered while the queue was saturated");
    let burst_responses: Vec<Json> = (0..burst.len()).map(|_| client.recv()).collect();
    assert_structured(&burst_responses);
    let shed = burst_responses
        .iter()
        .filter(|r| r.get("error").and_then(Json::as_str) == Some("overloaded"))
        .count();
    assert!(shed >= 1, "overload burst must shed");
    println!("serve_storm: overload burst ok ({} sent, {shed} shed)", burst.len());

    // Daemon still alive?
    let ping = client.roundtrip(&[r#"{"id":"alive1","kind":"ping"}"#.to_owned()]);
    assert_eq!(str_field(&ping[0], "status"), "ok", "daemon died during the barrage");

    // ── Phase 2: valid jobs, bit-identical to offline tuning ────────
    let mut specs: Vec<(usize, &str, &str, Option<&str>)> = (0..jobs)
        .map(|k| {
            (
                k,
                BENCHMARKS[rng.gen_range(0..BENCHMARKS.len())],
                MACHINES[rng.gen_range(0..MACHINES.len())],
                METHODS[rng.gen_range(0..METHODS.len())],
            )
        })
        .collect();
    specs.sort();
    let lines: Vec<String> = specs
        .iter()
        .map(|(k, bench, machine, method)| match method {
            Some(m) => format!(
                r#"{{"id":"v{k}","kind":"tune","benchmark":"{bench}","machine":"{machine}","method":"{m}"}}"#
            ),
            None => format!(
                r#"{{"id":"v{k}","kind":"tune","benchmark":"{bench}","machine":"{machine}"}}"#
            ),
        })
        .collect();
    let responses = client.roundtrip(&lines);
    assert_structured(&responses);

    let pool = Pool::from_env();
    let mut compared = 0;
    for (k, bench, machine, method) in &specs {
        let id = format!("v{k}");
        let response = responses
            .iter()
            .find(|r| r.get("id").and_then(Json::as_str) == Some(id.as_str()))
            .unwrap_or_else(|| panic!("no response for {id}"));
        assert_eq!(str_field(response, "status"), "ok", "valid job failed: {}", response.compact());
        let served = response.get("result").expect("ok tune carries result").compact();
        // Offline reference: the exact same job through the library API.
        let workload = peak_workloads::workload_by_name(bench).expect("storm benchmark");
        let spec = peak_core::machine_spec_by_name(machine).expect("storm machine");
        let m = match method {
            Some(name) => peak_core::method_by_name(name).expect("storm method"),
            None => consult(workload.as_ref(), &spec).order[0],
        };
        let offline = peak_core::tune_traced_pooled(
            workload.as_ref(),
            &spec,
            m,
            Dataset::Train,
            Tracer::disabled(),
            &pool,
        );
        assert_eq!(
            served,
            offline.to_json().compact(),
            "served result for {bench}/{machine}/{m:?} drifted from offline tuning"
        );
        compared += 1;
    }
    println!("serve_storm: {compared} valid jobs bit-identical to offline tuning");

    // ── Wind down ───────────────────────────────────────────────────
    let stats = client.roundtrip(&[r#"{"id":"st","kind":"stats"}"#.to_owned()]);
    let ok_jobs = stats[0].get("jobs_ok").and_then(Json::as_u64).unwrap_or(0);
    assert!(ok_jobs >= compared as u64, "stats must count completed jobs: {}", stats[0].compact());
    // Every panicking job dies with a post-mortem on disk.
    let postmortems = stats[0].get("postmortems").and_then(Json::as_u64).unwrap_or(0);
    assert!(postmortems >= 3, "3 panicked jobs must leave post-mortems: {}", stats[0].compact());
    let dumped = std::fs::read_dir(dir.join("store").join("postmortem"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert!(dumped as u64 >= postmortems, "post-mortem files must exist ({dumped} on disk)");
    println!("serve_storm: {postmortems} post-mortems recorded, {dumped} artifacts on disk");
    let bye = client.roundtrip(&[r#"{"id":"bye","kind":"shutdown"}"#.to_owned()]);
    assert_eq!(str_field(&bye[0], "status"), "ok");
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "STORM: OK ({compared} valid jobs bit-identical, {} adversarial responses structured, 0 daemon deaths)",
        adversarial.len() + burst.len()
    );
}

/// Overload burst size: comfortably past queue + workers.
fn config_burst(jobs: usize) -> usize {
    jobs.max(8) + 6
}
