//! `peak-trace` — inspect PEAK telemetry traces.
//!
//! Traces are JSONL files written by `table1 --trace`, `figure7 --trace`,
//! `fault_matrix --trace`, or any [`peak_obs::JsonlSink`] user. Each line
//! is one event: `{"seq":..,"span":..,"kind":..,<fields>}`.
//!
//! ```text
//! peak-trace summary  <trace.jsonl>       # aggregate view of a whole run
//! peak-trace ts <id>  <trace.jsonl>       # events for one tuning section
//! peak-trace degrades <trace.jsonl>       # supervisor retries/downgrades
//! peak-trace diff <a.jsonl> <b.jsonl>     # structural diff (wall_ns ignored)
//! ```
//!
//! `diff` ignores the `wall_ns` self-profiling field so a wall-clock
//! trace still compares equal to a deterministic one from the same seed.

use peak_obs::TraceEvent;
use peak_util::Json;
use std::collections::BTreeMap;

const USAGE: &str = "\
peak-trace — inspect PEAK telemetry traces (JSONL)

USAGE:
    peak-trace summary  <trace.jsonl>
    peak-trace ts <id>  <trace.jsonl>
    peak-trace degrades <trace.jsonl>
    peak-trace diff <a.jsonl> <b.jsonl>
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("summary") if args.len() == 2 => summary(&load(&args[1])),
        Some("ts") if args.len() == 3 => ts_view(&args[1], &load(&args[2])),
        Some("degrades") if args.len() == 2 => degrades(&load(&args[1])),
        Some("diff") if args.len() == 3 => diff(&load(&args[1]), &load(&args[2])),
        _ => {
            eprint!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Read and parse a trace file; malformed lines are fatal (a trace that
/// does not round-trip indicates a writer bug, not user error).
fn load(path: &str) -> Vec<TraceEvent> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match TraceEvent::parse_line(line) {
            Ok(e) => events.push(e),
            Err(e) => {
                eprintln!("error: {path}:{}: bad trace line: {}", lineno + 1, e.message);
                std::process::exit(2);
            }
        }
    }
    events
}

fn f_str<'a>(e: &'a TraceEvent, name: &str) -> Option<&'a str> {
    e.field(name).and_then(Json::as_str)
}

fn f_u64(e: &TraceEvent, name: &str) -> Option<u64> {
    e.field(name).and_then(Json::as_u64)
}

fn f_f64(e: &TraceEvent, name: &str) -> Option<f64> {
    e.field(name).and_then(Json::as_f64)
}

/// Attribute each event to a tuning section. Events stamped with a `ts`
/// field use it directly; otherwise an enclosing `table1.collect` span
/// region (scanned sequentially — per-job buffers never interleave in a
/// trace file) provides the attribution.
fn attribute_ts(events: &[TraceEvent]) -> Vec<Option<String>> {
    let mut current: Option<String> = None;
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        if let Some(ts) = f_str(e, "ts") {
            out.push(Some(ts.to_owned()));
            if e.kind == "span.enter" && f_str(e, "name") == Some("table1.collect") {
                current = Some(ts.to_owned());
            }
            continue;
        }
        if e.kind == "span.exit" && f_str(e, "name") == Some("table1.collect") {
            out.push(current.clone());
            current = None;
            continue;
        }
        out.push(current.clone());
    }
    out
}

#[derive(Default)]
struct MethodAgg {
    outcomes: u64,
    samples: u64,
    trimmed: u64,
    dropouts: u64,
    crashes: u64,
    unconverged: u64,
    runs: u64,
    invocations: u64,
    cycles: u64,
    wall_ns: u64,
    has_wall: bool,
}

fn rating_aggregate(events: &[TraceEvent]) -> BTreeMap<String, MethodAgg> {
    let mut per_method: BTreeMap<String, MethodAgg> = BTreeMap::new();
    for e in events.iter().filter(|e| e.kind == "rating.outcome") {
        let method = f_str(e, "method").unwrap_or("?").to_owned();
        let a = per_method.entry(method).or_default();
        a.outcomes += 1;
        a.samples += f_u64(e, "samples").unwrap_or(0);
        a.trimmed += f_u64(e, "trimmed").unwrap_or(0);
        a.dropouts += f_u64(e, "dropouts").unwrap_or(0);
        a.crashes += f_u64(e, "crashes").unwrap_or(0);
        a.unconverged += f_u64(e, "unconverged").unwrap_or(0);
        a.runs += f_u64(e, "runs").unwrap_or(0);
        a.invocations += f_u64(e, "invocations").unwrap_or(0);
        a.cycles += f_u64(e, "cycles").unwrap_or(0);
        if let Some(w) = f_u64(e, "wall_ns") {
            a.wall_ns += w;
            a.has_wall = true;
        }
    }
    per_method
}

fn print_rating_table(per_method: &BTreeMap<String, MethodAgg>) {
    if per_method.is_empty() {
        println!("ratings: none recorded");
        return;
    }
    let any_wall = per_method.values().any(|a| a.has_wall);
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>12} {:>9} {:>14}{}",
        "method",
        "outcomes",
        "samples",
        "trimmed",
        "dropouts",
        "crashes",
        "unconverged",
        "runs",
        "sim cycles",
        if any_wall { "   overhead ms" } else { "" },
    );
    for (m, a) in per_method {
        let wall = if any_wall {
            format!("   {:>11.3}", a.wall_ns as f64 / 1.0e6)
        } else {
            String::new()
        };
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>12} {:>9} {:>14}{}",
            m, a.outcomes, a.samples, a.trimmed, a.dropouts, a.crashes, a.unconverged, a.runs,
            a.cycles, wall,
        );
    }
}

fn print_sim_totals(events: &[TraceEvent]) {
    let runs: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == "sim.run").collect();
    if runs.is_empty() {
        println!("simulator: no sim.run events");
        return;
    }
    let sum = |k: &str| runs.iter().map(|e| f_u64(e, k).unwrap_or(0)).sum::<u64>();
    let (instr, cycles) = (sum("instructions"), sum("cycles"));
    let (l1h, l1m) = (sum("l1_hits"), sum("l1_misses"));
    let (l2h, l2m) = (sum("l2_hits"), sum("l2_misses"));
    let (bc, bw) = (sum("branch_correct"), sum("branch_wrong"));
    let pct = |num: u64, den: u64| {
        if den == 0 { 100.0 } else { num as f64 / den as f64 * 100.0 }
    };
    println!(
        "simulator: {} runs, {} instructions, {} cycles",
        runs.len(),
        instr,
        cycles
    );
    println!(
        "  L1 {:.1}% hit ({l1h}/{})  L2 {:.1}% hit ({l2h}/{})  branch {:.1}% correct ({bc}/{})",
        pct(l1h, l1h + l1m),
        l1h + l1m,
        pct(l2h, l2h + l2m),
        l2h + l2m,
        pct(bc, bc + bw),
        bc + bw,
    );
    let faults: u64 = ["fault_spikes", "fault_bursts", "fault_dropouts", "fault_perturbations"]
        .iter()
        .map(|k| sum(k))
        .sum();
    if faults > 0 {
        println!(
            "  faults: {} spikes, {} bursts, {} dropouts, {} perturbations",
            sum("fault_spikes"),
            sum("fault_bursts"),
            sum("fault_dropouts"),
            sum("fault_perturbations"),
        );
    }
}

fn summary(events: &[TraceEvent]) -> i32 {
    println!("{} events", events.len());
    if events.is_empty() {
        return 0;
    }
    let mut kinds: BTreeMap<&str, u64> = BTreeMap::new();
    for e in events {
        *kinds.entry(&e.kind).or_default() += 1;
    }
    println!();
    println!("event kinds:");
    for (k, n) in &kinds {
        println!("  {k:<24} {n}");
    }
    println!();
    print_rating_table(&rating_aggregate(events));
    println!();
    print_sim_totals(events);
    let degrades = kinds.get("supervisor.degrade").copied().unwrap_or(0);
    let retries = kinds.get("supervisor.retry").copied().unwrap_or(0);
    if degrades + retries > 0 {
        println!();
        println!(
            "supervisor: {degrades} downgrades, {retries} retries (see `peak-trace degrades`)"
        );
    }
    // Per-TS breakdown, when the trace carries attribution.
    let attribution = attribute_ts(events);
    #[derive(Default)]
    struct TsAgg {
        methods: Vec<String>,
        events: u64,
        runs: u64,
        outcomes: u64,
    }
    let mut per_ts: BTreeMap<String, TsAgg> = BTreeMap::new();
    for (e, ts) in events.iter().zip(&attribution) {
        if let Some(ts) = ts {
            let slot = per_ts.entry(ts.clone()).or_default();
            slot.events += 1;
            match e.kind.as_str() {
                "sim.run" => slot.runs += 1,
                "rating.outcome" => slot.outcomes += 1,
                _ => {}
            }
            // Method provenance: rating outcomes, Table-1 rows, and
            // span enters all carry it.
            if matches!(e.kind.as_str(), "rating.outcome" | "table1.row" | "span.enter") {
                if let Some(m) = f_str(e, "method") {
                    if !slot.methods.iter().any(|s| s == m) {
                        slot.methods.push(m.to_owned());
                    }
                }
            }
        }
    }
    if !per_ts.is_empty() {
        println!();
        println!("tuning sections:");
        println!(
            "  {:<28} {:<12} {:>8} {:>6} {:>9}",
            "ts", "methods", "events", "runs", "outcomes"
        );
        for (ts, a) in &per_ts {
            println!(
                "  {:<28} {:<12} {:>8} {:>6} {:>9}",
                ts,
                a.methods.join(","),
                a.events,
                a.runs,
                a.outcomes
            );
        }
    }
    0
}

fn ts_view(id: &str, events: &[TraceEvent]) -> i32 {
    let attribution = attribute_ts(events);
    let selected: Vec<&TraceEvent> = events
        .iter()
        .zip(&attribution)
        .filter(|(_, ts)| ts.as_deref().is_some_and(|t| t.eq_ignore_ascii_case(id)))
        .map(|(e, _)| e)
        .collect();
    if selected.is_empty() {
        eprintln!("no events attributed to tuning section `{id}`");
        let mut known: Vec<String> = attribution.into_iter().flatten().collect();
        known.sort();
        known.dedup();
        if !known.is_empty() {
            eprintln!("known sections: {}", known.join(", "));
        }
        return 1;
    }
    println!("tuning section {id}: {} events", selected.len());
    println!();
    let owned: Vec<TraceEvent> = selected.iter().map(|e| (*e).clone()).collect();
    print_rating_table(&rating_aggregate(&owned));
    println!();
    print_sim_totals(&owned);
    // Notable events in stream order; bulk kinds are already aggregated.
    const BULK: &[&str] = &["sim.run", "span.enter", "span.exit", "window.state", "counter"];
    let notable: Vec<&&TraceEvent> =
        selected.iter().filter(|e| !BULK.contains(&e.kind.as_str())).collect();
    if !notable.is_empty() {
        println!();
        println!("notable events:");
        const CAP: usize = 200;
        for e in notable.iter().take(CAP) {
            println!("  {}", e.to_line());
        }
        if notable.len() > CAP {
            println!("  … {} more", notable.len() - CAP);
        }
    }
    0
}

fn degrades(events: &[TraceEvent]) -> i32 {
    let mut any = false;
    for e in events {
        match e.kind.as_str() {
            "supervisor.retry" => {
                any = true;
                println!(
                    "retry    {} (rating {}, attempt {}, window x{}, unconverged {}){}",
                    f_str(e, "method").unwrap_or("?"),
                    f_u64(e, "rating").unwrap_or(0),
                    f_u64(e, "retry").unwrap_or(0),
                    f_f64(e, "window_scale").unwrap_or(0.0),
                    f_u64(e, "unconverged").unwrap_or(0),
                    ctx_suffix(e),
                );
            }
            "supervisor.degrade" => {
                any = true;
                println!(
                    "degrade  {} -> {}: {} (rating {}, after {} retries){}",
                    f_str(e, "from").unwrap_or("?"),
                    f_str(e, "to").unwrap_or("?"),
                    f_str(e, "trigger").unwrap_or("?"),
                    f_u64(e, "rating").unwrap_or(0),
                    f_u64(e, "retries").unwrap_or(0),
                    ctx_suffix(e),
                );
            }
            _ => {}
        }
    }
    if !any {
        println!("no supervisor retries or downgrades recorded");
    }
    0
}

/// ` [benchmark/ts]` context suffix for degrade lines, when stamped.
fn ctx_suffix(e: &TraceEvent) -> String {
    match (f_str(e, "benchmark"), f_str(e, "ts")) {
        (Some(b), Some(t)) => format!("  [{b}/{t}]"),
        (Some(b), None) => format!("  [{b}]"),
        (None, Some(t)) => format!("  [{t}]"),
        (None, None) => String::new(),
    }
}

/// Re-render an event with self-profiling fields removed, for diffing.
fn canonical_line(e: &TraceEvent) -> String {
    let mut e = e.clone();
    e.fields.retain(|(k, _)| k != "wall_ns");
    e.to_line()
}

fn diff(a: &[TraceEvent], b: &[TraceEvent]) -> i32 {
    let mut divergences = 0usize;
    let mut first: Option<usize> = None;
    for i in 0..a.len().max(b.len()) {
        let la = a.get(i).map(canonical_line);
        let lb = b.get(i).map(canonical_line);
        if la != lb {
            divergences += 1;
            if first.is_none() {
                first = Some(i);
                println!("first divergence at event {i}:");
                println!("  a: {}", la.as_deref().unwrap_or("<end of trace>"));
                println!("  b: {}", lb.as_deref().unwrap_or("<end of trace>"));
            }
        }
    }
    if divergences == 0 {
        println!("traces identical ({} events, wall_ns ignored)", a.len());
        0
    } else {
        println!(
            "{divergences} differing events ({} vs {} total, wall_ns ignored)",
            a.len(),
            b.len()
        );
        1
    }
}
