//! passfuzz — deterministic differential-fuzz fleet for the optimizer.
//!
//! Each seed pins one scenario: a random generated program
//! (`peak_workloads::fuzzgen`), a random 38-flag configuration, a fixed
//! argument vector, and one of the two machine models. Every scenario is
//! pushed through three independent checks:
//!
//! 1. **oracle** — `peak_opt::optimize_checked` at
//!    [`ValidationLevel::Full`]: structural IR verification plus the
//!    per-pass semantic observation diff over the validation battery;
//! 2. **interp-diff** — end-to-end reference-interpreter equivalence of
//!    the original vs. fully optimized program on the seed's arguments
//!    (return value and final memory image);
//! 3. **machine-diff** — the optimized version executed on the cycle
//!    simulator (`peak_sim`) must produce the same return value and final
//!    memory as the reference interpreter run of the *original* program.
//!
//! Failures are shrunk greedily at the `GStmt` level to a minimal
//! statement list that still fails, then written to the regression corpus
//! (`crates/opt/tests/corpus/*.ir`) in the textual IR format with `#`
//! metadata headers; `corpus_replay.rs` re-runs every entry on each
//! `cargo test`. Exit status is non-zero iff any seed failed.
//!
//! ```text
//! cargo run --release -p peak-bench --bin passfuzz -- \
//!     [--start S] [--count N] [--corpus DIR] [--no-write] [--quiet]
//! ```

use peak_ir::{values_eq, Value};
use peak_opt::{OptConfig, ValidationLevel};
use peak_sim::{AddressMap, ExecOptions, MachineSpec, MachineState, PreparedVersion};
use peak_workloads::fuzzgen::{
    build_program, gen_args, gen_stmts, node_count, render_program, run_reference,
    shrink_candidates, GStmt, SplitMix64,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Salt separating the config-bits stream from the program stream so the
/// same program shape is explored under many configurations as seeds
/// advance.
const CONFIG_SALT: u64 = 0xC0F1_6000_0000_0001;

/// Cap on candidate evaluations during shrinking (each evaluation re-runs
/// all three checks).
const SHRINK_BUDGET: usize = 600;

/// One check failure.
struct Failure {
    check: &'static str,
    detail: String,
}

fn machine_for(seed: u64) -> (&'static str, MachineSpec) {
    if seed.is_multiple_of(2) {
        ("sparc", MachineSpec::sparc_ii())
    } else {
        ("p4", MachineSpec::pentium_iv())
    }
}

/// Run every check for one scenario.
fn check_scenario(
    stmts: &[GStmt],
    bits: u64,
    args: &[Value; 3],
    spec: &MachineSpec,
) -> Result<(), Failure> {
    let (prog, f) = build_program(stmts);
    let cfg = OptConfig::from_bits(bits);

    // Check 1: per-pass translation validation (structural + semantic).
    let cv = peak_opt::optimize_checked(&prog, f, &cfg, ValidationLevel::Full).map_err(|e| {
        Failure { check: "oracle", detail: e.to_string() }
    })?;

    // Check 2: end-to-end interpreter equivalence on the seed arguments.
    let (r1, m1) = run_reference(&prog, f, args);
    let (r2, m2) = run_reference(&cv.program, cv.func, args);
    let rets_match = match (&r1, &r2) {
        (Some(a), Some(b)) => values_eq(a, b),
        (None, None) => true,
        _ => false,
    };
    if !rets_match {
        return Err(Failure {
            check: "interp-diff",
            detail: format!("return value {r1:?} vs {r2:?} (config {cfg})"),
        });
    }
    if m1 != m2 {
        return Err(Failure {
            check: "interp-diff",
            detail: format!("final memory images differ (config {cfg})"),
        });
    }

    // Check 3: the cycle simulator agrees with the reference interpreter.
    let pv = PreparedVersion::prepare(cv, spec);
    let mem_lens: Vec<usize> = prog.mems.iter().map(|m| m.len).collect();
    let amap = AddressMap::new(&mem_lens);
    let mut mem = peak_workloads::fuzzgen::init_memory(&prog);
    let mut state = MachineState::noiseless(spec.clone());
    let res = peak_sim::execute(&pv, args, &mut mem, &amap, &mut state, &ExecOptions::default())
        .map_err(|e| Failure {
            check: "machine-diff",
            detail: format!("simulator trapped: {e} (config {cfg})"),
        })?;
    let rets_match = match (&r1, &res.ret) {
        (Some(a), Some(b)) => values_eq(a, b),
        (None, None) => true,
        _ => false,
    };
    if !rets_match {
        return Err(Failure {
            check: "machine-diff",
            detail: format!("return value interp {r1:?} vs machine {:?} (config {cfg})", res.ret),
        });
    }
    if m1 != mem {
        return Err(Failure {
            check: "machine-diff",
            detail: format!("final memory interp vs machine differ (config {cfg})"),
        });
    }
    Ok(())
}

/// Greedy shrink: repeatedly take the first one-edit-smaller candidate
/// that still fails any check, until no candidate fails or the budget is
/// exhausted.
fn shrink(
    stmts: Vec<GStmt>,
    bits: u64,
    args: &[Value; 3],
    spec: &MachineSpec,
    mut fail: Failure,
) -> (Vec<GStmt>, Failure) {
    let mut cur = stmts;
    let mut budget = SHRINK_BUDGET;
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&cur) {
            if budget == 0 {
                return (cur, fail);
            }
            budget -= 1;
            if let Err(f) = check_scenario(&cand, bits, args, spec) {
                cur = cand;
                fail = f;
                improved = true;
                break;
            }
        }
        if !improved {
            return (cur, fail);
        }
    }
}

/// Write a corpus entry: `#` metadata headers (skipped by the IR parser)
/// followed by the program text, so `parse_program` on the whole file
/// yields the shrunk program.
fn write_corpus_entry(
    dir: &Path,
    seed: u64,
    bits: u64,
    machine: &str,
    args: &[Value; 3],
    fail: &Failure,
    stmts: &[GStmt],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let (prog, _) = build_program(stmts);
    let (Value::I64(a), Value::I64(b), Value::F64(x)) = (&args[0], &args[1], &args[2]) else {
        unreachable!("fuzz args are always (i64, i64, f64)");
    };
    let mut text = String::new();
    text.push_str("# passfuzz counterexample (autogenerated; replayed by corpus_replay.rs)\n");
    text.push_str(&format!("# seed: {seed}\n"));
    text.push_str(&format!("# config_bits: {bits:#018x}\n"));
    text.push_str(&format!("# machine: {machine}\n"));
    text.push_str(&format!("# args: {a} {b} {:#018x}\n", x.to_bits()));
    text.push_str(&format!("# check: {}\n", fail.check));
    for line in fail.detail.lines() {
        text.push_str(&format!("# detail: {line}\n"));
    }
    text.push_str(&format!("# nodes: {}\n", node_count(stmts)));
    text.push_str(&render_program(&prog));
    let path = dir.join(format!("fuzz_{seed:016x}.ir"));
    std::fs::write(&path, text)?;
    Ok(path)
}

struct Options {
    start: u64,
    count: u64,
    corpus: PathBuf,
    write: bool,
    quiet: bool,
}

fn parse_args() -> Options {
    let default_corpus =
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../opt/tests/corpus"));
    let mut opts = Options {
        start: 0,
        count: 1000,
        corpus: default_corpus,
        write: true,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("passfuzz: {name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--start" => opts.start = val("--start").parse().expect("--start: u64"),
            "--count" => opts.count = val("--count").parse().expect("--count: u64"),
            "--corpus" => opts.corpus = PathBuf::from(val("--corpus")),
            "--no-write" => opts.write = false,
            "--quiet" => opts.quiet = true,
            other => {
                eprintln!(
                    "passfuzz: unknown argument {other}\n\
                     usage: passfuzz [--start S] [--count N] [--corpus DIR] [--no-write] [--quiet]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let mut failures = 0u64;
    let started = std::time::Instant::now();
    for seed in opts.start..opts.start + opts.count {
        let stmts = gen_stmts(seed);
        let bits = SplitMix64::new(seed ^ CONFIG_SALT).next_u64();
        let args = gen_args(seed);
        let (mname, spec) = machine_for(seed);
        if let Err(fail) = check_scenario(&stmts, bits, &args, &spec) {
            failures += 1;
            eprintln!(
                "passfuzz: seed {seed} FAILED [{}] {} — shrinking…",
                fail.check, fail.detail
            );
            let (small, fail) = shrink(stmts, bits, &args, &spec, fail);
            eprintln!(
                "passfuzz: seed {seed} shrunk to {} nodes [{}] {}",
                node_count(&small),
                fail.check,
                fail.detail
            );
            if opts.write {
                match write_corpus_entry(
                    &opts.corpus, seed, bits, mname, &args, &fail, &small,
                ) {
                    Ok(p) => eprintln!("passfuzz: counterexample written to {}", p.display()),
                    Err(e) => eprintln!("passfuzz: could not write corpus entry: {e}"),
                }
            }
        }
        if !opts.quiet && (seed + 1 - opts.start).is_multiple_of(100) {
            println!(
                "passfuzz: {}/{} seeds, {failures} failures, {:.1}s",
                seed + 1 - opts.start,
                opts.count,
                started.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "passfuzz: {} seeds [{}..{}), {} failures, {:.1}s",
        opts.count,
        opts.start,
        opts.start + opts.count,
        failures,
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
