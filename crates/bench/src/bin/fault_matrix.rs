//! Fault-injection matrix: how rating accuracy degrades with fault
//! intensity, per rating method, plus a crash+jitter scenario exercising
//! the supervisor's degradation cascade end-to-end.
//!
//! ```text
//! cargo run --release -p peak-bench --bin fault_matrix \
//!     [-- --machine sparc|p4] [--bench NAME] [--json PATH] [--trace PATH]
//! ```
//!
//! `--trace PATH` writes a JSONL telemetry trace (rating outcomes, fault
//! firings per run, supervisor degrades/retries) readable with the
//! `peak-trace` binary. Sweep cells run in parallel on the shared job
//! pool; each cell buffers its events locally and the buffers are
//! spliced into the trace file in cell order (so the trace is identical
//! at any thread count; event `seq` restarts per cell). The crash
//! scenario appends its events after the sweep. Adding `--trace-wall`
//! stamps `wall_ns` self-profiling fields so `peak-trace summary`
//! reports per-method rating overhead — at the cost of trace
//! byte-reproducibility (see DESIGN.md §9).
//!
//! For each fault intensity the harness self-rates `-O3` against itself
//! (true improvement = 1.0) with every applicable method; the reported
//! error `|EVAL_ratio − 1| × 100` is the rating-accuracy cost of the
//! faults. The final section rates under a deterministic version-crash
//! plus heavy jitter and shows the supervisor walking the
//! CBR → MBR → RBR → WHL cascade instead of panicking.

use peak_core::consultant::Method;
use peak_core::rating::{rate, TuningSetup};
use peak_core::RatingSupervisor;
use peak_obs::{event, JsonlSink, TraceSink, Tracer};
use peak_opt::OptConfig;
use peak_sim::{FaultConfig, MachineKind, MachineSpec};
use peak_util::{Json, ToJson};
use peak_workloads::Dataset;
use std::io::Write;
use std::sync::Arc;

/// Fault intensities swept (0.0 = clean control).
const INTENSITIES: &[f64] = &[0.0, 0.5, 1.0, 2.0];
/// Scenario seed for reproducible fault streams.
const SCENARIO_SEED: u64 = 0xFA_07;

struct Cell {
    method: Method,
    intensity: f64,
    error_pct: f64,
    samples: usize,
    trimmed: usize,
    dropouts: u64,
    crashes: u64,
    unconverged: usize,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("method", self.method.to_json()),
            ("intensity", self.intensity.to_json()),
            ("error_pct", self.error_pct.to_json()),
            ("samples", self.samples.to_json()),
            ("trimmed", self.trimmed.to_json()),
            ("dropouts", self.dropouts.to_json()),
            ("crashes", self.crashes.to_json()),
            ("unconverged", self.unconverged.to_json()),
        ])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine = arg_value(&args, "--machine").unwrap_or_else(|| "sparc".into());
    let bench = arg_value(&args, "--bench").unwrap_or_else(|| "swim".into());
    let json_path = arg_value(&args, "--json");
    let kind = match machine.as_str() {
        "p4" | "pentium" | "pentium4" => MachineKind::PentiumIV,
        "sparc" => MachineKind::SparcII,
        other => {
            eprintln!("error: unknown machine `{other}` (expected sparc or p4)");
            std::process::exit(1);
        }
    };
    let Some(workload) = peak_workloads::workload_by_name(&bench) else {
        eprintln!("error: unknown benchmark `{bench}`");
        std::process::exit(1);
    };
    let spec = MachineSpec::of(kind);
    let base = OptConfig::o3();
    let trace_path = arg_value(&args, "--trace");
    let trace_wall = args.iter().any(|a| a == "--trace-wall");
    let tracing = trace_path.is_some();
    let trace_sink: Option<Arc<JsonlSink>> = trace_path.as_ref().map(|path| {
        Arc::new(JsonlSink::create(std::path::Path::new(path)).expect("create trace file"))
    });
    let trace_ctx = vec![
        ("benchmark".to_owned(), Json::Str(workload.name().to_owned())),
        ("machine".to_owned(), Json::Str(kind.name().to_owned())),
    ];

    println!(
        "Fault matrix — rating-accuracy degradation under injected faults ({}, {})",
        workload.name(),
        kind.name()
    );
    println!("Self-rating of -O3 (true improvement = 1.0); error = |ratio-1|x100.");
    println!();
    println!(
        "{:<6} {:>9} {:>10} {:>8} {:>8} {:>9} {:>8} {:>12}",
        "method", "intensity", "error%", "samples", "trimmed", "dropouts", "crashes", "unconverged"
    );

    // Applicable methods for this TS, always ending in the baselines.
    let consult = peak_core::consult(workload.as_ref(), &spec);
    let mut methods = consult.order.clone();
    if !methods.contains(&Method::Whl) {
        methods.push(Method::Whl);
    }

    // Sweep cells are independent (method × intensity): run them as jobs
    // on the shared work-stealing pool (`PEAK_THREADS` overrides the
    // size). `Pool::run` returns results in job order, so stdout and
    // JSON are byte-identical at any thread count; each cell buffers its
    // trace events locally and the buffers are spliced in cell order.
    let pool = peak_core::Pool::from_env();
    let sweep: Vec<(Method, f64)> = methods
        .iter()
        .flat_map(|&m| INTENSITIES.iter().map(move |&i| (m, i)))
        .collect();
    let jobs: Vec<_> = sweep
        .iter()
        .map(|&(method, intensity)| {
            let workload = workload.as_ref();
            let spec = &spec;
            let trace_ctx = &trace_ctx;
            move || {
                let (tracer, sink) = if tracing {
                    let sink = Arc::new(peak_obs::BufferSink::new());
                    let mut tracer =
                        Tracer::to_sink(sink.clone()).with_context(trace_ctx.clone());
                    if trace_wall {
                        tracer = tracer.with_wall_clock();
                    }
                    (tracer, Some(sink))
                } else {
                    (Tracer::disabled(), None)
                };
                let mut setup = TuningSetup::new(workload, spec.clone(), Dataset::Train);
                setup.set_tracer(tracer.clone());
                if intensity > 0.0 {
                    setup.set_faults(Some(spec.fault_profile(intensity, SCENARIO_SEED)));
                }
                if tracer.enabled() {
                    event!(
                        tracer,
                        "matrix.cell",
                        method = method.name(),
                        intensity = intensity,
                    );
                }
                let cell = rate(&mut setup, method, base, &[base]).map(|out| Cell {
                    method,
                    intensity,
                    error_pct: (out.improvements[0] - 1.0).abs() * 100.0,
                    samples: out.samples,
                    trimmed: out.trimmed,
                    dropouts: out.dropouts,
                    crashes: out.crashes,
                    unconverged: out.unconverged,
                });
                (cell, sink.map(|s| s.drain()).unwrap_or_default())
            }
        })
        .collect();
    let results: Vec<(Option<Cell>, Vec<String>)> = pool.run(jobs);
    if let Some(sink) = &trace_sink {
        for (_, lines) in &results {
            sink.append_lines(lines.iter());
        }
    }
    let mut cells: Vec<Cell> = Vec::new();
    for (cell, _) in results {
        let Some(cell) = cell else { continue };
        println!(
            "{:<6} {:>9.1} {:>10.3} {:>8} {:>8} {:>9} {:>8} {:>12}",
            cell.method.name(),
            cell.intensity,
            cell.error_pct,
            cell.samples,
            cell.trimmed,
            cell.dropouts,
            cell.crashes,
            cell.unconverged
        );
        cells.push(cell);
    }
    // The crash scenario below runs serially and streams its events
    // straight to the trace file, after the spliced sweep buffers.
    let tracer = match &trace_sink {
        Some(sink) => {
            let mut tracer = Tracer::to_sink(sink.clone() as Arc<dyn TraceSink>)
                .with_context(trace_ctx.clone());
            if trace_wall {
                tracer = tracer.with_wall_clock();
            }
            tracer
        }
        None => Tracer::disabled(),
    };

    // Crash + jitter scenario: a deterministic version crash on the 6th
    // TS execution of every run plus intensity-1.0 jitter. Per-method
    // rating survives (crashes are data, not panics); the supervisor
    // degrades down the cascade and still produces a rating.
    println!();
    println!("Crash+jitter scenario (crash on 6th execution per run, intensity 1.0):");
    let mut crash_cfg: FaultConfig = spec.fault_profile(1.0, SCENARIO_SEED);
    crash_cfg.crash_at = Some(6);
    let mut setup = TuningSetup::new(workload.as_ref(), spec.clone(), Dataset::Train);
    setup.set_tracer(tracer.clone());
    setup.set_faults(Some(crash_cfg));
    if tracer.enabled() {
        event!(tracer, "matrix.crash_scenario", crash_at = 6u64, intensity = 1.0,);
    }
    let preferred = *consult.order.first().unwrap_or(&Method::Rbr);
    let mut supervisor = RatingSupervisor::default();
    let (out, used) = supervisor.rate(&mut setup, preferred, base, &[base]);
    println!(
        "  preferred {} -> completed with {} (error {:.3}%, {} downgrades)",
        preferred.name(),
        used.name(),
        (out.improvements[0] - 1.0).abs() * 100.0,
        supervisor.events().len()
    );
    for e in supervisor.events() {
        println!(
            "    degrade {} -> {}: {} (after {} retries)",
            e.from.name(),
            e.to.name(),
            e.trigger.name(),
            e.retries
        );
    }

    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("benchmark", workload.name().to_json()),
            ("machine", kind.name().to_json()),
            ("cells", Json::Arr(cells.iter().map(|c| c.to_json()).collect())),
            (
                "crash_scenario",
                Json::obj(vec![
                    ("preferred", preferred.to_json()),
                    ("completed_with", used.to_json()),
                    ("error_pct", ((out.improvements[0] - 1.0).abs() * 100.0).to_json()),
                    (
                        "events",
                        Json::Arr(supervisor.events().iter().map(|e| e.to_json()).collect()),
                    ),
                ]),
            ),
        ]);
        let mut f = std::fs::File::create(&path).expect("create json output");
        writeln!(f, "{}", doc.pretty()).expect("write json output");
        println!();
        println!("wrote {path}");
    }
    if let (Some(sink), Some(path)) = (trace_sink, &trace_path) {
        sink.flush();
        eprintln!("trace: wrote {path}");
    }

    // ── Robustness gate ─────────────────────────────────────────────
    // CI fails (non-zero exit) on robustness regressions: a cell that
    // produced no rating at all, non-finite or wildly degraded errors,
    // or faults firing in the clean (intensity 0.0) control cells. The
    // crash scenario legitimately walks the cascade to WHL — that is
    // the mechanism working — but it too must end with a usable rating.
    let mut violations: Vec<String> = Vec::new();
    if cells.len() != sweep.len() {
        violations
            .push(format!("{} of {} sweep cells produced no rating", sweep.len() - cells.len(), sweep.len()));
    }
    for cell in &cells {
        let tag = format!("{}@{:.1}", cell.method.name(), cell.intensity);
        if !cell.error_pct.is_finite() {
            violations.push(format!("{tag}: non-finite rating error"));
        } else if cell.error_pct > FAULTED_MAX_ERR_PCT {
            violations.push(format!(
                "{tag}: error {:.3}% exceeds ceiling {FAULTED_MAX_ERR_PCT}%",
                cell.error_pct
            ));
        }
        if cell.intensity == 0.0 {
            if cell.dropouts > 0 || cell.crashes > 0 {
                violations.push(format!(
                    "{tag}: faults fired in the clean control ({} dropouts, {} crashes)",
                    cell.dropouts, cell.crashes
                ));
            }
            if cell.error_pct > CLEAN_MAX_ERR_PCT {
                violations.push(format!(
                    "{tag}: clean-control error {:.3}% exceeds {CLEAN_MAX_ERR_PCT}%",
                    cell.error_pct
                ));
            }
        }
    }
    let crash_err = (out.improvements[0] - 1.0).abs() * 100.0;
    if !crash_err.is_finite() || crash_err > FAULTED_MAX_ERR_PCT {
        violations.push(format!(
            "crash scenario: terminal rating error {crash_err:.3}% unusable (ceiling {FAULTED_MAX_ERR_PCT}%)"
        ));
    }
    println!();
    if violations.is_empty() {
        println!("ROBUSTNESS: OK ({} cells + crash scenario within bounds)", cells.len());
    } else {
        println!("ROBUSTNESS: FAIL");
        for v in &violations {
            println!("  - {v}");
        }
        std::process::exit(1);
    }
}

/// Clean control cells (intensity 0.0) must self-rate -O3 within this.
const CLEAN_MAX_ERR_PCT: f64 = 5.0;
/// No cell — faulted or not — may degrade past this and still pass.
const FAULTED_MAX_ERR_PCT: f64 = 15.0;

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}
