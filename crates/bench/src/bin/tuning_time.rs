//! Figure 7 (c,d) companion: tuning time normalized to WHL, measured on
//! one Iterative-Elimination *round* (rating all 38 flag-removal
//! candidates against -O3) per method. Search algorithms repeat this
//! round, so the per-round ratio is the figure's bar up to round count.
//!
//! ```text
//! cargo run --release -p peak-bench --bin tuning_time [-- --machine sparc|p4|both]
//! ```

use peak_core::consultant::Method;
use peak_core::rating::{rate, TuningSetup};
use peak_opt::OptConfig;
use peak_sim::{MachineKind, MachineSpec};
use peak_workloads::Dataset;

const BENCHMARKS: [&str; 4] = ["SWIM", "MGRID", "ART", "EQUAKE"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine = args
        .iter()
        .position(|a| a == "--machine")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "both".into());
    let kinds: Vec<MachineKind> = match machine.as_str() {
        "sparc" => vec![MachineKind::SparcII],
        "p4" | "pentium4" => vec![MachineKind::PentiumIV],
        _ => vec![MachineKind::SparcII, MachineKind::PentiumIV],
    };
    let base = OptConfig::o3();
    let candidates: Vec<OptConfig> =
        peak_opt::ALL_FLAGS.iter().map(|&f| base.without(f)).collect();
    for kind in kinds {
        let spec = MachineSpec::of(kind);
        println!(
            "\nTuning time for one IE round (38 candidates), normalized to WHL — {}",
            kind.name()
        );
        println!("{:<10} {:>12} {:>12} {:>12} {:>12} {:>14}", "bench", "CBR", "MBR", "RBR", "AVG", "WHL (cycles)");
        for name in BENCHMARKS {
            let w = peak_workloads::workload_by_name(name).unwrap();
            let mut cells: Vec<Option<u64>> = Vec::new();
            let mut whl_cycles = 0u64;
            for method in [Method::Cbr, Method::Mbr, Method::Rbr, Method::Avg, Method::Whl] {
                let mut setup = TuningSetup::new(w.as_ref(), spec.clone(), Dataset::Train);
                let out = rate(&mut setup, method, base, &candidates);
                if out.is_some() {
                    if method == Method::Whl {
                        whl_cycles = setup.tuning_cycles;
                    }
                    cells.push(Some(setup.tuning_cycles));
                } else {
                    cells.push(None);
                }
            }
            let fmt = |c: &Option<u64>| match c {
                Some(cy) if whl_cycles > 0 => format!("{:>12.4}", *cy as f64 / whl_cycles as f64),
                Some(cy) => format!("{cy:>12}"),
                None => format!("{:>12}", "—"),
            };
            println!(
                "{:<10} {} {} {} {} {:>14}",
                name.to_lowercase(),
                fmt(&cells[0]),
                fmt(&cells[1]),
                fmt(&cells[2]),
                fmt(&cells[3]),
                whl_cycles
            );
        }
    }
}
