//! Regenerate **Table 1**: consistency of rating approaches for the
//! fourteen selected tuning sections.
//!
//! ```text
//! cargo run --release -p peak-bench --bin table1 \
//!     [-- --machine sparc|p4] [--json PATH] [--trace PATH]
//! ```
//!
//! `--trace PATH` writes a JSONL telemetry trace (per-run simulator
//! metrics, window states, Table-1 row provenance) readable with the
//! `peak-trace` binary. Tracing never changes stdout: the confirmation
//! note goes to stderr, and each parallel worker buffers its events so
//! the trace file is written in deterministic benchmark order.
//!
//! For every benchmark, the consultant picks the rating approach (CBR →
//! MBR → RBR); the harness then rates a single `-O3` experimental version
//! against itself, sampling EVALs across windows w ∈ {10,20,40,80,160}
//! and reporting `Mean(StdDev)×100` of the rating error — paper Eq. 7-10.

use peak_bench::render_consistency_row;
use peak_core::consistency::consistency_rows_traced;
use peak_obs::{BufferSink, JsonlSink, TraceSink, Tracer};
use peak_sim::{MachineKind, MachineSpec};
use peak_util::Json;
use std::io::Write;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let machine = arg_value(&args, "--machine").unwrap_or_else(|| "sparc".into());
    let json_path = arg_value(&args, "--json");
    let trace_path = arg_value(&args, "--trace");
    let only = arg_value(&args, "--bench");
    let kind = match machine.as_str() {
        "p4" | "pentium" | "pentium4" => MachineKind::PentiumIV,
        "sparc" => MachineKind::SparcII,
        other => {
            eprintln!("error: unknown machine `{other}` (expected sparc or p4)");
            std::process::exit(1);
        }
    };
    if let Some(b) = &only {
        if peak_workloads::workload_by_name(b).is_none() {
            eprintln!("error: unknown benchmark `{b}`");
            std::process::exit(1);
        }
    }
    let spec = MachineSpec::of(kind);
    println!("Table 1 — Consistency of rating approaches ({})", kind.name());
    println!("Rating error Mean(StdDev)×100 per window size; experimental version = -O3 (self-comparison).");
    println!();
    let workloads: Vec<_> = peak_workloads::all_workloads()
        .into_iter()
        .filter(|w| only.as_deref().is_none_or(|o| w.name().eq_ignore_ascii_case(o)))
        .collect();
    // Parallel across benchmarks on the shared work-stealing pool
    // (`PEAK_THREADS` overrides the size): each cell is an independent
    // job, and `Pool::run` returns results in job order, so stdout, JSON,
    // and trace bytes are identical at any thread count. With `--trace`,
    // each job buffers its events locally; buffers are spliced into the
    // trace file in benchmark order after the pool drains.
    let tracing = trace_path.is_some();
    let pool = peak_core::Pool::from_env();
    let jobs: Vec<_> = workloads
        .iter()
        .map(|w| {
            let spec = &spec;
            move || {
                let (tracer, sink) = if tracing {
                    let sink = Arc::new(BufferSink::new());
                    let tracer = Tracer::to_sink(sink.clone()).with_context(vec![
                        ("benchmark".to_owned(), Json::Str(w.name().to_owned())),
                        ("machine".to_owned(), Json::Str(spec.kind.name().to_owned())),
                    ]);
                    (tracer, Some(sink))
                } else {
                    (Tracer::disabled(), None)
                };
                let rows = consistency_rows_traced(w.as_ref(), spec, &tracer);
                let lines = sink.map(|s| s.drain()).unwrap_or_default();
                (rows, lines)
            }
        })
        .collect();
    let all_rows: Vec<(Vec<peak_core::ConsistencyRow>, Vec<String>)> = pool.run(jobs);
    if let Some(path) = &trace_path {
        let sink = JsonlSink::create(std::path::Path::new(path)).expect("create trace file");
        for (_, lines) in &all_rows {
            sink.append_lines(lines.iter());
        }
        sink.flush();
        eprintln!("trace: wrote {path}");
    }
    let mut flat = Vec::new();
    for (rows, _) in all_rows {
        for row in rows {
            println!("{}", render_consistency_row(&row));
            flat.push(row);
        }
    }
    println!();
    println!("paper shape checks:");
    let shrinking = flat
        .iter()
        .filter(|r| r.cells.last().unwrap().2 < r.cells.first().unwrap().2)
        .count();
    println!(
        "  σ shrinks from w=10 to w=160 in {}/{} rows (paper: 'both metrics decrease with increasing window size')",
        shrinking,
        flat.len()
    );
    if let Some(path) = json_path {
        let json = peak_util::to_string_pretty(&flat);
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(json.as_bytes()))
            .expect("write json");
        println!("  wrote {path}");
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}
