//! Diagnostic: true production-time effect of removing each -O3 flag.
//! `cargo run --release -p peak-bench --bin flag_effects -- [BENCH] [sparc|p4]`
use peak_opt::{OptConfig, ALL_FLAGS};
use peak_sim::MachineSpec;
use peak_workloads::Dataset;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SWIM".into());
    let mach = std::env::args().nth(2).unwrap_or_else(|| "p4".into());
    let spec = if mach == "sparc" { MachineSpec::sparc_ii() } else { MachineSpec::pentium_iv() };
    let Some(w) = peak_workloads::workload_by_name(&name) else {
        eprintln!(
            "error: unknown benchmark `{name}` (try one of: {})",
            peak_workloads::all_workloads()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };
    let base = peak_core::production_time(w.as_ref(), &spec, OptConfig::o3(), Dataset::Train);
    println!("{} on {}: -O3 = {} cycles", w.name(), spec.kind.name(), base);
    let mut effects: Vec<(f64, &str)> = ALL_FLAGS
        .iter()
        .map(|&f| {
            let t = peak_core::production_time(
                w.as_ref(), &spec, OptConfig::o3().without(f), Dataset::Train);
            ((base as f64 / t as f64 - 1.0) * 100.0, f.name())
        })
        .collect();
    effects.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (e, n) in effects {
        if e.abs() > 0.15 {
            println!("  -fno-{n:<24} {e:+7.2}%");
        }
    }
}
