//! Lowering: [`PreparedVersion`] → [`JitVersion`].
//!
//! Walks every function of the compiled program once, building a
//! unified slot frame (variables first, then the function's deduped
//! constant pool), then emits one threaded op per statement plus a
//! standalone spill op at the exact position of every spill event of
//! the pre-decoded stream. Per-block constant costs are taken verbatim
//! from [`PreparedVersion::decoded_blocks`] — the lowering never
//! recomputes costs, it only changes how they are *charged*.

use std::collections::HashMap;

use crate::ops::{self, Op, OpFn, Tag};
use crate::{JitBlock, JitFunc, JitVersion, Term};
use peak_ir::{MemBase, Operand, Rvalue, Stmt, Terminator, Value};
use peak_sim::PreparedVersion;

/// Lowering budgets. The JIT covers the complete IR, so these are the
/// only sources of [`DeoptReason`].
#[derive(Debug, Clone, Copy)]
pub struct JitOptions {
    /// Maximum total statement count lowered per version; larger
    /// versions decline and stay on the predecoded tier.
    pub max_stmts: usize,
}

impl Default for JitOptions {
    fn default() -> Self {
        JitOptions { max_stmts: 1_000_000 }
    }
}

impl JitOptions {
    /// Defaults overridden from the environment
    /// (`PEAK_JIT_MAX_STMTS`). Panics on an unparsable value — a silent
    /// fallback would hide a config typo as a perf regression.
    pub fn from_env() -> Self {
        let mut o = JitOptions::default();
        if let Ok(s) = std::env::var("PEAK_JIT_MAX_STMTS") {
            o.max_stmts = s
                .parse()
                .unwrap_or_else(|_| panic!("PEAK_JIT_MAX_STMTS: not a count: {s:?}"));
        }
        o
    }
}

/// Why a version was not lowered. Declining is always safe — the
/// harness falls back to the predecoded tier for that version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeoptReason {
    /// The version exceeds the lowered-statement budget.
    StmtBudget {
        /// Statements in the version.
        stmts: usize,
        /// Budget it exceeded ([`JitOptions::max_stmts`]).
        max: usize,
    },
}

impl std::fmt::Display for DeoptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeoptReason::StmtBudget { stmts, max } => {
                write!(f, "statement budget: {stmts} stmts > max {max}")
            }
        }
    }
}

/// Hashable identity of a constant operand (F64 by bit pattern, so
/// e.g. two NaN payloads stay distinct and 0.0/-0.0 dedup separately).
#[derive(PartialEq, Eq, Hash)]
enum CKey {
    I(i64),
    F(u64),
    P(u32, i64),
}

impl CKey {
    fn of(v: Value) -> CKey {
        match v {
            Value::I64(x) => CKey::I(x),
            Value::F64(x) => CKey::F(x.to_bits()),
            Value::Ptr(p) => CKey::P(p.mem.0, p.offset),
        }
    }
}

/// Per-function frame layout under construction.
struct Frame {
    num_vars: u32,
    consts: Vec<Value>,
    index: HashMap<CKey, u32>,
}

impl Frame {
    fn new(num_vars: usize) -> Self {
        Frame { num_vars: num_vars as u32, consts: Vec::new(), index: HashMap::new() }
    }

    /// Slot of an operand: variables map to their own index, constants
    /// to a deduped pool slot after the variables.
    fn slot(&mut self, op: &Operand) -> u32 {
        match op {
            Operand::Var(v) => v.0,
            Operand::Const(c) => {
                let (nv, consts) = (self.num_vars, &mut self.consts);
                *self.index.entry(CKey::of(*c)).or_insert_with(|| {
                    consts.push(*c);
                    nv + (consts.len() - 1) as u32
                })
            }
        }
    }
}

/// Lower a prepared version to threaded code, or decline with the
/// reason. Pure function of `pv` and `opts` — the same version always
/// lowers to the same artifact.
pub fn lower(pv: &PreparedVersion, opts: &JitOptions) -> Result<JitVersion, DeoptReason> {
    let prog = &pv.version.program;
    let total: usize =
        prog.funcs.iter().flat_map(|f| f.blocks.iter()).map(|b| b.stmts.len()).sum();
    if total > opts.max_stmts {
        return Err(DeoptReason::StmtBudget { stmts: total, max: opts.max_stmts });
    }

    let mut args_pool: Vec<u32> = Vec::new();
    let mut funcs = Vec::with_capacity(prog.funcs.len());
    let mut n_blocks = 0usize;
    let mut n_ops = 0usize;

    for (fi, f) in prog.funcs.iter().enumerate() {
        let mut fr = Frame::new(f.num_vars());
        let decoded = pv.decoded_blocks(fi);
        let mut blocks = Vec::with_capacity(f.blocks.len());

        for (bi, b) in f.blocks.iter().enumerate() {
            let d = &decoded[bi];
            let mut body: Vec<Op> = Vec::new();
            // Cursor over the block's spill events: each becomes its
            // own op at its exact position (use-spills before the
            // statement body, the def-spill after it).
            let mut evs = d.spills().iter();
            let mut next_ev = evs.next();

            for (si, s) in b.stmts.iter().enumerate() {
                let key = (si as u32) << 1;
                while let Some(e) = next_ev {
                    if e.key() != key {
                        break;
                    }
                    body.push(op1(ops::spill, Tag::Spill, e.slot()));
                    next_ev = evs.next();
                }
                body.push(lower_stmt(s, &mut fr, &mut args_pool));
                let key = key | 1;
                while let Some(e) = next_ev {
                    if e.key() != key {
                        break;
                    }
                    body.push(op1(ops::spill, Tag::Spill, e.slot()));
                    next_ev = evs.next();
                }
            }

            let term = match &b.term {
                Terminator::Jump(t) => Term::Jump(t.0),
                Terminator::Return(v) => {
                    Term::Ret(v.as_ref().map_or(u32::MAX, |op| fr.slot(op)))
                }
                Terminator::Branch { cond, on_true, on_false } => {
                    match fuse_cmp(cond, b.stmts.last(), d.spills(), b.stmts.len()) {
                        Some((cmp, a2, b2, dst)) => {
                            // The popped op is the comparison itself —
                            // `fuse_cmp` verified the last statement is
                            // the fusible compare and carries no spill
                            // events, so nothing was emitted after it.
                            body.pop();
                            Term::CmpBranch {
                                cmp,
                                a: fr.slot(a2),
                                b: fr.slot(b2),
                                dst,
                                on_true: on_true.0,
                                on_false: on_false.0,
                                site_idx: d.site_idx(),
                                taken_extra: d.taken_extra(),
                            }
                        }
                        None => Term::Branch {
                            cond: fr.slot(cond),
                            on_true: on_true.0,
                            on_false: on_false.0,
                            site_idx: d.site_idx(),
                            taken_extra: d.taken_extra(),
                        },
                    }
                }
            };

            n_ops += body.len();
            blocks.push(JitBlock {
                const_cost: d.const_cost(),
                steps: b.stmts.len() as u64 + 1,
                ops: body.into_boxed_slice(),
                term,
            });
        }

        n_blocks += blocks.len();
        let num_vars = f.num_vars() as u32;
        funcs.push(JitFunc {
            num_slots: num_vars + fr.consts.len() as u32,
            const_base: num_vars,
            consts: fr.consts.into_boxed_slice(),
            param_slots: f.params.iter().map(|p| p.0).collect(),
            entry: f.entry.0,
            blocks: blocks.into_boxed_slice(),
        });
    }

    let p = pv.exec_params();
    Ok(JitVersion {
        funcs: funcs.into_boxed_slice(),
        entry: pv.version.func.0,
        args_pool: args_pool.into_boxed_slice(),
        spill_extra: p.spill_extra(),
        spill_sub: p.spill_sub(),
        mispredict_penalty: p.mispredict_penalty(),
        n_blocks,
        n_ops,
    })
}

/// A fusible terminator comparison: the predicate plus its operands
/// and the condition variable it must still define.
type FusedCmp<'a> = (ops::CmpTag, &'a Operand, &'a Operand, u32);

/// Compare-and-branch fusion check: the branch condition must be a
/// variable defined by the block's last statement, that statement must
/// be a pure comparison, and it must carry no spill events (a spill op
/// between compare and branch would change the access order).
fn fuse_cmp<'a>(
    cond: &Operand,
    last: Option<&'a Stmt>,
    spills: &[peak_sim::SpillEv],
    n_stmts: usize,
) -> Option<FusedCmp<'a>> {
    let cv = cond.as_var()?;
    let Some(Stmt::Assign { dst, rv: Rvalue::Binary(bop, a, b) }) = last else {
        return None;
    };
    if *dst != cv {
        return None;
    }
    let cmp = ops::cmp_tag(*bop)?;
    let last_si = (n_stmts - 1) as u32;
    if spills.iter().any(|e| e.key() >> 1 == last_si) {
        return None;
    }
    Some((cmp, a, b, cv.0))
}

fn op1(f: OpFn, tag: Tag, a: u32) -> Op {
    Op { f, dst: 0, a, b: 0, c: 0, imm: 0, tag }
}

/// Lower one statement to one op. Call arguments go into the shared
/// `args_pool`; the op records its slice as (offset, len).
fn lower_stmt(s: &Stmt, fr: &mut Frame, args_pool: &mut Vec<u32>) -> Op {
    let mut op = Op { f: ops::mov, dst: 0, a: 0, b: 0, c: 0, imm: 0, tag: Tag::Mov };
    match s {
        Stmt::Assign { dst, rv } => {
            op.dst = dst.0;
            match rv {
                Rvalue::Use(a) => {
                    op.f = ops::mov;
                    op.a = fr.slot(a);
                }
                Rvalue::Unary(u, a) => {
                    op.f = ops::unop_fn(*u);
                    op.tag = ops::unop_tag(*u);
                    op.a = fr.slot(a);
                }
                Rvalue::Binary(b, a, b2) => {
                    op.f = ops::binop_fn(*b);
                    op.tag = ops::binop_tag(*b);
                    op.a = fr.slot(a);
                    op.b = fr.slot(b2);
                }
                Rvalue::Load(mr) => {
                    op.a = fr.slot(&mr.index);
                    match mr.base {
                        MemBase::Global(m) => {
                            op.f = ops::load_global;
                            op.tag = Tag::LoadG;
                            op.c = m.0;
                        }
                        MemBase::Ptr(p) => {
                            op.f = ops::load_ptr;
                            op.tag = Tag::LoadP;
                            op.c = p.0;
                        }
                    }
                }
                Rvalue::AddrOf(m, idx) => {
                    op.f = ops::addr_of;
                    op.tag = Tag::AddrOf;
                    op.a = fr.slot(idx);
                    op.c = m.0;
                }
                Rvalue::Select { cond, on_true, on_false } => {
                    op.f = ops::select;
                    op.tag = Tag::Select;
                    op.a = fr.slot(cond);
                    op.b = fr.slot(on_true);
                    op.c = fr.slot(on_false);
                }
                Rvalue::Call { func, args } => {
                    op.f = ops::call_val;
                    op.tag = Tag::Ext;
                    op.a = args_pool.len() as u32;
                    op.b = args.len() as u32;
                    op.imm = func.0;
                    for a in args {
                        let s = fr.slot(a);
                        args_pool.push(s);
                    }
                }
            }
        }
        Stmt::Store { dst, src } => {
            op.a = fr.slot(&dst.index);
            op.b = fr.slot(src);
            match dst.base {
                MemBase::Global(m) => {
                    op.f = ops::store_global;
                    op.tag = Tag::StoreG;
                    op.c = m.0;
                }
                MemBase::Ptr(p) => {
                    op.f = ops::store_ptr;
                    op.tag = Tag::StoreP;
                    op.c = p.0;
                }
            }
        }
        Stmt::CallVoid { func, args } => {
            op.f = ops::call_void;
            op.tag = Tag::Ext;
            op.a = args_pool.len() as u32;
            op.b = args.len() as u32;
            op.imm = func.0;
            for a in args {
                let s = fr.slot(a);
                args_pool.push(s);
            }
        }
        Stmt::Prefetch { addr } => {
            op.a = fr.slot(&addr.index);
            match addr.base {
                MemBase::Global(m) => {
                    op.f = ops::prefetch_global;
                    op.tag = Tag::PrefG;
                    op.c = m.0;
                }
                MemBase::Ptr(p) => {
                    op.f = ops::prefetch_ptr;
                    op.tag = Tag::PrefP;
                    op.c = p.0;
                }
            }
        }
        Stmt::CounterInc { counter } => {
            op.f = ops::counter_inc;
            op.tag = Tag::Ext;
            op.a = counter.0;
        }
    }
    op
}
