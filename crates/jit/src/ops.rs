//! The op thunks and the threaded dispatch loop.
//!
//! Every op carries two dispatch routes: a `tag` taken by the inline
//! fast path (a jump table in [`run_func`] whose arms the compiler
//! inlines — no call, no prologue, operands stay in registers) and a
//! plain `fn` pointer thunk used by the [`Tag::Ext`] arm for the long
//! tail (calls, prefetch, counters, rare operators). Both routes share
//! one implementation per op — the `*_impl` helpers — so semantics are
//! defined once. Stateful ops (loads, stores, spills, prefetch)
//! replicate the predecoded executor's access order verbatim — that
//! order is the cycle-exactness contract.

use crate::{JitVersion, Term};
use peak_ir::interp::{eval_binop, eval_unop};
use peak_ir::{BinOp, ExecError as InterpError, MemId, MemoryImage, PtrVal, UnOp, Value};
use peak_sim::{AddressMap, ExecScratch, MachineState, RECURSION_LIMIT, STEP_LIMIT};

/// One threaded-code instruction: a fast-path tag, a thunk for the
/// generic route, and compact operands. `dst`, `a`, `b`, `c` are slot
/// indexes (or raw ids, per op); `imm` holds a callee function index
/// where needed.
pub(crate) struct Op {
    pub(crate) f: OpFn,
    pub(crate) dst: u32,
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
    pub(crate) imm: u32,
    pub(crate) tag: Tag,
}

pub(crate) type OpFn = fn(&Op, &mut [Value], &mut JitCtx) -> Result<(), InterpError>;

/// Fast-path selector. Everything not listed here dispatches through
/// the op's thunk pointer ([`Tag::Ext`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub(crate) enum Tag {
    Mov,
    IAdd,
    ISub,
    IMul,
    IAnd,
    IOr,
    IXor,
    IShl,
    IShr,
    IMin,
    IMax,
    FAdd,
    FSub,
    FMul,
    FDiv,
    IEq,
    INe,
    ILt,
    ILe,
    IGt,
    IGe,
    FcEq,
    FcNe,
    FcLt,
    FcLe,
    FcGt,
    FcGe,
    PtrAdd,
    Select,
    AddrOf,
    LoadG,
    LoadP,
    StoreG,
    StoreP,
    Spill,
    PrefG,
    PrefP,
    Neg,
    Not,
    FNeg,
    IntToF,
    FToInt,
    FAbs,
    FSqrt,
    Ext,
}

/// The fast-path tag for a unary operator.
pub(crate) fn unop_tag(u: UnOp) -> Tag {
    match u {
        UnOp::Neg => Tag::Neg,
        UnOp::Not => Tag::Not,
        UnOp::FNeg => Tag::FNeg,
        UnOp::IntToF => Tag::IntToF,
        UnOp::FToInt => Tag::FToInt,
        UnOp::FAbs => Tag::FAbs,
        UnOp::FSqrt => Tag::FSqrt,
    }
}

/// The fast-path tag for a binary operator, if it has one.
pub(crate) fn binop_tag(b: BinOp) -> Tag {
    match b {
        BinOp::Add => Tag::IAdd,
        BinOp::Sub => Tag::ISub,
        BinOp::Mul => Tag::IMul,
        BinOp::And => Tag::IAnd,
        BinOp::Or => Tag::IOr,
        BinOp::Xor => Tag::IXor,
        BinOp::Shl => Tag::IShl,
        BinOp::Shr => Tag::IShr,
        BinOp::Min => Tag::IMin,
        BinOp::Max => Tag::IMax,
        BinOp::FAdd => Tag::FAdd,
        BinOp::FSub => Tag::FSub,
        BinOp::FMul => Tag::FMul,
        BinOp::FDiv => Tag::FDiv,
        BinOp::Eq => Tag::IEq,
        BinOp::Ne => Tag::INe,
        BinOp::Lt => Tag::ILt,
        BinOp::Le => Tag::ILe,
        BinOp::Gt => Tag::IGt,
        BinOp::Ge => Tag::IGe,
        BinOp::FEq => Tag::FcEq,
        BinOp::FNe => Tag::FcNe,
        BinOp::FLt => Tag::FcLt,
        BinOp::FLe => Tag::FcLe,
        BinOp::FGt => Tag::FcGt,
        BinOp::FGe => Tag::FcGe,
        BinOp::PtrAdd => Tag::PtrAdd,
        // Fallible (Div/Rem) and rare pointer operators take the
        // generic thunk route.
        BinOp::Div | BinOp::Rem | BinOp::PtrEq | BinOp::PtrDiff => Tag::Ext,
    }
}

/// A fused terminator comparison (the compare half of
/// [`Term::CmpBranch`]), evaluated inline — no call on the loop
/// back-edge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CmpTag {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    FEq,
    FNe,
    FLt,
    FLe,
    FGt,
    FGe,
    PtrEq,
}

/// The fusible terminator comparison for `b`, when it is one.
pub(crate) fn cmp_tag(b: BinOp) -> Option<CmpTag> {
    match b {
        BinOp::Eq => Some(CmpTag::Eq),
        BinOp::Ne => Some(CmpTag::Ne),
        BinOp::Lt => Some(CmpTag::Lt),
        BinOp::Le => Some(CmpTag::Le),
        BinOp::Gt => Some(CmpTag::Gt),
        BinOp::Ge => Some(CmpTag::Ge),
        BinOp::FEq => Some(CmpTag::FEq),
        BinOp::FNe => Some(CmpTag::FNe),
        BinOp::FLt => Some(CmpTag::FLt),
        BinOp::FLe => Some(CmpTag::FLe),
        BinOp::FGt => Some(CmpTag::FGt),
        BinOp::FGe => Some(CmpTag::FGe),
        BinOp::PtrEq => Some(CmpTag::PtrEq),
        _ => None,
    }
}

/// Evaluate a fused comparison. Each arm mirrors the corresponding
/// `eval_binop` comparison (which produces `I64(0/1)`, then tested with
/// `is_true` — equivalent to the bool for every comparison operator).
#[inline(always)]
pub(crate) fn cmp_eval(t: CmpTag, a: Value, b: Value) -> bool {
    match t {
        CmpTag::Eq => a.as_i64() == b.as_i64(),
        CmpTag::Ne => a.as_i64() != b.as_i64(),
        CmpTag::Lt => a.as_i64() < b.as_i64(),
        CmpTag::Le => a.as_i64() <= b.as_i64(),
        CmpTag::Gt => a.as_i64() > b.as_i64(),
        CmpTag::Ge => a.as_i64() >= b.as_i64(),
        CmpTag::FEq => a.as_f64() == b.as_f64(),
        CmpTag::FNe => a.as_f64() != b.as_f64(),
        CmpTag::FLt => a.as_f64() < b.as_f64(),
        CmpTag::FLe => a.as_f64() <= b.as_f64(),
        CmpTag::FGt => a.as_f64() > b.as_f64(),
        CmpTag::FGe => a.as_f64() >= b.as_f64(),
        CmpTag::PtrEq => a.as_ptr() == b.as_ptr(),
    }
}

/// Mutable execution state threaded through every thunk.
///
/// Predictor updates happen directly at each branch terminator against
/// the *prepare-time* table index ([`Term::Branch::site_idx`]) — the
/// per-branch site hash is gone from the hot loop. A staged variant
/// committing through [`peak_sim::BranchPredictor::commit`] was built
/// and gated (`batched_commit_matches_sequential`), but profiling
/// showed the staging stores cost more per branch than the hash they
/// amortise once indices are precomputed, so the direct path ships;
/// the batched API remains the proven-equivalent bulk-replay
/// primitive.
pub(crate) struct JitCtx<'a> {
    pub(crate) jv: &'a JitVersion,
    pub(crate) mem: &'a mut MemoryImage,
    pub(crate) amap: &'a AddressMap,
    pub(crate) state: &'a mut MachineState,
    pub(crate) scratch: &'a mut ExecScratch,
    pub(crate) counters: Vec<u64>,
    pub(crate) writes: Vec<(MemId, i64, Value)>,
    pub(crate) record_writes: bool,
    pub(crate) steps: u64,
    pub(crate) cycles: u64,
    pub(crate) depth: usize,
}

/// Execute one op. `#[inline(always)]` so the `run_func` dispatch loop
/// compiles to a single jump table with the arm bodies inlined; only
/// [`Tag::Ext`] pays an indirect call.
#[inline(always)]
fn exec_op(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    macro_rules! ibin {
        ($x:ident, $y:ident, $e:expr) => {{
            let $x = slots[op.a as usize].as_i64();
            let $y = slots[op.b as usize].as_i64();
            slots[op.dst as usize] = Value::I64($e);
        }};
    }
    macro_rules! fbin {
        ($x:ident, $y:ident, $e:expr) => {{
            let $x = slots[op.a as usize].as_f64();
            let $y = slots[op.b as usize].as_f64();
            slots[op.dst as usize] = Value::F64($e);
        }};
    }
    macro_rules! icmp {
        ($x:ident, $y:ident, $e:expr) => {{
            let $x = slots[op.a as usize].as_i64();
            let $y = slots[op.b as usize].as_i64();
            slots[op.dst as usize] = Value::I64($e as i64);
        }};
    }
    macro_rules! fcmp {
        ($x:ident, $y:ident, $e:expr) => {{
            let $x = slots[op.a as usize].as_f64();
            let $y = slots[op.b as usize].as_f64();
            slots[op.dst as usize] = Value::I64($e as i64);
        }};
    }
    // Every arm mirrors the corresponding `eval_binop` arm exactly
    // (wrapping integer arithmetic, bit-pattern float semantics); the
    // differential suites in `tests/parity.rs` pin the equivalence.
    match op.tag {
        Tag::Mov => slots[op.dst as usize] = slots[op.a as usize],
        Tag::IAdd => ibin!(x, y, x.wrapping_add(y)),
        Tag::ISub => ibin!(x, y, x.wrapping_sub(y)),
        Tag::IMul => ibin!(x, y, x.wrapping_mul(y)),
        Tag::IAnd => ibin!(x, y, x & y),
        Tag::IOr => ibin!(x, y, x | y),
        Tag::IXor => ibin!(x, y, x ^ y),
        Tag::IShl => ibin!(x, y, x.wrapping_shl(y as u32 & 63)),
        Tag::IShr => ibin!(x, y, x.wrapping_shr(y as u32 & 63)),
        Tag::IMin => ibin!(x, y, x.min(y)),
        Tag::IMax => ibin!(x, y, x.max(y)),
        Tag::FAdd => fbin!(x, y, x + y),
        Tag::FSub => fbin!(x, y, x - y),
        Tag::FMul => fbin!(x, y, x * y),
        Tag::FDiv => fbin!(x, y, x / y),
        Tag::IEq => icmp!(x, y, x == y),
        Tag::INe => icmp!(x, y, x != y),
        Tag::ILt => icmp!(x, y, x < y),
        Tag::ILe => icmp!(x, y, x <= y),
        Tag::IGt => icmp!(x, y, x > y),
        Tag::IGe => icmp!(x, y, x >= y),
        Tag::FcEq => fcmp!(x, y, x == y),
        Tag::FcNe => fcmp!(x, y, x != y),
        Tag::FcLt => fcmp!(x, y, x < y),
        Tag::FcLe => fcmp!(x, y, x <= y),
        Tag::FcGt => fcmp!(x, y, x > y),
        Tag::FcGe => fcmp!(x, y, x >= y),
        Tag::PtrAdd => {
            let p = slots[op.a as usize].as_ptr();
            let off = slots[op.b as usize].as_i64();
            slots[op.dst as usize] = Value::Ptr(PtrVal { mem: p.mem, offset: p.offset + off });
        }
        Tag::Select => select_impl(op, slots),
        Tag::AddrOf => addr_of_impl(op, slots),
        Tag::LoadG => return load_global_impl(op, slots, ctx),
        Tag::LoadP => return load_ptr_impl(op, slots, ctx),
        Tag::StoreG => return store_global_impl(op, slots, ctx),
        Tag::StoreP => return store_ptr_impl(op, slots, ctx),
        Tag::Spill => spill_impl(op, ctx),
        Tag::PrefG => prefetch_global_impl(op, slots, ctx),
        Tag::PrefP => prefetch_ptr_impl(op, slots, ctx),
        // Unary arms mirror `eval_unop` arm for arm.
        Tag::Neg => {
            slots[op.dst as usize] = Value::I64(slots[op.a as usize].as_i64().wrapping_neg())
        }
        Tag::Not => slots[op.dst as usize] = Value::I64(!slots[op.a as usize].as_i64()),
        Tag::FNeg => slots[op.dst as usize] = Value::F64(-slots[op.a as usize].as_f64()),
        Tag::IntToF => {
            slots[op.dst as usize] = Value::F64(slots[op.a as usize].as_i64() as f64)
        }
        Tag::FToInt => {
            slots[op.dst as usize] = Value::I64(slots[op.a as usize].as_f64() as i64)
        }
        Tag::FAbs => slots[op.dst as usize] = Value::F64(slots[op.a as usize].as_f64().abs()),
        Tag::FSqrt => {
            slots[op.dst as usize] = Value::F64(slots[op.a as usize].as_f64().sqrt())
        }
        Tag::Ext => return (op.f)(op, slots, ctx),
    }
    Ok(())
}

/// Execute one call of function `fidx` (the threaded analogue of the
/// predecoded executor's `Ctx::call`).
pub(crate) fn run_func(
    ctx: &mut JitCtx<'_>,
    fidx: u32,
    args: &[Value],
) -> Result<Option<Value>, InterpError> {
    if ctx.depth > RECURSION_LIMIT {
        return Err(InterpError::RecursionLimit);
    }
    ctx.depth += 1;
    let jv = ctx.jv;
    let jf = &jv.funcs[fidx as usize];
    let mut slots = ctx.scratch.take_regs(jf.num_slots as usize);
    slots[jf.const_base as usize..].copy_from_slice(&jf.consts);
    for (&p, a) in jf.param_slots.iter().zip(args) {
        slots[p as usize] = *a;
    }
    let mut bb = jf.entry;
    loop {
        let blk = &jf.blocks[bb as usize];
        // All data-independent costs of this block, in one add.
        ctx.cycles += blk.const_cost;
        ctx.steps += blk.steps;
        if ctx.steps > STEP_LIMIT {
            return Err(InterpError::StepLimit);
        }
        for op in blk.ops.iter() {
            exec_op(op, &mut slots, ctx)?;
        }
        match blk.term {
            Term::Jump(t) => bb = t,
            Term::Branch { cond, on_true, on_false, site_idx, taken_extra } => {
                let taken = slots[cond as usize].is_true();
                if ctx.state.predictor.mispredicted_at(site_idx as usize, taken) {
                    ctx.cycles += ctx.jv.mispredict_penalty;
                }
                if taken {
                    ctx.cycles += taken_extra;
                }
                bb = if taken { on_true } else { on_false };
            }
            Term::CmpBranch { cmp, a, b, dst, on_true, on_false, site_idx, taken_extra } => {
                let taken = cmp_eval(cmp, slots[a as usize], slots[b as usize]);
                // The comparison still defines its variable (0/1), so
                // any later read of it sees the same value as unfused.
                slots[dst as usize] = Value::I64(taken as i64);
                if ctx.state.predictor.mispredicted_at(site_idx as usize, taken) {
                    ctx.cycles += ctx.jv.mispredict_penalty;
                }
                if taken {
                    ctx.cycles += taken_extra;
                }
                bb = if taken { on_true } else { on_false };
            }
            Term::Ret(slot) => {
                let ret =
                    if slot == u32::MAX { None } else { Some(slots[slot as usize]) };
                ctx.scratch.put_regs(slots);
                ctx.depth -= 1;
                return Ok(ret);
            }
        }
    }
}

// ---- operator thunks (monomorphized per variant) ----
//
// The tagged operators keep a thunk too (the `f` field is always
// valid), but only `Tag::Ext` ops are ever dispatched through it.

macro_rules! unop_thunks {
    ($($name:ident => $v:ident),+ $(,)?) => {
        $(fn $name(op: &Op, slots: &mut [Value], _ctx: &mut JitCtx) -> Result<(), InterpError> {
            slots[op.dst as usize] = eval_unop(UnOp::$v, slots[op.a as usize]);
            Ok(())
        })+
        pub(crate) fn unop_fn(u: UnOp) -> OpFn {
            match u { $(UnOp::$v => $name,)+ }
        }
    };
}

unop_thunks! {
    un_neg => Neg, un_not => Not, un_fneg => FNeg, un_int_to_f => IntToF,
    un_f_to_int => FToInt, un_fabs => FAbs, un_fsqrt => FSqrt,
}

macro_rules! binop_thunks {
    ($($name:ident => $v:ident),+ $(,)?) => {
        $(fn $name(op: &Op, slots: &mut [Value], _ctx: &mut JitCtx) -> Result<(), InterpError> {
            slots[op.dst as usize] =
                eval_binop(BinOp::$v, slots[op.a as usize], slots[op.b as usize])?;
            Ok(())
        })+
        pub(crate) fn binop_fn(b: BinOp) -> OpFn {
            match b { $(BinOp::$v => $name,)+ }
        }
    };
}

binop_thunks! {
    bin_add => Add, bin_sub => Sub, bin_mul => Mul, bin_div => Div, bin_rem => Rem,
    bin_and => And, bin_or => Or, bin_xor => Xor, bin_shl => Shl, bin_shr => Shr,
    bin_min => Min, bin_max => Max,
    bin_fadd => FAdd, bin_fsub => FSub, bin_fmul => FMul, bin_fdiv => FDiv,
    bin_eq => Eq, bin_ne => Ne, bin_lt => Lt, bin_le => Le, bin_gt => Gt, bin_ge => Ge,
    bin_feq => FEq, bin_fne => FNe, bin_flt => FLt, bin_fle => FLe, bin_fgt => FGt,
    bin_fge => FGe,
    bin_ptr_add => PtrAdd, bin_ptr_eq => PtrEq, bin_ptr_diff => PtrDiff,
}

// ---- data-movement and memory ops (shared impls) ----

pub(crate) fn mov(op: &Op, slots: &mut [Value], _ctx: &mut JitCtx) -> Result<(), InterpError> {
    slots[op.dst as usize] = slots[op.a as usize];
    Ok(())
}

#[inline(always)]
fn select_impl(op: &Op, slots: &mut [Value]) {
    slots[op.dst as usize] = if slots[op.a as usize].is_true() {
        slots[op.b as usize]
    } else {
        slots[op.c as usize]
    };
}

pub(crate) fn select(op: &Op, slots: &mut [Value], _ctx: &mut JitCtx) -> Result<(), InterpError> {
    select_impl(op, slots);
    Ok(())
}

#[inline(always)]
fn addr_of_impl(op: &Op, slots: &mut [Value]) {
    slots[op.dst as usize] =
        Value::Ptr(PtrVal { mem: MemId(op.c), offset: slots[op.a as usize].as_i64() });
}

pub(crate) fn addr_of(op: &Op, slots: &mut [Value], _ctx: &mut JitCtx) -> Result<(), InterpError> {
    addr_of_impl(op, slots);
    Ok(())
}

#[inline(always)]
fn load_global_impl(
    op: &Op,
    slots: &mut [Value],
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    let m = MemId(op.c);
    let idx = slots[op.a as usize].as_i64();
    let len = ctx.mem.buf(m).len();
    if idx < 0 || idx as usize >= len {
        return Err(InterpError::OutOfBounds { mem: m.0, index: idx, len });
    }
    ctx.cycles += ctx.state.caches.access(ctx.amap.addr(m, idx));
    slots[op.dst as usize] = ctx.mem.load(m, idx);
    Ok(())
}

pub(crate) fn load_global(
    op: &Op,
    slots: &mut [Value],
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    load_global_impl(op, slots, ctx)
}

#[inline(always)]
fn load_ptr_impl(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    let p = slots[op.c as usize].as_ptr();
    let (m, idx) = (p.mem, p.offset + slots[op.a as usize].as_i64());
    let len = ctx.mem.buf(m).len();
    if idx < 0 || idx as usize >= len {
        return Err(InterpError::OutOfBounds { mem: m.0, index: idx, len });
    }
    ctx.cycles += ctx.state.caches.access(ctx.amap.addr(m, idx));
    slots[op.dst as usize] = ctx.mem.load(m, idx);
    Ok(())
}

pub(crate) fn load_ptr(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    load_ptr_impl(op, slots, ctx)
}

#[inline(always)]
fn store_at(
    m: MemId,
    idx: i64,
    src: Value,
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    let len = ctx.mem.buf(m).len();
    if idx < 0 || idx as usize >= len {
        return Err(InterpError::OutOfBounds { mem: m.0, index: idx, len });
    }
    ctx.cycles += ctx.state.caches.access(ctx.amap.addr(m, idx));
    if ctx.record_writes && ctx.scratch.first_write(m.0, idx) {
        // Inspector: log the pre-write value (undo log); the inspector
        // code itself costs cycles.
        ctx.writes.push((m, idx, ctx.mem.load(m, idx)));
        ctx.cycles += 3;
    }
    ctx.mem.store(m, idx, src);
    Ok(())
}

#[inline(always)]
fn store_global_impl(
    op: &Op,
    slots: &mut [Value],
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    let idx = slots[op.a as usize].as_i64();
    store_at(MemId(op.c), idx, slots[op.b as usize], ctx)
}

pub(crate) fn store_global(
    op: &Op,
    slots: &mut [Value],
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    store_global_impl(op, slots, ctx)
}

#[inline(always)]
fn store_ptr_impl(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    let p = slots[op.c as usize].as_ptr();
    let idx = p.offset + slots[op.a as usize].as_i64();
    store_at(p.mem, idx, slots[op.b as usize], ctx)
}

pub(crate) fn store_ptr(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    store_ptr_impl(op, slots, ctx)
}

#[inline(always)]
fn prefetch_global_impl(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) {
    // Best-effort: ignore out-of-bounds addresses.
    let m = MemId(op.c);
    let idx = slots[op.a as usize].as_i64();
    let len = ctx.mem.buf(m).len() as i64;
    if idx >= 0 && idx < len {
        ctx.state.caches.prefetch(ctx.amap.addr(m, idx));
    }
}

pub(crate) fn prefetch_global(
    op: &Op,
    slots: &mut [Value],
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    prefetch_global_impl(op, slots, ctx);
    Ok(())
}

#[inline(always)]
fn prefetch_ptr_impl(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) {
    let p = slots[op.c as usize].as_ptr();
    let (m, idx) = (p.mem, p.offset + slots[op.a as usize].as_i64());
    let len = ctx.mem.buf(m).len() as i64;
    if idx >= 0 && idx < len {
        ctx.state.caches.prefetch(ctx.amap.addr(m, idx));
    }
}

pub(crate) fn prefetch_ptr(
    op: &Op,
    slots: &mut [Value],
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    prefetch_ptr_impl(op, slots, ctx);
    Ok(())
}

pub(crate) fn counter_inc(
    op: &Op,
    _slots: &mut [Value],
    ctx: &mut JitCtx,
) -> Result<(), InterpError> {
    let i = op.a as usize;
    if i >= ctx.counters.len() {
        ctx.counters.resize(i + 1, 0);
    }
    ctx.counters[i] += 1;
    Ok(())
}

/// Spill-slot access (load or store — the cost model treats them
/// identically): through the cache, plus the machine's spill overhead,
/// minus what post-RA scheduling hides; at least 1 cycle.
#[inline(always)]
fn spill_impl(op: &Op, ctx: &mut JitCtx) {
    let addr = ctx.amap.spill_addr(op.a);
    let mut c = ctx.state.caches.access(addr) + ctx.jv.spill_extra;
    c = c.saturating_sub(ctx.jv.spill_sub);
    ctx.cycles += c.max(1);
}

pub(crate) fn spill(op: &Op, _slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    spill_impl(op, ctx);
    Ok(())
}

pub(crate) fn call_val(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    let (off, len) = (op.a as usize, op.b as usize);
    let mut vals = ctx.scratch.take_vals();
    for &s in &ctx.jv.args_pool[off..off + len] {
        vals.push(slots[s as usize]);
    }
    let r = run_func(ctx, op.imm, &vals)?;
    ctx.scratch.put_vals(vals);
    slots[op.dst as usize] = r.expect("value call of void function");
    Ok(())
}

pub(crate) fn call_void(op: &Op, slots: &mut [Value], ctx: &mut JitCtx) -> Result<(), InterpError> {
    let (off, len) = (op.a as usize, op.b as usize);
    let mut vals = ctx.scratch.take_vals();
    for &s in &ctx.jv.args_pool[off..off + len] {
        vals.push(slots[s as usize]);
    }
    run_func(ctx, op.imm, &vals)?;
    ctx.scratch.put_vals(vals);
    Ok(())
}
