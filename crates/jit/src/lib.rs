//! # peak-jit — the threaded-code native execution tier
//!
//! Lowers a [`PreparedVersion`] into **threaded code**: every basic
//! block becomes a flat array of monomorphized op thunks (plain Rust
//! function pointers — no `unsafe`, no mmap) over a *unified slot
//! frame* in which variables and constants share one `Vec<Value>`, so
//! every operand is a bare index and the per-statement `Stmt`/`Rvalue`/
//! `Operand` match cascade of the interpreting tiers disappears
//! entirely.
//!
//! ## Cycle-exactness
//!
//! The lowering charges costs from the *same* pre-decoded artifact the
//! predecoded tier executes ([`PreparedVersion::decoded_blocks`]): each
//! block's folded constant cost is charged in one add, and the only
//! cost-model work left in the op stream is the *stateful* accessors —
//! data-cache lines, branch-predictor entries, spill-slot traffic —
//! compiled in as thunks at exactly their original positions. Constant
//! cycle charges commute (only their sum enters `true_cycles`), and the
//! stateful access order is preserved, so results are bit-identical to
//! both interpreting tiers. The differential goldens in `peak-core`
//! byte-compare all three tiers over the full 42-scenario grid plus the
//! passfuzz corpus.
//!
//! Notable lowering decisions, all parity-preserving:
//!
//! * **Spill ops**: the predecoded tier walks a sorted spill-event
//!   stream with a cursor per statement; here each event is its own
//!   thunk emitted at its exact position, removing the cursor from the
//!   hot loop.
//! * **Compare-and-branch fusion**: when a block ends with a
//!   comparison feeding its own conditional branch and the comparison
//!   carries no spill events, the compare runs inside the terminator
//!   (one dispatch less per loop iteration). The 0/1 result is still
//!   written to its destination slot, so later reads are unaffected.
//! * **Monomorphized operators**: one thunk per `BinOp`/`UnOp` variant,
//!   each calling the canonical `eval_binop`/`eval_unop` with a
//!   *constant* operator — the compiler folds the operator match away
//!   while the semantics stay defined in exactly one place (`peak-ir`).
//!
//! ## Coverage and deopt
//!
//! The lowering covers the complete IR. It *declines* (returns a
//! [`DeoptReason`]) only on resource budgets — `PEAK_JIT_MAX_STMTS`
//! caps the lowered statement count — and the harness then permanently
//! falls back to the predecoded tier for that version (`jit.deopt`
//! trace event, `core.jit.deopts` metric). Declining is always safe:
//! tiers are execution engines, never semantics.

#![warn(missing_docs)]

mod lower;
mod ops;

pub use lower::{lower, DeoptReason, JitOptions};

use peak_ir::{MemoryImage, Value};
use peak_sim::{
    AddressMap, ExecError, ExecOptions, ExecResult, ExecScratch, MachineState, PreparedVersion,
    TierBackend,
};

/// One function lowered to threaded code.
pub(crate) struct JitFunc {
    /// Frame size: variables first, then the constant pool image.
    pub(crate) num_slots: u32,
    /// First constant slot (== the function's variable count).
    pub(crate) const_base: u32,
    /// Constant pool image copied into the frame tail on entry.
    pub(crate) consts: Box<[Value]>,
    /// Variable slot of each parameter, in order.
    pub(crate) param_slots: Box<[u32]>,
    /// Entry block index.
    pub(crate) entry: u32,
    pub(crate) blocks: Box<[JitBlock]>,
}

/// One basic block: folded constants plus the stateful op stream.
pub(crate) struct JitBlock {
    /// All data-independent cycles of one execution, in one add
    /// (mirrors `DecodedBlock::const_cost` verbatim).
    pub(crate) const_cost: u64,
    /// Step-budget charge per execution (`stmts.len() + 1`).
    pub(crate) steps: u64,
    pub(crate) ops: Box<[ops::Op]>,
    pub(crate) term: Term,
}

/// Block terminator in threaded form.
pub(crate) enum Term {
    Jump(u32),
    Branch { cond: u32, on_true: u32, on_false: u32, site_idx: u32, taken_extra: u64 },
    /// Fused comparison + conditional branch; still writes the 0/1
    /// result to `dst`. The comparison is a [`ops::CmpTag`] evaluated
    /// inline — no call on the loop back-edge.
    CmpBranch {
        cmp: ops::CmpTag,
        a: u32,
        b: u32,
        dst: u32,
        on_true: u32,
        on_false: u32,
        site_idx: u32,
        taken_extra: u64,
    },
    /// Return; `u32::MAX` = no value.
    Ret(u32),
}

/// A version lowered to threaded code: the native-tier artifact
/// attached to a [`PreparedVersion`] and executed through
/// [`TierBackend`]. Immutable once built; shared across harnesses via
/// the version cache.
pub struct JitVersion {
    pub(crate) funcs: Box<[JitFunc]>,
    pub(crate) entry: u32,
    /// Shared argument-slot pool for all call sites (offset/len per op).
    pub(crate) args_pool: Box<[u32]>,
    pub(crate) spill_extra: u64,
    pub(crate) spill_sub: u64,
    pub(crate) mispredict_penalty: u64,
    pub(crate) n_blocks: usize,
    pub(crate) n_ops: usize,
}

impl JitVersion {
    /// Basic blocks lowered.
    pub fn blocks(&self) -> usize {
        self.n_blocks
    }

    /// Op thunks emitted across all blocks.
    pub fn op_count(&self) -> usize {
        self.n_ops
    }

    /// Functions lowered.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }
}

impl std::fmt::Debug for JitVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitVersion")
            .field("funcs", &self.funcs.len())
            .field("blocks", &self.n_blocks)
            .field("ops", &self.n_ops)
            .finish()
    }
}

impl TierBackend for JitVersion {
    fn execute(
        &self,
        args: &[Value],
        mem: &mut MemoryImage,
        amap: &AddressMap,
        state: &mut MachineState,
        opts: &ExecOptions,
        scratch: &mut ExecScratch,
    ) -> Result<ExecResult, ExecError> {
        peak_sim::fault_preamble(state)?;
        if opts.record_writes {
            scratch.begin_write_log();
        }
        let mut ctx = ops::JitCtx {
            jv: self,
            mem,
            amap,
            state,
            scratch,
            counters: vec![0; opts.num_counters],
            writes: Vec::new(),
            record_writes: opts.record_writes,
            steps: 0,
            cycles: 0,
            depth: 0,
        };
        let ret = ops::run_func(&mut ctx, self.entry, args)?;
        ctx.state.cycles += ctx.cycles;
        ctx.state.instructions += ctx.steps;
        Ok(ExecResult {
            ret,
            true_cycles: ctx.cycles,
            counters: ctx.counters,
            writes: ctx.writes,
        })
    }

    fn blocks_compiled(&self) -> usize {
        self.n_blocks
    }
}

/// Lower `pv` and attach the artifact as its native backend, or record
/// the refusal. Thin convenience over
/// [`PreparedVersion::native_backend`] + [`lower`] for callers that do
/// not need the deopt reason.
pub fn backend_for<'a>(
    pv: &'a PreparedVersion,
    opts: &JitOptions,
) -> Option<&'a std::sync::Arc<dyn TierBackend>> {
    pv.native_backend(|pv| lower(pv, opts).ok().map(|jv| {
        std::sync::Arc::new(jv) as std::sync::Arc<dyn TierBackend>
    }))
}
