//! Bit-identity of the jit tier against the predecoded executor: same
//! results, same cycle counts, same persistent machine state, across
//! the real workload suite, hand-built edge-case kernels, and a
//! generated-program sweep.

use peak_ir::{BinOp, FunctionBuilder, MemRef, MemoryImage, Program, Type, Value};
use peak_jit::{lower, JitOptions};
use peak_opt::OptConfig;
use peak_sim::{
    AddressMap, ExecOptions, ExecResult, ExecScratch, MachineSpec, MachineState, PreparedVersion,
    TierBackend,
};
use peak_workloads::{fuzzgen, Dataset, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn amap_for(prog: &Program) -> AddressMap {
    AddressMap::new(&prog.mems.iter().map(|m| m.len).collect::<Vec<_>>())
}

fn assert_same(p: &ExecResult, j: &ExecResult, what: &str) {
    assert_eq!(p.ret, j.ret, "{what}: return value");
    assert_eq!(p.true_cycles, j.true_cycles, "{what}: true cycles");
    assert_eq!(p.counters, j.counters, "{what}: counters");
    assert_eq!(p.writes, j.writes, "{what}: write log");
}

/// Drive one workload for a few invocations under both tiers with
/// identically-seeded state streams and compare everything bitwise.
fn workload_parity(w: &dyn Workload, config: OptConfig, spec: MachineSpec, invocations: usize) {
    let cv = peak_opt::optimize(w.program(), w.ts(), &config);
    let amap = amap_for(&cv.program);
    let pv = PreparedVersion::prepare(cv, &spec);
    let jv = lower(&pv, &JitOptions::default()).expect("workloads fit the default budget");
    let opts = ExecOptions { record_writes: true, num_counters: 0 };

    let run = |jit: bool| -> (Vec<ExecResult>, u64, u64) {
        let mut mem = MemoryImage::new(&pv.version.program);
        let mut rng = StdRng::seed_from_u64(7);
        w.setup(Dataset::Train, &mut mem, &mut rng);
        let mut state = MachineState::noiseless(spec.clone());
        let mut scratch = ExecScratch::new();
        let mut out = Vec::new();
        for inv in 0..invocations {
            let args = w.args(Dataset::Train, inv, &mut mem, &mut rng);
            let r = if jit {
                jv.execute(&args, &mut mem, &amap, &mut state, &opts, &mut scratch)
            } else {
                peak_sim::execute_with_scratch(
                    &pv,
                    &args,
                    &mut mem,
                    &amap,
                    &mut state,
                    &opts,
                    &mut scratch,
                )
            };
            out.push(r.expect("workload invocations do not trap"));
        }
        (out, state.cycles, state.instructions)
    };

    let (pr, pc, pi) = run(false);
    let (jr, jc, ji) = run(true);
    let what = format!("{} / {:?}", w.name(), spec.kind);
    for (p, j) in pr.iter().zip(&jr) {
        assert_same(p, j, &what);
    }
    assert_eq!(pc, jc, "{what}: accumulated state cycles");
    assert_eq!(pi, ji, "{what}: accumulated instructions");
}

#[test]
fn workloads_bit_identical_across_machines_and_configs() {
    let configs = [OptConfig::o0(), OptConfig::o3(), OptConfig::from_bits(0x5555_5555)];
    for w in peak_workloads::all_workloads() {
        for spec in [MachineSpec::sparc_ii(), MachineSpec::pentium_iv()] {
            for config in &configs {
                workload_parity(w.as_ref(), *config, spec.clone(), 4);
            }
        }
    }
}

/// The fused compare-and-branch must still define the condition
/// variable: both successors here read it after the branch.
#[test]
fn cmp_branch_fusion_still_defines_condition() {
    let mut prog = Program::new();
    let mut b = FunctionBuilder::new("fused", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let c = b.var("c", Type::I64);
    let t = b.new_block();
    let f = b.new_block();
    b.assign(c, peak_ir::Rvalue::Binary(BinOp::Lt, n.into(), peak_ir::Operand::const_i64(10)));
    b.branch(c, t, f);
    b.switch_to(t);
    let x = b.binary(BinOp::Add, c, 100i64);
    b.ret(Some(x.into()));
    b.switch_to(f);
    let y = b.binary(BinOp::Add, c, 200i64);
    b.ret(Some(y.into()));
    let func = prog.add_func(b.finish());

    for config in [OptConfig::o0(), OptConfig::o3()] {
        let cv = peak_opt::optimize(&prog, func, &config);
        let amap = amap_for(&cv.program);
        let spec = MachineSpec::sparc_ii();
        let pv = PreparedVersion::prepare(cv, &spec);
        let jv = lower(&pv, &JitOptions::default()).unwrap();
        for nv in [3i64, 10, 50] {
            let args = [Value::I64(nv)];
            let opts = ExecOptions::default();
            let mut scratch = ExecScratch::new();
            let mut mem_p = MemoryImage::new(&pv.version.program);
            let mut st_p = MachineState::noiseless(spec.clone());
            let p = peak_sim::execute_with_scratch(
                &pv, &args, &mut mem_p, &amap, &mut st_p, &opts, &mut scratch,
            )
            .unwrap();
            let mut mem_j = MemoryImage::new(&pv.version.program);
            let mut st_j = MachineState::noiseless(spec.clone());
            let j = jv
                .execute(&args, &mut mem_j, &amap, &mut st_j, &opts, &mut scratch)
                .unwrap();
            assert_same(&p, &j, "fused cmp-branch");
            // The expected value also pins the semantics directly.
            let want = if nv < 10 { 101 } else { 200 };
            assert_eq!(j.ret, Some(Value::I64(want)));
        }
    }
}

/// A comparison that overwrites one of its own operands (`c = c < n`)
/// must read the pre-write value in the fused form too.
#[test]
fn cmp_branch_fusion_self_overwrite() {
    let mut prog = Program::new();
    let m = prog.add_mem("m", Type::I64, 8);
    let mut b = FunctionBuilder::new("selfcmp", Some(Type::I64));
    let n = b.param("n", Type::I64);
    let c = b.var("c", Type::I64);
    let t = b.new_block();
    let f = b.new_block();
    b.copy(c, 5i64);
    b.assign(c, peak_ir::Rvalue::Binary(BinOp::Lt, c.into(), n.into()));
    b.branch(c, t, f);
    b.switch_to(t);
    b.store(MemRef::global(m, 0i64), c);
    b.ret(Some(c.into()));
    b.switch_to(f);
    b.ret(Some(c.into()));
    let func = prog.add_func(b.finish());

    let cv = peak_opt::optimize(&prog, func, &OptConfig::o3());
    let amap = amap_for(&cv.program);
    let spec = MachineSpec::pentium_iv();
    let pv = PreparedVersion::prepare(cv, &spec);
    let jv = lower(&pv, &JitOptions::default()).unwrap();
    let mut scratch = ExecScratch::new();
    for nv in [0i64, 6] {
        let args = [Value::I64(nv)];
        let opts = ExecOptions::default();
        let mut mem = MemoryImage::new(&pv.version.program);
        let mut st = MachineState::noiseless(spec.clone());
        let p = peak_sim::execute_with_scratch(
            &pv, &args, &mut mem, &amap, &mut st, &opts, &mut scratch,
        )
        .unwrap();
        let mut mem = MemoryImage::new(&pv.version.program);
        let mut st = MachineState::noiseless(spec.clone());
        let j = jv.execute(&args, &mut mem, &amap, &mut st, &opts, &mut scratch).unwrap();
        assert_same(&p, &j, "self-overwrite cmp");
        assert_eq!(j.ret, Some(Value::I64((5 < nv) as i64)));
    }
}

#[test]
fn generated_programs_parity_sweep() {
    let spec = MachineSpec::sparc_ii();
    let opts = ExecOptions::default();
    let mut scratch = ExecScratch::new();
    for seed in 0..300u64 {
        let stmts = fuzzgen::gen_stmts(seed);
        let (prog, func) = fuzzgen::build_program(&stmts);
        let args = fuzzgen::gen_args(seed);
        let (want, _) = fuzzgen::run_reference(&prog, func, &args);
        for config in [OptConfig::o0(), OptConfig::o3()] {
            let cv = peak_opt::optimize(&prog, func, &config);
            let amap = amap_for(&cv.program);
            let pv = PreparedVersion::prepare(cv, &spec);
            let jv = lower(&pv, &JitOptions::default()).unwrap();
            let mut mem = fuzzgen::init_memory(&pv.version.program);
            let mut st = MachineState::noiseless(spec.clone());
            let p = peak_sim::execute_with_scratch(
                &pv, &args, &mut mem, &amap, &mut st, &opts, &mut scratch,
            )
            .unwrap();
            let mut mem = fuzzgen::init_memory(&pv.version.program);
            let mut st = MachineState::noiseless(spec.clone());
            let j =
                jv.execute(&args, &mut mem, &amap, &mut st, &opts, &mut scratch).unwrap();
            assert_same(&p, &j, &format!("fuzz seed {seed}"));
            assert_eq!(j.ret, want, "fuzz seed {seed}: vs reference interpreter");
        }
    }
}

#[test]
fn stmt_budget_declines_and_refusal_is_remembered() {
    let w = peak_workloads::workload_by_name("SWIM").unwrap();
    let cv = peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3());
    let spec = MachineSpec::sparc_ii();
    let pv = PreparedVersion::prepare(cv, &spec);

    let err = lower(&pv, &JitOptions { max_stmts: 1 }).unwrap_err();
    assert!(err.to_string().contains("budget"), "reason names the budget: {err}");

    // A refusal through the native slot is remembered: a later call
    // with a permissive budget must not re-lower.
    assert!(peak_jit::backend_for(&pv, &JitOptions { max_stmts: 1 }).is_none());
    assert!(peak_jit::backend_for(&pv, &JitOptions::default()).is_none());

    // A fresh prepared version with the permissive budget lowers fine.
    let cv = peak_opt::optimize(w.program(), w.ts(), &OptConfig::o3());
    let pv = PreparedVersion::prepare(cv, &spec);
    assert!(peak_jit::backend_for(&pv, &JitOptions::default()).is_some());
}
