//! Knowledge-store corruption drills: every way a segment file can rot
//! on disk must be detected at open, quarantined (raw bytes preserved,
//! never re-read), and salvaged — CRC-passing lines survive, the rest
//! are rejected, and the store always comes up clean.

use peak_obs::{BufferSink, Tracer};
use peak_serve::{FeatureVec, KnowledgeStore, StoreRecord};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn rec(benchmark: &str, bits: u64) -> StoreRecord {
    StoreRecord {
        benchmark: benchmark.to_owned(),
        machine: "SPARC-II".to_owned(),
        method: "CBR".to_owned(),
        features: FeatureVec {
            blocks: 12,
            stmts: 90,
            loops: 4,
            max_loop_depth: 2,
            loads: 25,
            stores: 10,
            calls: 2,
            regions: 5,
            invocations: 900,
        },
        best_bits: bits,
        improvement_pct: 3.5,
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("peak-corrupt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a store whose single record lives in a single segment file and
/// return that segment's path.
fn seeded_store(dir: &Path) -> PathBuf {
    let mut s = KnowledgeStore::open(dir, Tracer::disabled()).unwrap();
    s.record(rec("SWIM", 1)).unwrap();
    drop(s);
    let segs = segment_files(dir);
    assert_eq!(segs.len(), 1);
    segs.into_iter().next().unwrap()
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    v.sort();
    v
}

fn quarantine_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.file_name().unwrap().to_string_lossy().contains("quarantined"))
        .collect();
    v.sort();
    v
}

/// Reopen and assert the corrupt segment was quarantined, not fatal.
fn assert_quarantined(dir: &Path, survivors: usize) {
    let sink = Arc::new(BufferSink::new());
    let s = KnowledgeStore::open(dir, Tracer::to_sink(sink.clone())).unwrap();
    assert_eq!(s.quarantined(), 1, "exactly one segment quarantined");
    assert_eq!(s.len(), survivors, "healthy records survive");
    assert_eq!(quarantine_files(dir).len(), 1, "quarantined file preserved on disk");
    let trace = sink.drain().join("\n");
    assert!(trace.contains("store.quarantine"), "quarantine must be traced: {trace}");
    // And the quarantined file is not re-read: a second open is clean.
    let again = KnowledgeStore::open(dir, Tracer::disabled()).unwrap();
    assert_eq!(again.quarantined(), 0, "second open must not re-quarantine");
    assert_eq!(again.len(), survivors);
}

#[test]
fn truncated_segment_is_quarantined() {
    let dir = tmpdir("truncate");
    let seg = seeded_store(&dir);
    let bytes = std::fs::read(&seg).unwrap();
    // Cut mid-record: the torn tail line fails its CRC.
    std::fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();
    assert_quarantined(&dir, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_segment_is_quarantined() {
    let dir = tmpdir("bitflip");
    let seg = seeded_store(&dir);
    let mut bytes = std::fs::read(&seg).unwrap();
    // Flip one bit inside the JSON payload of the first record.
    let k = bytes.iter().position(|&b| b == b'{').unwrap() + 5;
    bytes[k] ^= 0x01;
    std::fs::write(&seg, &bytes).unwrap();
    assert_quarantined(&dir, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_segment_file_is_quarantined() {
    let dir = tmpdir("empty");
    std::fs::write(dir.join("shard-3.seg"), b"").unwrap();
    assert_quarantined(&dir, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_writer_tear_salvages_the_intact_record() {
    let dir = tmpdir("tear");
    let seg = seeded_store(&dir);
    // A second writer's partial line interleaved at the end. The first
    // record's line is intact (CRC passes), so salvage keeps it; only
    // the torn tail is rejected.
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes.extend_from_slice(b"PEAKKS1 00aa11bb {\"benchmark\":\"MG");
    std::fs::write(&seg, &bytes).unwrap();
    assert_quarantined(&dir, 1);
    // Salvage accounting is visible through the health report.
    let s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
    let health = s.health();
    assert_eq!(health.records, 1);
    assert!(s.nearest(&rec("SWIM", 0).features, "SPARC-II").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthy_segments_survive_next_to_a_corrupt_one() {
    let dir = tmpdir("mixed");
    // Spread records until at least two distinct segments exist.
    let mut s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
    for (k, name) in
        ["SWIM", "ART", "MGRID", "EQUAKE", "MESA", "APPLU", "APSI", "TWOLF"].iter().enumerate()
    {
        s.record(rec(name, k as u64)).unwrap();
    }
    let total = s.len();
    drop(s);
    let segs = segment_files(&dir);
    assert!(segs.len() >= 2, "need at least two segments, got {segs:?}");
    // Corrupt exactly one.
    std::fs::write(&segs[0], b"PEAKKS1 deadbeef {\"not\":\"a record\"}\n").unwrap();
    let reopened = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
    assert_eq!(reopened.quarantined(), 1);
    assert!(reopened.len() < total, "the corrupt segment's records are gone");
    assert!(!reopened.is_empty(), "the other segments' records survive");
    // Warm-start lookup still works off the survivors...
    assert!(reopened.nearest(&rec("SWIM", 0).features, "SPARC-II").is_some());
    // ...and finds nothing for machines the survivors don't cover.
    assert!(reopened.nearest(&rec("SWIM", 0).features, "Pentium-IV").is_none());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rewriting_a_shard_after_quarantine_starts_fresh() {
    let dir = tmpdir("rewrite");
    let seg = seeded_store(&dir);
    std::fs::write(&seg, b"junk\n").unwrap();
    let mut s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
    assert_eq!(s.quarantined(), 1);
    // New results land in a fresh, valid segment.
    s.record(rec("SWIM", 9)).unwrap();
    drop(s);
    let back = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
    assert_eq!(back.quarantined(), 0);
    assert_eq!(back.len(), 1);
    assert_eq!(back.nearest(&rec("SWIM", 0).features, "SPARC-II").unwrap().best_bits, 9);
    std::fs::remove_dir_all(&dir).ok();
}
