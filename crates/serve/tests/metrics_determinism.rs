//! Determinism doctrine for the metrics registry: two same-seed
//! sequential serve sessions advance every counter and gauge by exactly
//! the same amount. Wall-clock histograms are explicitly exempt
//! ([`Snapshot::without_histograms`] drops them) — everything else that
//! differs is a reproducibility bug in the instrumentation.
//!
//! This test lives in its own integration-test binary on purpose: the
//! registry is process-global, and counters advanced by unrelated tests
//! running in the same process would pollute the deltas.

use peak_core::VersionCache;
use peak_obs::{MetricsRegistry, Snapshot};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

/// One serve session: fresh store, one worker, the same three jobs
/// submitted strictly sequentially (each response read before the next
/// request is sent), then shutdown. Returns the registry delta the
/// session produced, histograms dropped.
fn run_session(name: &str) -> Snapshot {
    // Identical starting state for both sessions: an empty global
    // version cache (its hit/miss counters are mirrored into the
    // registry, so cache warmth from a prior session would show up as a
    // delta difference).
    VersionCache::global().clear();
    VersionCache::global().publish_metrics();
    let before = MetricsRegistry::global().snapshot();

    let dir = std::env::temp_dir().join(format!("peak-obs-det-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let socket = dir.join("peak.sock");
    let mut config = peak_serve::ServeConfig::new(&socket, dir.join("store"));
    config.workers = 1;
    let handle = peak_serve::start(config, peak_obs::Tracer::disabled()).unwrap();

    let mut stream = UnixStream::connect(&socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for line in [
        r#"{"id":"j1","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"CBR"}"#,
        r#"{"id":"j2","kind":"tune","benchmark":"ART","machine":"SPARC-II","method":"RBR"}"#,
        r#"{"id":"ping","kind":"ping"}"#,
        r#"{"id":"bye","kind":"shutdown"}"#,
    ] {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        assert!(reader.read_line(&mut response).unwrap() > 0, "daemon died");
        let j = peak_util::from_str(response.trim_end()).unwrap();
        assert_eq!(
            j.get("status").and_then(peak_util::Json::as_str),
            Some("ok"),
            "session job failed: {response}"
        );
    }
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);

    VersionCache::global().publish_metrics();
    MetricsRegistry::global().snapshot().delta(&before).without_histograms()
}

#[test]
fn same_seed_sessions_advance_counters_identically() {
    let first = run_session("a");
    let second = run_session("b");
    // Render both deltas and diff the text — a mismatch names the
    // offending metric right in the assertion output.
    assert_eq!(
        first.render_prometheus(),
        second.render_prometheus(),
        "same-seed serve sessions must advance every counter identically"
    );
    // And the deltas are non-trivial: the sessions actually did work.
    assert_eq!(first.counter("serve.jobs_ok"), Some(2));
    assert_eq!(first.counter("serve.requests"), Some(4));
    assert!(first.counter("core.harness.invocations").unwrap() > 0);
    assert!(first.counter("core.rating.calls").unwrap() > 0);
    assert!(first.counter("serve.store.records_written") >= Some(2));
}
