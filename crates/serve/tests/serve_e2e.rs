//! End-to-end daemon tests over a real Unix socket: every abuse answers
//! a structured response, and the daemon survives all of them.

use peak_serve::{start, DaemonHandle, RetryPolicy, ServeConfig};
use peak_util::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

struct TestDaemon {
    handle: Option<DaemonHandle>,
    dir: PathBuf,
    socket: PathBuf,
}

impl TestDaemon {
    fn start(name: &str, configure: impl FnOnce(&mut ServeConfig)) -> TestDaemon {
        let dir = std::env::temp_dir().join(format!("peak-e2e-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("peak.sock");
        let mut config = ServeConfig::new(&socket, dir.join("store"));
        // Fast retries so panicking-job tests don't sit in backoff.
        config.retry = RetryPolicy { max_retries: 2, base_backoff_ms: 1, factor: 2 };
        configure(&mut config);
        let handle = start(config, peak_obs::Tracer::disabled()).unwrap();
        TestDaemon { handle: Some(handle), dir, socket }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.socket).unwrap()
    }

    /// Send request lines on one connection and read as many responses.
    fn roundtrip(&self, lines: &[&str]) -> Vec<Json> {
        let mut stream = self.connect();
        for line in lines {
            writeln!(stream, "{line}").unwrap();
        }
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        let responses: Vec<Json> = reader
            .lines()
            .take(lines.len())
            .map(|l| peak_util::from_str(&l.unwrap()).expect("response must be valid JSON"))
            .collect();
        assert_eq!(responses.len(), lines.len(), "one response per request");
        responses
    }

    fn shutdown(mut self) {
        let handle = self.handle.take().unwrap();
        handle.stop();
        handle.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.stop();
            handle.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn field<'j>(j: &'j Json, key: &str) -> &'j Json {
    j.get(key).unwrap_or_else(|| panic!("missing {key:?} in {}", j.compact()))
}

fn str_field<'j>(j: &'j Json, key: &str) -> &'j str {
    field(j, key).as_str().unwrap_or_else(|| panic!("{key:?} not a string in {}", j.compact()))
}

/// Find the response carrying a given id (responses may arrive out of
/// submission order).
fn by_id<'r>(responses: &'r [Json], id: &str) -> &'r Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id:?}"))
}

#[test]
fn ping_and_stats_answer_immediately() {
    let daemon = TestDaemon::start("ping", |_| {});
    let responses =
        daemon.roundtrip(&[r#"{"id":"p1","kind":"ping"}"#, r#"{"id":"s1","kind":"stats"}"#]);
    let ping = by_id(&responses, "p1");
    assert_eq!(str_field(ping, "status"), "ok");
    assert_eq!(field(ping, "pong"), &Json::Bool(true));
    let stats = by_id(&responses, "s1");
    assert_eq!(str_field(stats, "status"), "ok");
    assert_eq!(field(stats, "jobs_ok"), &Json::U(0));
    assert_eq!(field(stats, "store_quarantined"), &Json::U(0));
    daemon.shutdown();
}

#[test]
fn malformed_lines_answer_structured_errors_and_spare_the_connection() {
    let daemon = TestDaemon::start("malformed", |_| {});
    let responses = daemon.roundtrip(&[
        "this is not json",
        r#"{"kind":"ping"}"#,
        r#"{"id":"d1","kind":"dance"}"#,
        r#"{"id":"t1","kind":"tune","benchmark":"SWIM"}"#,
        r#"{"id":"p1","kind":"ping"}"#,
    ]);
    for r in &responses[..4] {
        assert_eq!(str_field(r, "status"), "error");
        assert_eq!(str_field(r, "error"), "malformed");
    }
    assert_eq!(str_field(&responses[0], "id"), "?", "unsalvageable id maps to ?");
    assert_eq!(str_field(&responses[2], "id"), "d1", "salvageable id is echoed");
    // The connection survived all four: the trailing ping answers ok.
    assert_eq!(str_field(&responses[4], "status"), "ok");
    daemon.shutdown();
}

#[test]
fn unknown_names_answer_structured_spec_errors() {
    let daemon = TestDaemon::start("unknown", |_| {});
    let responses = daemon.roundtrip(&[
        r#"{"id":"b","kind":"tune","benchmark":"NOPE","machine":"SPARC-II"}"#,
        r#"{"id":"m","kind":"tune","benchmark":"SWIM","machine":"vax"}"#,
        r#"{"id":"r","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"best"}"#,
    ]);
    assert_eq!(str_field(by_id(&responses, "b"), "error"), "unknown_benchmark");
    assert_eq!(str_field(by_id(&responses, "m"), "error"), "unknown_machine");
    assert_eq!(str_field(by_id(&responses, "r"), "error"), "unknown_method");
    daemon.shutdown();
}

#[test]
fn panicking_job_is_retried_reported_and_does_not_kill_the_daemon() {
    let daemon = TestDaemon::start("panic", |_| {});
    let responses = daemon.roundtrip(&[
        r#"{"id":"boom","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"panic"}"#,
    ]);
    let boom = &responses[0];
    assert_eq!(str_field(boom, "status"), "error");
    assert_eq!(str_field(boom, "error"), "panicked");
    assert_eq!(field(boom, "retries"), &Json::U(2), "both retries consumed");
    assert!(str_field(boom, "message").contains("injected panic"));
    // Daemon and pool survived: a real job on a fresh connection works.
    let responses = daemon.roundtrip(&[
        r#"{"id":"real","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"CBR"}"#,
    ]);
    let real = &responses[0];
    assert_eq!(str_field(real, "status"), "ok", "{}", real.compact());
    let result = field(real, "result");
    assert_eq!(str_field(result, "benchmark"), "SWIM");
    assert_eq!(str_field(result, "machine"), "SPARC-II");
    assert!(field(result, "improvement_pct").as_f64().is_some());
    daemon.shutdown();
}

#[test]
fn deadline_exceeded_is_attributed_and_fast() {
    let daemon = TestDaemon::start("deadline", |_| {});
    let start = std::time::Instant::now();
    let responses = daemon.roundtrip(&[
        r#"{"id":"slow","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"slow:60000","deadline_ms":50}"#,
    ]);
    let slow = &responses[0];
    assert_eq!(str_field(slow, "status"), "error");
    assert_eq!(str_field(slow, "error"), "deadline_exceeded");
    assert!(str_field(slow, "message").contains("50ms"));
    assert!(
        start.elapsed() < std::time::Duration::from_secs(30),
        "deadline must cut the 60s sleep short"
    );
    daemon.shutdown();
}

#[test]
fn overload_sheds_with_structured_responses() {
    // One worker, queue of one: burst of slow jobs must shed.
    let daemon = TestDaemon::start("overload", |c| {
        c.workers = 1;
        c.queue_cap = 1;
    });
    let lines: Vec<String> = (0..5)
        .map(|k| {
            format!(
                r#"{{"id":"j{k}","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"slow:400","deadline_ms":500}}"#
            )
        })
        .collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let responses = daemon.roundtrip(&refs);
    let shed = responses
        .iter()
        .filter(|r| r.get("error").and_then(Json::as_str) == Some("overloaded"))
        .count();
    assert!(shed >= 1, "burst past the queue cap must shed: {responses:?}");
    for r in &responses {
        let status = str_field(r, "status");
        assert!(status == "ok" || status == "error", "{}", r.compact());
    }
    // Still alive after the burst.
    let ping = daemon.roundtrip(&[r#"{"id":"p","kind":"ping"}"#]);
    assert_eq!(str_field(&ping[0], "status"), "ok");
    daemon.shutdown();
}

#[test]
fn shutdown_refuses_new_work_and_stops() {
    let daemon = TestDaemon::start("shutdown", |_| {});
    let responses = daemon.roundtrip(&[r#"{"id":"bye","kind":"shutdown"}"#]);
    assert_eq!(str_field(&responses[0], "status"), "ok");
    assert_eq!(field(&responses[0], "stopping"), &Json::Bool(true));
    // The daemon threads wind down; wait() must return.
    daemon.shutdown();
}

#[test]
fn warm_start_round_trips_through_the_store() {
    let daemon = TestDaemon::start("warm", |_| {});
    // Cold store: warm_start falls back to the O3 sweep (no marker).
    let responses = daemon.roundtrip(&[
        r#"{"id":"cold","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"CBR","warm_start":true}"#,
    ]);
    let cold = &responses[0];
    assert_eq!(str_field(cold, "status"), "ok", "{}", cold.compact());
    assert!(cold.get("warm_started").is_none(), "cold store cannot warm-start");
    // The result persisted; the same job again warm-starts from it.
    let responses = daemon.roundtrip(&[
        r#"{"id":"hot","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"CBR","warm_start":true}"#,
    ]);
    let hot = &responses[0];
    assert_eq!(str_field(hot, "status"), "ok", "{}", hot.compact());
    assert_eq!(hot.get("warm_started"), Some(&Json::Bool(true)));
    // Warm-starting from the *best* config must not lose quality.
    let cold_pct = field(field(cold, "result"), "improvement_pct").as_f64().unwrap();
    let hot_pct = field(field(hot, "result"), "improvement_pct").as_f64().unwrap();
    assert!(
        hot_pct >= cold_pct - 1e-9,
        "warm start regressed: {hot_pct} < {cold_pct}"
    );
    daemon.shutdown();
}
