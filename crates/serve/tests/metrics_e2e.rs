//! Telemetry end-to-end: `stats`/`health` answer on a live daemon with a
//! coherent metrics snapshot, the Prometheus exposition round-trips
//! through its own parser, and dead jobs (injected panic, blown
//! deadline) leave replayable post-mortem artifacts on disk.

use peak_obs::Snapshot;
use peak_serve::{parse_request, start, DaemonHandle, Request, RetryPolicy, ServeConfig};
use peak_util::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

struct TestDaemon {
    handle: Option<DaemonHandle>,
    dir: PathBuf,
    socket: PathBuf,
}

impl TestDaemon {
    fn start(name: &str) -> TestDaemon {
        let dir = std::env::temp_dir().join(format!("peak-obs-e2e-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("peak.sock");
        let mut config = ServeConfig::new(&socket, dir.join("store"));
        config.retry = RetryPolicy { max_retries: 1, base_backoff_ms: 1, factor: 2 };
        let handle = start(config, peak_obs::Tracer::disabled()).unwrap();
        TestDaemon { handle: Some(handle), dir, socket }
    }

    fn roundtrip(&self, lines: &[&str]) -> Vec<Json> {
        let mut stream = UnixStream::connect(&self.socket).unwrap();
        for line in lines {
            writeln!(stream, "{line}").unwrap();
        }
        stream.flush().unwrap();
        let reader = BufReader::new(stream);
        let responses: Vec<Json> = reader
            .lines()
            .take(lines.len())
            .map(|l| peak_util::from_str(&l.unwrap()).expect("response must be valid JSON"))
            .collect();
        assert_eq!(responses.len(), lines.len(), "one response per request");
        responses
    }

    fn postmortem_dir(&self) -> PathBuf {
        self.dir.join("store").join("postmortem")
    }

    /// Post-mortem files whose name contains `reason`.
    fn postmortems(&self, reason: &str) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(self.postmortem_dir())
            .map(|d| {
                d.map(|e| e.unwrap().path())
                    .filter(|p| {
                        p.file_name().unwrap().to_string_lossy().contains(&format!("-{reason}-"))
                    })
                    .collect()
            })
            .unwrap_or_default();
        v.sort();
        v
    }

    fn shutdown(mut self) {
        let handle = self.handle.take().unwrap();
        handle.stop();
        handle.wait();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl Drop for TestDaemon {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.stop();
            handle.wait();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn by_id<'r>(responses: &'r [Json], id: &str) -> &'r Json {
    responses
        .iter()
        .find(|r| r.get("id").and_then(Json::as_str) == Some(id))
        .unwrap_or_else(|| panic!("no response with id {id:?}"))
}

fn u(j: &Json, key: &str) -> u64 {
    j.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing u64 {key:?} in {}", j.compact()))
}

#[test]
fn stats_and_health_carry_live_telemetry() {
    let daemon = TestDaemon::start("stats");
    let tune = r#"{"id":"t1","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"CBR"}"#;
    let done = daemon.roundtrip(&[tune]);
    assert_eq!(done[0].get("status").and_then(Json::as_str), Some("ok"), "{}", done[0].compact());

    let responses =
        daemon.roundtrip(&[r#"{"id":"s","kind":"stats"}"#, r#"{"id":"h","type":"health"}"#]);
    let stats = by_id(&responses, "s");
    assert_eq!(u(stats, "jobs_ok"), 1);
    assert_eq!(u(stats, "store_records"), 1, "completed job persisted to the store");
    let sh = stats.get("store_health").expect("stats carries store_health");
    assert_eq!(u(sh, "records"), 1);
    assert_eq!(u(sh, "quarantined_segments"), 0);

    // The metrics snapshot is coherent with the daemon counters. The
    // registry is process-global, so cross-test values are >= this
    // daemon's own counts — never less.
    let snap = stats.get("metrics").and_then(Snapshot::from_json).expect("metrics snapshot");
    assert!(snap.counter("serve.jobs_ok").unwrap() >= 1);
    assert!(snap.counter("serve.requests").unwrap() >= 3, "tune + stats + health counted");
    assert!(snap.counter("core.harness.invocations").unwrap() > 0, "tuning ran invocations");

    let health = by_id(&responses, "h");
    assert_eq!(health.get("healthy").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("accepting").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("shutting_down").and_then(Json::as_bool), Some(false));
    assert!(u(health, "queue_cap") > 0);
    assert!(health.get("metrics").is_none(), "health stays cheap: no registry snapshot");
    daemon.shutdown();
}

#[test]
fn exposition_round_trips_through_its_own_parser() {
    let daemon = TestDaemon::start("expo");
    let responses = daemon.roundtrip(&[r#"{"id":"s","kind":"stats"}"#]);
    let snap =
        responses[0].get("metrics").and_then(Snapshot::from_json).expect("metrics snapshot");
    let text = snap.render_prometheus();
    let samples = peak_obs::metrics::parse_exposition(&text).expect("exposition must parse");
    assert!(!samples.is_empty());
    // Every counter and gauge in the snapshot appears as a sample.
    for e in &snap.entries {
        let prom: String = e
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
            .collect();
        assert!(
            samples.iter().any(|s| s.name.starts_with(&prom)),
            "metric {} missing from exposition:\n{text}",
            e.name
        );
    }
    daemon.shutdown();
}

#[test]
fn injected_panic_leaves_a_replayable_postmortem() {
    let daemon = TestDaemon::start("panic");
    let line =
        r#"{"id":"boom","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"panic"}"#;
    let responses = daemon.roundtrip(&[line]);
    assert_eq!(responses[0].get("error").and_then(Json::as_str), Some("panicked"));

    let dumps = daemon.postmortems("panic");
    assert_eq!(dumps.len(), 1, "exactly one post-mortem for the one dead job");
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    let mut lines = text.lines();
    let header = peak_util::from_str(lines.next().expect("header line")).unwrap();
    assert_eq!(header.get("postmortem").and_then(Json::as_str), Some("panic"));
    assert_eq!(header.get("job_id").and_then(Json::as_str), Some("boom"));
    // The header carries the request verbatim — replayable with
    // `peak-serve send`.
    let request = header.get("request").and_then(Json::as_str).expect("request in header");
    assert_eq!(request, line);
    let Request::Tune { id, job } = parse_request(request).expect("request replays") else {
        panic!("post-mortem request is not a tune")
    };
    assert_eq!(id, "boom");
    assert_eq!(job.benchmark, "SWIM");
    // The recorded events parse and include the job span + the retry
    // of the panicked first attempt.
    let events: Vec<&str> = lines.collect();
    assert!(!events.is_empty(), "ring must have recorded the job's events");
    for e in &events {
        peak_obs::TraceEvent::parse_line(e).expect("event lines parse");
    }
    assert!(text.contains("serve.job"), "job span recorded:\n{text}");
    assert!(text.contains("serve.retry"), "panicked attempt's retry recorded:\n{text}");

    // Stats accounts for it.
    let stats = daemon.roundtrip(&[r#"{"id":"s","kind":"stats"}"#]);
    assert!(u(&stats[0], "postmortems") >= 1);
    daemon.shutdown();
}

#[test]
fn blown_deadline_leaves_a_postmortem() {
    let daemon = TestDaemon::start("deadline");
    let line = r#"{"id":"late","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"slow:60000","deadline_ms":50}"#;
    let responses = daemon.roundtrip(&[line]);
    assert_eq!(responses[0].get("error").and_then(Json::as_str), Some("deadline_exceeded"));

    let dumps = daemon.postmortems("deadline");
    assert_eq!(dumps.len(), 1);
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    let header = peak_util::from_str(text.lines().next().unwrap()).unwrap();
    assert_eq!(header.get("postmortem").and_then(Json::as_str), Some("deadline"));
    assert_eq!(header.get("request").and_then(Json::as_str), Some(line));
    daemon.shutdown();
}
