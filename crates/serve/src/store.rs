//! The on-disk knowledge store: completed tuning results keyed by
//! program feature vectors, in the spirit of the Collective Tuning
//! Initiative's shared repository (Fursin, PAPERS.md).
//!
//! ## Format
//!
//! `N_SHARDS` segment files (`shard-K.seg`) under the store directory;
//! a record lives in the shard of its `(benchmark, machine)` hash. Each
//! record is one line:
//!
//! ```text
//! PEAKKS1 <crc32-hex8> <compact-json>
//! ```
//!
//! where the CRC (CRC-32/ISO-HDLC, [`peak_util::crc32`]) covers exactly
//! the JSON bytes. Segments are rewritten whole through
//! [`peak_util::write_durable`] (temp + fsync + rename + dir fsync), the
//! same helper the tuner checkpoint uses — so a crashed writer leaves
//! either the old segment or the new one, never a mix.
//!
//! ## Corruption doctrine
//!
//! Startup *never* aborts on bad state. A segment that fails any check —
//! zero-length file (torn create), bad magic, CRC mismatch (bit flip or
//! truncated tail), unparseable or schema-invalid JSON (concurrent-
//! writer tear) — is **quarantined**: renamed to `shard-K.quarantined-N`
//! next to the live segment (preserved for forensics, never re-read) and
//! skipped. The daemon starts clean with whatever healthy segments
//! remain; warm-start queries against missing knowledge simply fall back
//! to the full O3 sweep.

use crate::features::FeatureVec;
use peak_obs::{event, Tracer};
use peak_util::{crc32, Json, ToJson};
use std::path::{Path, PathBuf};

/// Number of segment files.
pub const N_SHARDS: usize = 8;

/// Record magic: bump on any line-format change.
pub const MAGIC: &str = "PEAKKS1";

/// One completed tuning result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Machine name (must match for warm-start reuse).
    pub machine: String,
    /// Rating method that produced the result.
    pub method: String,
    /// Feature vector of the tuning section.
    pub features: FeatureVec,
    /// Best configuration found (flag bits).
    pub best_bits: u64,
    /// Production improvement over -O3, percent.
    pub improvement_pct: f64,
}

impl ToJson for StoreRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", self.benchmark.to_json()),
            ("machine", self.machine.to_json()),
            ("method", self.method.to_json()),
            ("features", self.features.to_json()),
            ("best_bits", self.best_bits.to_json()),
            ("improvement_pct", self.improvement_pct.to_json()),
        ])
    }
}

impl StoreRecord {
    /// Parse the JSON written by [`ToJson`].
    pub fn from_json(j: &Json) -> Option<StoreRecord> {
        Some(StoreRecord {
            benchmark: j.get("benchmark")?.as_str()?.to_owned(),
            machine: j.get("machine")?.as_str()?.to_owned(),
            method: j.get("method")?.as_str()?.to_owned(),
            features: FeatureVec::from_json(j.get("features")?)?,
            best_bits: j.get("best_bits")?.as_u64()?,
            improvement_pct: j.get("improvement_pct")?.as_f64()?,
        })
    }

    /// The record's CRC-framed segment line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = self.to_json().compact();
        format!("{MAGIC} {:08x} {json}", crc32(json.as_bytes()))
    }

    /// Parse one segment line, checking magic and CRC.
    pub fn parse_line(line: &str) -> Result<StoreRecord, String> {
        let rest = line.strip_prefix(MAGIC).ok_or("bad magic")?;
        let rest = rest.strip_prefix(' ').ok_or("bad magic separator")?;
        let (crc_hex, json_str) = rest.split_once(' ').ok_or("missing CRC separator")?;
        let want =
            u32::from_str_radix(crc_hex, 16).map_err(|_| format!("bad CRC field {crc_hex:?}"))?;
        let got = crc32(json_str.as_bytes());
        if got != want {
            return Err(format!("CRC mismatch: line says {want:08x}, bytes hash to {got:08x}"));
        }
        let j = peak_util::from_str(json_str).map_err(|e| format!("invalid JSON: {e}"))?;
        StoreRecord::from_json(&j).ok_or_else(|| "not a store record".to_owned())
    }
}

/// FNV-1a over the (lowercased) benchmark+machine key → shard index.
fn shard_of(benchmark: &str, machine: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in benchmark.bytes().chain([0u8]).chain(machine.bytes()) {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    (h % N_SHARDS as u64) as usize
}

fn shard_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard-{k}.seg"))
}

/// Load one segment file; `Err` is the corruption reason.
fn load_segment(path: &Path) -> Result<Vec<StoreRecord>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    if bytes.is_empty() {
        return Err("zero-length segment (torn create)".to_owned());
    }
    let text = String::from_utf8(bytes).map_err(|_| "not UTF-8".to_owned())?;
    let mut records = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let rec =
            StoreRecord::parse_line(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        records.push(rec);
    }
    if records.is_empty() {
        return Err("no records".to_owned());
    }
    Ok(records)
}

/// The sharded, CRC-framed, quarantine-on-corruption knowledge store.
pub struct KnowledgeStore {
    dir: PathBuf,
    shards: Vec<Vec<StoreRecord>>,
    quarantined: usize,
    tracer: Tracer,
}

impl KnowledgeStore {
    /// Open (creating the directory if needed) and load every healthy
    /// segment; corrupt segments are quarantined and skipped, each
    /// logged with a `store.quarantine` event. Never fails on bad
    /// *contents* — only on I/O errors creating the directory itself.
    pub fn open(dir: &Path, tracer: Tracer) -> std::io::Result<KnowledgeStore> {
        std::fs::create_dir_all(dir)?;
        let mut store = KnowledgeStore {
            dir: dir.to_path_buf(),
            shards: vec![Vec::new(); N_SHARDS],
            quarantined: 0,
            tracer,
        };
        for k in 0..N_SHARDS {
            let path = shard_path(dir, k);
            if !path.exists() {
                continue;
            }
            match load_segment(&path) {
                Ok(records) => store.shards[k] = records,
                Err(reason) => store.quarantine(&path, k, &reason),
            }
        }
        Ok(store)
    }

    /// Move a corrupt segment aside (`shard-K.quarantined-N`, first free
    /// `N`) so it is preserved for forensics but never re-read.
    fn quarantine(&mut self, path: &Path, shard: usize, reason: &str) {
        let mut n = 0;
        let dest = loop {
            let cand = self.dir.join(format!("shard-{shard}.quarantined-{n}"));
            if !cand.exists() {
                break cand;
            }
            n += 1;
        };
        let renamed = std::fs::rename(path, &dest).is_ok();
        if !renamed {
            // Last resort: drop it so the next rewrite starts clean.
            let _ = std::fs::remove_file(path);
        }
        self.quarantined += 1;
        let t = &self.tracer;
        event!(
            t,
            "store.quarantine",
            shard = shard as u64,
            reason = reason,
            preserved = renamed,
            dest = dest.display().to_string(),
        );
    }

    /// Insert or update a record (keyed by benchmark+machine+method) and
    /// durably rewrite its segment.
    pub fn record(&mut self, rec: StoreRecord) -> std::io::Result<()> {
        let k = shard_of(&rec.benchmark, &rec.machine);
        let shard = &mut self.shards[k];
        match shard.iter_mut().find(|r| {
            r.benchmark == rec.benchmark && r.machine == rec.machine && r.method == rec.method
        }) {
            Some(slot) => *slot = rec,
            None => shard.push(rec),
        }
        let mut bytes = String::new();
        for r in shard.iter() {
            bytes.push_str(&r.to_line());
            bytes.push('\n');
        }
        peak_util::write_durable(&shard_path(&self.dir, k), bytes.as_bytes())
    }

    /// Nearest-neighbour lookup: the record on the same machine whose
    /// feature vector is closest to `features`. Deterministic
    /// tie-breaking (distance, then benchmark, then method). `None` when
    /// the store holds nothing for this machine — the caller falls back
    /// to the full O3 sweep.
    pub fn nearest(&self, features: &FeatureVec, machine: &str) -> Option<&StoreRecord> {
        self.shards
            .iter()
            .flatten()
            .filter(|r| r.machine.eq_ignore_ascii_case(machine))
            .min_by(|a, b| {
                features
                    .distance(&a.features)
                    .total_cmp(&features.distance(&b.features))
                    .then_with(|| a.benchmark.cmp(&b.benchmark))
                    .then_with(|| a.method.cmp(&b.method))
            })
    }

    /// Records currently loaded.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// True when no records are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segments quarantined at startup.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_obs::Tracer;

    fn rec(benchmark: &str, machine: &str, method: &str, bits: u64) -> StoreRecord {
        StoreRecord {
            benchmark: benchmark.to_owned(),
            machine: machine.to_owned(),
            method: method.to_owned(),
            features: FeatureVec {
                blocks: 10,
                stmts: 80,
                loops: 3,
                max_loop_depth: 2,
                loads: 20,
                stores: 9,
                calls: 1,
                regions: 6,
                invocations: 120,
            },
            best_bits: bits,
            improvement_pct: 4.25,
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("peak-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn line_roundtrip_and_crc_rejects_flips() {
        let r = rec("SWIM", "SPARC-II", "CBR", 0x3FF);
        let line = r.to_line();
        assert_eq!(StoreRecord::parse_line(&line).unwrap(), r);
        // Flip one payload character: CRC must catch it.
        let flipped = line.replace("SWIM", "SWIN");
        assert!(StoreRecord::parse_line(&flipped).unwrap_err().contains("CRC mismatch"));
        assert!(StoreRecord::parse_line("garbage").unwrap_err().contains("magic"));
    }

    #[test]
    fn record_persist_reload() {
        let dir = tmpdir("persist");
        let mut s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        s.record(rec("SWIM", "SPARC-II", "CBR", 1)).unwrap();
        s.record(rec("ART", "Pentium-IV", "RBR", 2)).unwrap();
        // Same key overwrites, different method coexists.
        s.record(rec("SWIM", "SPARC-II", "CBR", 3)).unwrap();
        s.record(rec("SWIM", "SPARC-II", "MBR", 4)).unwrap();
        assert_eq!(s.len(), 3);
        let back = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.quarantined(), 0);
        let hit = back.nearest(&rec("SWIM", "x", "y", 0).features, "SPARC-II").unwrap();
        assert_eq!((hit.best_bits, hit.method.as_str()), (3, "CBR"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nearest_respects_machine_and_falls_back_to_none() {
        let dir = tmpdir("nearest");
        let mut s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        s.record(rec("ART", "Pentium-IV", "RBR", 2)).unwrap();
        let f = rec("ART", "x", "y", 0).features;
        assert!(s.nearest(&f, "SPARC-II").is_none(), "wrong machine must not match");
        assert!(s.nearest(&f, "pentium-iv").is_some(), "machine match is case-insensitive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_hash_is_stable_and_in_range() {
        for (b, m) in [("SWIM", "SPARC-II"), ("ART", "Pentium-IV"), ("MGRID", "SPARC-II")] {
            let k = shard_of(b, m);
            assert!(k < N_SHARDS);
            assert_eq!(k, shard_of(&b.to_lowercase(), &m.to_lowercase()));
        }
    }
}
