//! The on-disk knowledge store: completed tuning results keyed by
//! program feature vectors, in the spirit of the Collective Tuning
//! Initiative's shared repository (Fursin, PAPERS.md).
//!
//! ## Format
//!
//! `N_SHARDS` segment files (`shard-K.seg`) under the store directory;
//! a record lives in the shard of its `(benchmark, machine)` hash. Each
//! record is one line:
//!
//! ```text
//! PEAKKS1 <crc32-hex8> <compact-json>
//! ```
//!
//! where the CRC (CRC-32/ISO-HDLC, [`peak_util::crc32`]) covers exactly
//! the JSON bytes. Segments are rewritten whole through
//! [`peak_util::write_durable`] (temp + fsync + rename + dir fsync), the
//! same helper the tuner checkpoint uses — so a crashed writer leaves
//! either the old segment or the new one, never a mix.
//!
//! ## Corruption doctrine
//!
//! Startup *never* aborts on bad state, and damage is accounted **per
//! line**, not per segment. A segment that cannot be read at all —
//! zero-length file (torn create), not UTF-8 — is **quarantined**
//! whole: renamed to `shard-K.quarantined-N` next to the live segment
//! (preserved for forensics, never re-read) and skipped. A readable
//! segment with *some* bad lines — bad magic, CRC mismatch (bit flip or
//! truncated tail), unparseable or schema-invalid JSON (concurrent-
//! writer tear) — is **salvaged**: the raw file is quarantined for
//! forensics, every line that passes its CRC is kept, and the salvaged
//! records are durably rewritten as a fresh segment so the next open is
//! clean. The per-shard salvaged/rejected line counts are exposed via
//! [`KnowledgeStore::health`] (previously quarantine was all-or-nothing
//! in the numbers and `store.quarantine` events under-reported partial
//! damage). Warm-start queries against missing knowledge simply fall
//! back to the full O3 sweep.

use crate::features::FeatureVec;
use peak_obs::metrics::{self, Counter, MetricsRegistry};
use peak_obs::{event, Tracer};
use peak_util::{crc32, Json, ToJson};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Number of segment files.
pub const N_SHARDS: usize = 8;

/// Record magic: bump on any line-format change.
pub const MAGIC: &str = "PEAKKS1";

/// One completed tuning result.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Machine name (must match for warm-start reuse).
    pub machine: String,
    /// Rating method that produced the result.
    pub method: String,
    /// Feature vector of the tuning section.
    pub features: FeatureVec,
    /// Best configuration found (flag bits).
    pub best_bits: u64,
    /// Production improvement over -O3, percent.
    pub improvement_pct: f64,
}

impl ToJson for StoreRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("benchmark", self.benchmark.to_json()),
            ("machine", self.machine.to_json()),
            ("method", self.method.to_json()),
            ("features", self.features.to_json()),
            ("best_bits", self.best_bits.to_json()),
            ("improvement_pct", self.improvement_pct.to_json()),
        ])
    }
}

impl StoreRecord {
    /// Parse the JSON written by [`ToJson`].
    pub fn from_json(j: &Json) -> Option<StoreRecord> {
        Some(StoreRecord {
            benchmark: j.get("benchmark")?.as_str()?.to_owned(),
            machine: j.get("machine")?.as_str()?.to_owned(),
            method: j.get("method")?.as_str()?.to_owned(),
            features: FeatureVec::from_json(j.get("features")?)?,
            best_bits: j.get("best_bits")?.as_u64()?,
            improvement_pct: j.get("improvement_pct")?.as_f64()?,
        })
    }

    /// The record's CRC-framed segment line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = self.to_json().compact();
        format!("{MAGIC} {:08x} {json}", crc32(json.as_bytes()))
    }

    /// Parse one segment line, checking magic and CRC.
    pub fn parse_line(line: &str) -> Result<StoreRecord, String> {
        let rest = line.strip_prefix(MAGIC).ok_or("bad magic")?;
        let rest = rest.strip_prefix(' ').ok_or("bad magic separator")?;
        let (crc_hex, json_str) = rest.split_once(' ').ok_or("missing CRC separator")?;
        let want =
            u32::from_str_radix(crc_hex, 16).map_err(|_| format!("bad CRC field {crc_hex:?}"))?;
        let got = crc32(json_str.as_bytes());
        if got != want {
            return Err(format!("CRC mismatch: line says {want:08x}, bytes hash to {got:08x}"));
        }
        let j = peak_util::from_str(json_str).map_err(|e| format!("invalid JSON: {e}"))?;
        StoreRecord::from_json(&j).ok_or_else(|| "not a store record".to_owned())
    }
}

/// FNV-1a over the (lowercased) benchmark+machine key → shard index.
fn shard_of(benchmark: &str, machine: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in benchmark.bytes().chain([0u8]).chain(machine.bytes()) {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    (h % N_SHARDS as u64) as usize
}

fn shard_path(dir: &Path, k: usize) -> PathBuf {
    dir.join(format!("shard-{k}.seg"))
}

/// Global store counters (registered once, shared by every store in the
/// process — the daemon owns one store, tests may open several).
struct StoreMetrics {
    quarantined: Arc<Counter>,
    salvaged: Arc<Counter>,
    rejected: Arc<Counter>,
    written: Arc<Counter>,
    nearest_hits: Arc<Counter>,
    nearest_misses: Arc<Counter>,
}

fn store_metrics() -> &'static StoreMetrics {
    static M: OnceLock<StoreMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = MetricsRegistry::global();
        StoreMetrics {
            quarantined: r
                .counter("serve.store.quarantined_segments", "Segments quarantined at open"),
            salvaged: r
                .counter("serve.store.salvaged_lines", "Healthy lines salvaged from damaged segments"),
            rejected: r
                .counter("serve.store.rejected_lines", "Corrupt lines dropped from damaged segments"),
            written: r.counter("serve.store.records_written", "Records persisted"),
            nearest_hits: r
                .counter("serve.store.nearest_hits", "Warm-start lookups that found a neighbour"),
            nearest_misses: r
                .counter("serve.store.nearest_misses", "Warm-start lookups with no neighbour"),
        }
    })
}

/// Per-line load outcome of one readable segment.
struct SegmentLoad {
    records: Vec<StoreRecord>,
    /// Lines that failed magic/CRC/JSON/schema checks and were dropped.
    rejected: usize,
    /// Reason of the first rejected line (for the trace event).
    first_error: Option<String>,
}

/// Load one segment file; `Err` means the segment could not be examined
/// line by line at all (unreadable, zero-length, not UTF-8) — the
/// whole-file quarantine path. `Ok` carries every line that passed its
/// CRC plus the count of lines that did not.
fn load_segment(path: &Path) -> Result<SegmentLoad, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("unreadable: {e}"))?;
    if bytes.is_empty() {
        return Err("zero-length segment (torn create)".to_owned());
    }
    let text = String::from_utf8(bytes).map_err(|_| "not UTF-8".to_owned())?;
    let mut load = SegmentLoad { records: Vec::new(), rejected: 0, first_error: None };
    for (n, line) in text.lines().enumerate() {
        match StoreRecord::parse_line(line) {
            Ok(rec) => load.records.push(rec),
            Err(e) => {
                load.rejected += 1;
                if load.first_error.is_none() {
                    load.first_error = Some(format!("line {}: {e}", n + 1));
                }
            }
        }
    }
    Ok(load)
}

/// Per-shard line-accounting from the last open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardHealth {
    /// Records currently loaded in this shard.
    pub records: usize,
    /// Healthy lines recovered from a damaged segment at open.
    pub salvaged: usize,
    /// Corrupt lines dropped from a damaged segment at open.
    pub rejected: usize,
}

/// Store-wide health snapshot ([`KnowledgeStore::health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreHealth {
    /// Records loaded across all shards.
    pub records: usize,
    /// Segments quarantined at open (whole-file or salvage forensics).
    pub quarantined_segments: usize,
    /// Total lines salvaged from damaged segments.
    pub salvaged_lines: usize,
    /// Total corrupt lines dropped.
    pub rejected_lines: usize,
    /// Per-shard breakdown.
    pub shards: Vec<ShardHealth>,
}

impl ToJson for StoreHealth {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("records", self.records.to_json()),
            ("quarantined_segments", self.quarantined_segments.to_json()),
            ("salvaged_lines", self.salvaged_lines.to_json()),
            ("rejected_lines", self.rejected_lines.to_json()),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.records + s.salvaged + s.rejected > 0)
                        .map(|(k, s)| {
                            Json::obj(vec![
                                ("shard", k.to_json()),
                                ("records", s.records.to_json()),
                                ("salvaged", s.salvaged.to_json()),
                                ("rejected", s.rejected.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The sharded, CRC-framed, quarantine-on-corruption knowledge store.
pub struct KnowledgeStore {
    dir: PathBuf,
    shards: Vec<Vec<StoreRecord>>,
    shard_health: Vec<ShardHealth>,
    quarantined: usize,
    tracer: Tracer,
}

impl KnowledgeStore {
    /// Open (creating the directory if needed) and load every healthy
    /// segment. An unreadable segment is quarantined whole; a readable
    /// segment with corrupt lines is quarantined for forensics, its
    /// healthy lines salvaged and durably rewritten as a fresh segment
    /// (so the *next* open is clean), each logged with a
    /// `store.quarantine` event. Never fails on bad *contents* — only
    /// on I/O errors creating the directory itself.
    pub fn open(dir: &Path, tracer: Tracer) -> std::io::Result<KnowledgeStore> {
        std::fs::create_dir_all(dir)?;
        let mut store = KnowledgeStore {
            dir: dir.to_path_buf(),
            shards: vec![Vec::new(); N_SHARDS],
            shard_health: vec![ShardHealth::default(); N_SHARDS],
            quarantined: 0,
            tracer,
        };
        for k in 0..N_SHARDS {
            let path = shard_path(dir, k);
            if !path.exists() {
                continue;
            }
            match load_segment(&path) {
                Ok(load) if load.rejected == 0 && !load.records.is_empty() => {
                    store.shards[k] = load.records;
                }
                Ok(load) => {
                    // Damaged (or record-free) segment: preserve the raw
                    // bytes, keep what passed its CRC.
                    let reason = load
                        .first_error
                        .clone()
                        .unwrap_or_else(|| "no records".to_owned());
                    store.quarantine(&path, k, &reason);
                    store.salvage(k, load);
                }
                Err(reason) => store.quarantine(&path, k, &reason),
            }
            store.shard_health[k].records = store.shards[k].len();
        }
        Ok(store)
    }

    /// Adopt the healthy lines of a damaged segment: account them,
    /// rewrite them durably as a fresh segment (the raw file has already
    /// been quarantined), and emit a `store.salvage` event.
    fn salvage(&mut self, shard: usize, load: SegmentLoad) {
        let salvaged = load.records.len();
        self.shard_health[shard].salvaged = salvaged;
        self.shard_health[shard].rejected = load.rejected;
        if metrics::enabled() {
            let m = store_metrics();
            m.salvaged.add(salvaged as u64);
            m.rejected.add(load.rejected as u64);
        }
        self.shards[shard] = load.records;
        let rewritten = if salvaged > 0 {
            self.rewrite_shard(shard).is_ok()
        } else {
            false
        };
        let t = &self.tracer;
        event!(
            t,
            "store.salvage",
            shard = shard as u64,
            salvaged = salvaged as u64,
            rejected = load.rejected as u64,
            rewritten = rewritten,
        );
    }

    /// Move a corrupt segment aside (`shard-K.quarantined-N`, first free
    /// `N`) so it is preserved for forensics but never re-read.
    fn quarantine(&mut self, path: &Path, shard: usize, reason: &str) {
        let mut n = 0;
        let dest = loop {
            let cand = self.dir.join(format!("shard-{shard}.quarantined-{n}"));
            if !cand.exists() {
                break cand;
            }
            n += 1;
        };
        let renamed = std::fs::rename(path, &dest).is_ok();
        if !renamed {
            // Last resort: drop it so the next rewrite starts clean.
            let _ = std::fs::remove_file(path);
        }
        self.quarantined += 1;
        if metrics::enabled() {
            store_metrics().quarantined.inc();
        }
        let t = &self.tracer;
        event!(
            t,
            "store.quarantine",
            shard = shard as u64,
            reason = reason,
            preserved = renamed,
            dest = dest.display().to_string(),
        );
    }

    /// Insert or update a record (keyed by benchmark+machine+method) and
    /// durably rewrite its segment.
    pub fn record(&mut self, rec: StoreRecord) -> std::io::Result<()> {
        let k = shard_of(&rec.benchmark, &rec.machine);
        let shard = &mut self.shards[k];
        match shard.iter_mut().find(|r| {
            r.benchmark == rec.benchmark && r.machine == rec.machine && r.method == rec.method
        }) {
            Some(slot) => *slot = rec,
            None => shard.push(rec),
        }
        self.shard_health[k].records = self.shards[k].len();
        if metrics::enabled() {
            store_metrics().written.inc();
        }
        self.rewrite_shard(k)
    }

    /// Durably rewrite shard `k` from its in-memory records.
    fn rewrite_shard(&self, k: usize) -> std::io::Result<()> {
        let mut bytes = String::new();
        for r in self.shards[k].iter() {
            bytes.push_str(&r.to_line());
            bytes.push('\n');
        }
        peak_util::write_durable(&shard_path(&self.dir, k), bytes.as_bytes())
    }

    /// Nearest-neighbour lookup: the record on the same machine whose
    /// feature vector is closest to `features`. Deterministic
    /// tie-breaking (distance, then benchmark, then method). `None` when
    /// the store holds nothing for this machine — the caller falls back
    /// to the full O3 sweep.
    pub fn nearest(&self, features: &FeatureVec, machine: &str) -> Option<&StoreRecord> {
        let hit = self
            .shards
            .iter()
            .flatten()
            .filter(|r| r.machine.eq_ignore_ascii_case(machine))
            .min_by(|a, b| {
                features
                    .distance(&a.features)
                    .total_cmp(&features.distance(&b.features))
                    .then_with(|| a.benchmark.cmp(&b.benchmark))
                    .then_with(|| a.method.cmp(&b.method))
            });
        if metrics::enabled() {
            let m = store_metrics();
            if hit.is_some() { m.nearest_hits.inc() } else { m.nearest_misses.inc() }
        }
        hit
    }

    /// Records currently loaded.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// True when no records are loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segments quarantined at startup.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }

    /// Line-level health from the last open plus current record counts.
    pub fn health(&self) -> StoreHealth {
        StoreHealth {
            records: self.len(),
            quarantined_segments: self.quarantined,
            salvaged_lines: self.shard_health.iter().map(|s| s.salvaged).sum(),
            rejected_lines: self.shard_health.iter().map(|s| s.rejected).sum(),
            shards: self.shard_health.clone(),
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_obs::Tracer;

    fn rec(benchmark: &str, machine: &str, method: &str, bits: u64) -> StoreRecord {
        StoreRecord {
            benchmark: benchmark.to_owned(),
            machine: machine.to_owned(),
            method: method.to_owned(),
            features: FeatureVec {
                blocks: 10,
                stmts: 80,
                loops: 3,
                max_loop_depth: 2,
                loads: 20,
                stores: 9,
                calls: 1,
                regions: 6,
                invocations: 120,
            },
            best_bits: bits,
            improvement_pct: 4.25,
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("peak-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn line_roundtrip_and_crc_rejects_flips() {
        let r = rec("SWIM", "SPARC-II", "CBR", 0x3FF);
        let line = r.to_line();
        assert_eq!(StoreRecord::parse_line(&line).unwrap(), r);
        // Flip one payload character: CRC must catch it.
        let flipped = line.replace("SWIM", "SWIN");
        assert!(StoreRecord::parse_line(&flipped).unwrap_err().contains("CRC mismatch"));
        assert!(StoreRecord::parse_line("garbage").unwrap_err().contains("magic"));
    }

    #[test]
    fn record_persist_reload() {
        let dir = tmpdir("persist");
        let mut s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        s.record(rec("SWIM", "SPARC-II", "CBR", 1)).unwrap();
        s.record(rec("ART", "Pentium-IV", "RBR", 2)).unwrap();
        // Same key overwrites, different method coexists.
        s.record(rec("SWIM", "SPARC-II", "CBR", 3)).unwrap();
        s.record(rec("SWIM", "SPARC-II", "MBR", 4)).unwrap();
        assert_eq!(s.len(), 3);
        let back = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.quarantined(), 0);
        let hit = back.nearest(&rec("SWIM", "x", "y", 0).features, "SPARC-II").unwrap();
        assert_eq!((hit.best_bits, hit.method.as_str()), (3, "CBR"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nearest_respects_machine_and_falls_back_to_none() {
        let dir = tmpdir("nearest");
        let mut s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        s.record(rec("ART", "Pentium-IV", "RBR", 2)).unwrap();
        let f = rec("ART", "x", "y", 0).features;
        assert!(s.nearest(&f, "SPARC-II").is_none(), "wrong machine must not match");
        assert!(s.nearest(&f, "pentium-iv").is_some(), "machine match is case-insensitive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_segment_salvages_good_lines_and_accounts_per_shard() {
        let dir = tmpdir("salvage");
        // Two healthy records in one shard plus one corrupt line between
        // them.
        let a = rec("SWIM", "SPARC-II", "CBR", 1);
        let b = rec("SWIM", "SPARC-II", "MBR", 2);
        let k = shard_of("SWIM", "SPARC-II");
        let seg = format!("{}\nPEAKKS1 deadbeef {{\"torn\":\n{}\n", a.to_line(), b.to_line());
        std::fs::write(shard_path(&dir, k), seg).unwrap();
        let s = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        assert_eq!(s.quarantined(), 1, "raw file quarantined for forensics");
        assert_eq!(s.len(), 2, "healthy lines salvaged");
        let h = s.health();
        assert_eq!((h.salvaged_lines, h.rejected_lines), (2, 1));
        assert_eq!(h.shards[k], ShardHealth { records: 2, salvaged: 2, rejected: 1 });
        assert!(
            h.to_json().compact().contains("\"rejected\":1"),
            "health JSON carries the per-shard breakdown"
        );
        // The salvage rewrite makes the next open clean.
        let again = KnowledgeStore::open(&dir, Tracer::disabled()).unwrap();
        assert_eq!(again.quarantined(), 0);
        assert_eq!(again.len(), 2);
        assert_eq!(again.health().salvaged_lines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_hash_is_stable_and_in_range() {
        for (b, m) in [("SWIM", "SPARC-II"), ("ART", "Pentium-IV"), ("MGRID", "SPARC-II")] {
            let k = shard_of(b, m);
            assert!(k < N_SHARDS);
            assert_eq!(k, shard_of(&b.to_lowercase(), &m.to_lowercase()));
        }
    }
}
