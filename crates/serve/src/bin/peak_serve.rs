//! `peak-serve` — run the tuning daemon, or talk to one.
//!
//! ```text
//! peak-serve serve --socket PATH --store DIR \
//!     [--workers N] [--queue-cap N] [--trace FILE]
//! peak-serve send --socket PATH LINE [LINE ...]
//! ```
//!
//! `serve` runs until a `shutdown` request arrives. `send` writes each
//! LINE (a JSONL request) to the socket, waits for exactly one response
//! per request, and prints the responses in arrival order.

use peak_obs::{JsonlSink, Tracer};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args[2..]),
        Some("send") => send(&args[2..]),
        _ => {
            eprintln!("usage: peak-serve serve --socket PATH --store DIR [--workers N] [--queue-cap N] [--trace FILE]");
            eprintln!("       peak-serve send --socket PATH LINE [LINE ...]");
            std::process::exit(2);
        }
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn required(args: &[String], key: &str) -> String {
    arg_value(args, key).unwrap_or_else(|| {
        eprintln!("error: missing required argument {key}");
        std::process::exit(2);
    })
}

fn serve(args: &[String]) {
    let socket = required(args, "--socket");
    let store = required(args, "--store");
    let mut config = peak_serve::ServeConfig::new(&socket, &store);
    if let Some(w) = arg_value(args, "--workers") {
        config.workers = w.parse().unwrap_or_else(|_| {
            eprintln!("error: --workers wants an integer, got {w:?}");
            std::process::exit(2);
        });
    }
    if let Some(q) = arg_value(args, "--queue-cap") {
        config.queue_cap = q.parse().unwrap_or_else(|_| {
            eprintln!("error: --queue-cap wants an integer, got {q:?}");
            std::process::exit(2);
        });
    }
    let trace_path = arg_value(args, "--trace");
    let tracer = match &trace_path {
        Some(path) => {
            let sink = JsonlSink::create(Path::new(path)).unwrap_or_else(|e| {
                eprintln!("error: cannot create trace file {path}: {e}");
                std::process::exit(1);
            });
            Tracer::to_sink(Arc::new(sink))
        }
        None => Tracer::disabled(),
    };
    let handle = peak_serve::start(config, tracer).unwrap_or_else(|e| {
        eprintln!("error: cannot start daemon on {socket}: {e}");
        std::process::exit(1);
    });
    eprintln!("peak-serve: listening on {socket} (store {store})");
    handle.wait();
    eprintln!("peak-serve: stopped");
    if let Some(path) = trace_path {
        eprintln!("trace: wrote {path}");
    }
}

fn send(args: &[String]) {
    let socket = required(args, "--socket");
    let lines: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !a.starts_with("--") && (i == 0 || args[i - 1] != "--socket")
        })
        .map(|(_, a)| a)
        .collect();
    if lines.is_empty() {
        eprintln!("error: nothing to send");
        std::process::exit(2);
    }
    let mut stream = UnixStream::connect(&socket).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {socket}: {e}");
        std::process::exit(1);
    });
    let read_half = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("error: cannot clone socket: {e}");
        std::process::exit(1);
    });
    for line in &lines {
        writeln!(stream, "{line}").expect("write request");
    }
    stream.flush().expect("flush requests");
    let reader = BufReader::new(read_half);
    let mut seen = 0;
    for response in reader.lines() {
        let response = response.unwrap_or_else(|e| {
            eprintln!("error: connection lost after {seen} responses: {e}");
            std::process::exit(1);
        });
        println!("{response}");
        seen += 1;
        if seen == lines.len() {
            return;
        }
    }
    eprintln!("error: daemon closed the connection after {seen} of {} responses", lines.len());
    std::process::exit(1);
}
