//! `peak-serve` — run the tuning daemon, or talk to one.
//!
//! ```text
//! peak-serve serve --socket PATH --store DIR \
//!     [--workers N] [--queue-cap N] [--trace FILE]
//! peak-serve send --socket PATH LINE [LINE ...]
//! peak-serve stats --socket PATH [--watch SECS] [--prom] [--json]
//! ```
//!
//! `serve` runs until a `shutdown` request arrives. `send` writes each
//! LINE (a JSONL request) to the socket, waits for exactly one response
//! per request, and prints the responses in arrival order. `stats`
//! fetches the daemon's live telemetry and renders it human-readably
//! (default), as Prometheus text exposition (`--prom`), or raw
//! (`--json`); `--watch SECS` re-polls forever. Because the daemon
//! answers `stats` inline on the connection thread, all three keep
//! working while the job queue is saturated.

use peak_obs::{JsonlSink, SnapValue, Snapshot, Tracer};
use peak_util::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("serve") => serve(&args[2..]),
        Some("send") => send(&args[2..]),
        Some("stats") => stats(&args[2..]),
        _ => {
            eprintln!("usage: peak-serve serve --socket PATH --store DIR [--workers N] [--queue-cap N] [--trace FILE]");
            eprintln!("       peak-serve send --socket PATH LINE [LINE ...]");
            eprintln!("       peak-serve stats --socket PATH [--watch SECS] [--prom] [--json]");
            std::process::exit(2);
        }
    }
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter().position(|a| a == key).and_then(|i| args.get(i + 1).cloned())
}

fn required(args: &[String], key: &str) -> String {
    arg_value(args, key).unwrap_or_else(|| {
        eprintln!("error: missing required argument {key}");
        std::process::exit(2);
    })
}

fn serve(args: &[String]) {
    let socket = required(args, "--socket");
    let store = required(args, "--store");
    let mut config = peak_serve::ServeConfig::new(&socket, &store);
    if let Some(w) = arg_value(args, "--workers") {
        config.workers = w.parse().unwrap_or_else(|_| {
            eprintln!("error: --workers wants an integer, got {w:?}");
            std::process::exit(2);
        });
    }
    if let Some(q) = arg_value(args, "--queue-cap") {
        config.queue_cap = q.parse().unwrap_or_else(|_| {
            eprintln!("error: --queue-cap wants an integer, got {q:?}");
            std::process::exit(2);
        });
    }
    let trace_path = arg_value(args, "--trace");
    let tracer = match &trace_path {
        Some(path) => {
            let sink = JsonlSink::create(Path::new(path)).unwrap_or_else(|e| {
                eprintln!("error: cannot create trace file {path}: {e}");
                std::process::exit(1);
            });
            Tracer::to_sink(Arc::new(sink))
        }
        None => Tracer::disabled(),
    };
    let handle = peak_serve::start(config, tracer).unwrap_or_else(|e| {
        eprintln!("error: cannot start daemon on {socket}: {e}");
        std::process::exit(1);
    });
    eprintln!("peak-serve: listening on {socket} (store {store})");
    handle.wait();
    eprintln!("peak-serve: stopped");
    if let Some(path) = trace_path {
        eprintln!("trace: wrote {path}");
    }
}

/// One round-trip: connect, send `line`, read one response line.
fn query(socket: &str, line: &str) -> Result<String, String> {
    let mut stream =
        UnixStream::connect(socket).map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    let read_half = stream.try_clone().map_err(|e| format!("cannot clone socket: {e}"))?;
    writeln!(stream, "{line}").map_err(|e| format!("write failed: {e}"))?;
    stream.flush().map_err(|e| format!("flush failed: {e}"))?;
    let mut reader = BufReader::new(read_half);
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => Err("daemon closed the connection without responding".to_owned()),
        Ok(_) => Ok(response.trim_end().to_owned()),
        Err(e) => Err(format!("read failed: {e}")),
    }
}

fn u(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Human rendering of one stats response.
fn render_stats(j: &Json) {
    println!(
        "workers {}  queue {}  jobs ok {} / failed {}  shed {}  postmortems {}",
        u(j, "workers"),
        u(j, "queue_depth"),
        u(j, "jobs_ok"),
        u(j, "jobs_failed"),
        u(j, "shed"),
        u(j, "postmortems"),
    );
    if let Some(h) = j.get("store_health") {
        println!(
            "store   {} records, {} quarantined segment(s), {} salvaged / {} rejected line(s)",
            u(h, "records"),
            u(h, "quarantined_segments"),
            u(h, "salvaged_lines"),
            u(h, "rejected_lines"),
        );
    }
    let Some(snap) = j.get("metrics").and_then(Snapshot::from_json) else {
        println!("metrics unavailable (daemon running with PEAK_METRICS=0?)");
        return;
    };
    println!("metrics");
    for e in &snap.entries {
        match &e.value {
            SnapValue::Counter(v) => println!("  {:<40} {v}", e.name),
            SnapValue::Gauge(v) => println!("  {:<40} {v}", e.name),
            SnapValue::Histogram(h) => {
                let avg = h.sum.checked_div(h.count).unwrap_or(0);
                println!("  {:<40} count {} sum {} avg {}", e.name, h.count, h.sum, avg);
            }
        }
    }
}

fn stats(args: &[String]) {
    let socket = required(args, "--socket");
    let prom = args.iter().any(|a| a == "--prom");
    let raw = args.iter().any(|a| a == "--json");
    let watch: Option<u64> = arg_value(args, "--watch").map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: --watch wants whole seconds, got {s:?}");
            std::process::exit(2);
        })
    });
    let mut poll = 0u64;
    loop {
        poll += 1;
        match query(&socket, r#"{"id":"cli-stats","kind":"stats"}"#) {
            Err(e) if watch.is_some() => eprintln!("error: {e}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
            Ok(response) => {
                if watch.is_some() {
                    println!("--- poll {poll} ---");
                }
                if raw {
                    println!("{response}");
                } else {
                    let j = peak_util::from_str(&response).unwrap_or_else(|e| {
                        eprintln!("error: unparseable stats response: {e}");
                        std::process::exit(1);
                    });
                    if j.get("status").and_then(Json::as_str) != Some("ok") {
                        eprintln!("error: daemon refused stats: {response}");
                        std::process::exit(1);
                    }
                    if prom {
                        match j.get("metrics").and_then(Snapshot::from_json) {
                            Some(snap) => print!("{}", snap.render_prometheus()),
                            None => {
                                eprintln!("error: stats response carries no metrics snapshot");
                                std::process::exit(1);
                            }
                        }
                    } else {
                        render_stats(&j);
                    }
                }
            }
        }
        match watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs.max(1))),
            None => return,
        }
    }
}

fn send(args: &[String]) {
    let socket = required(args, "--socket");
    let lines: Vec<&String> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| {
            !a.starts_with("--") && (i == 0 || args[i - 1] != "--socket")
        })
        .map(|(_, a)| a)
        .collect();
    if lines.is_empty() {
        eprintln!("error: nothing to send");
        std::process::exit(2);
    }
    let mut stream = UnixStream::connect(&socket).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to {socket}: {e}");
        std::process::exit(1);
    });
    let read_half = stream.try_clone().unwrap_or_else(|e| {
        eprintln!("error: cannot clone socket: {e}");
        std::process::exit(1);
    });
    for line in &lines {
        writeln!(stream, "{line}").expect("write request");
    }
    stream.flush().expect("flush requests");
    let reader = BufReader::new(read_half);
    let mut seen = 0;
    for response in reader.lines() {
        let response = response.unwrap_or_else(|e| {
            eprintln!("error: connection lost after {seen} responses: {e}");
            std::process::exit(1);
        });
        println!("{response}");
        seen += 1;
        if seen == lines.len() {
            return;
        }
    }
    eprintln!("error: daemon closed the connection after {seen} of {} responses", lines.len());
    std::process::exit(1);
}
