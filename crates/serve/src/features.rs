//! Program feature vectors: the knowledge store's key space.
//!
//! Cross-program warm starts (Cereda et al.'s collaborative filtering,
//! PAPERS.md) need a notion of program similarity. We reuse the IR
//! analyses the consultant already runs — CFG, dominators, loop forest —
//! to summarize a tuning section's *shape*: block/statement counts, loop
//! structure, memory-reference and call density, and the invocation
//! volume of the training input. Nearest-neighbour distance is summed
//! absolute difference in log-space (counts vary over orders of
//! magnitude; log1p keeps small sections comparable to big ones).

use peak_ir::{Cfg, Dominators, LoopForest, Rvalue, Stmt};
use peak_util::{Json, ToJson};
use peak_workloads::{Dataset, Workload};

/// Shape summary of one tuning section (the knowledge-store key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeatureVec {
    /// Basic blocks in the TS function.
    pub blocks: u64,
    /// Statements in the TS function.
    pub stmts: u64,
    /// Natural loops.
    pub loops: u64,
    /// Maximum loop nesting depth.
    pub max_loop_depth: u64,
    /// Memory loads (including prefetches' address computations).
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Call sites (void + value calls).
    pub calls: u64,
    /// Declared memory regions in the program.
    pub regions: u64,
    /// TS invocations per training run.
    pub invocations: u64,
}

impl FeatureVec {
    /// Extract the feature vector of a workload's tuning section.
    pub fn of_workload(w: &dyn Workload) -> FeatureVec {
        let prog = w.program();
        let f = prog.func(w.ts());
        let cfg = Cfg::build(f);
        let dom = Dominators::build(f, &cfg);
        let forest = LoopForest::build(f, &cfg, &dom);
        let mut v = FeatureVec {
            blocks: f.num_blocks() as u64,
            loops: forest.loops.len() as u64,
            max_loop_depth: forest.loops.iter().map(|l| l.depth as u64).max().unwrap_or(0),
            regions: prog.mems.len() as u64,
            invocations: w.invocations(Dataset::Train) as u64,
            ..FeatureVec::default()
        };
        for b in f.block_ids() {
            for s in &f.block(b).stmts {
                v.stmts += 1;
                match s {
                    Stmt::Assign { rv, .. } => match rv {
                        Rvalue::Load(_) => v.loads += 1,
                        Rvalue::Call { .. } => v.calls += 1,
                        _ => {}
                    },
                    Stmt::Store { .. } => v.stores += 1,
                    Stmt::CallVoid { .. } => v.calls += 1,
                    Stmt::Prefetch { .. } => v.loads += 1,
                    Stmt::CounterInc { .. } => {}
                }
            }
        }
        v
    }

    /// The vector as ordered components (for distance and serialization).
    fn components(&self) -> [u64; 9] {
        [
            self.blocks,
            self.stmts,
            self.loops,
            self.max_loop_depth,
            self.loads,
            self.stores,
            self.calls,
            self.regions,
            self.invocations,
        ]
    }

    /// Log-space L1 distance: `Σ |ln(1+aᵢ) − ln(1+bᵢ)|`. Zero iff the
    /// vectors are identical; insensitive to absolute scale.
    pub fn distance(&self, other: &FeatureVec) -> f64 {
        self.components()
            .iter()
            .zip(other.components().iter())
            .map(|(&a, &b)| ((a as f64).ln_1p() - (b as f64).ln_1p()).abs())
            .sum()
    }

    /// Parse the JSON written by [`ToJson`].
    pub fn from_json(j: &Json) -> Option<FeatureVec> {
        Some(FeatureVec {
            blocks: j.get("blocks")?.as_u64()?,
            stmts: j.get("stmts")?.as_u64()?,
            loops: j.get("loops")?.as_u64()?,
            max_loop_depth: j.get("max_loop_depth")?.as_u64()?,
            loads: j.get("loads")?.as_u64()?,
            stores: j.get("stores")?.as_u64()?,
            calls: j.get("calls")?.as_u64()?,
            regions: j.get("regions")?.as_u64()?,
            invocations: j.get("invocations")?.as_u64()?,
        })
    }
}

impl ToJson for FeatureVec {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("blocks", self.blocks.to_json()),
            ("stmts", self.stmts.to_json()),
            ("loops", self.loops.to_json()),
            ("max_loop_depth", self.max_loop_depth.to_json()),
            ("loads", self.loads.to_json()),
            ("stores", self.stores.to_json()),
            ("calls", self.calls.to_json()),
            ("regions", self.regions.to_json()),
            ("invocations", self.invocations.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_has_a_nonempty_feature_vector() {
        for w in peak_workloads::all_workloads() {
            let v = FeatureVec::of_workload(w.as_ref());
            // Not every TS has loops or calls (VORTEX's is branchy
            // straight-line code), but blocks/statements/invocations
            // always distinguish it.
            assert!(v.blocks > 0 && v.stmts > 0 && v.invocations > 0, "{}: {v:?}", w.name());
            assert_eq!(v.distance(&v), 0.0, "{}", w.name());
        }
    }

    #[test]
    fn self_distance_is_minimal() {
        // A workload's own vector must be its nearest neighbour.
        let ws = peak_workloads::all_workloads();
        let vecs: Vec<FeatureVec> = ws.iter().map(|w| FeatureVec::of_workload(w.as_ref())).collect();
        for (i, v) in vecs.iter().enumerate() {
            for (k, o) in vecs.iter().enumerate() {
                if i != k {
                    assert!(v.distance(o) >= v.distance(v), "{} vs {}", ws[i].name(), ws[k].name());
                }
            }
        }
    }

    #[test]
    fn json_roundtrip() {
        let v = FeatureVec::of_workload(peak_workloads::workload_by_name("SWIM").unwrap().as_ref());
        let back = FeatureVec::from_json(&peak_util::from_str(&v.to_json().compact()).unwrap());
        assert_eq!(back, Some(v));
    }
}
