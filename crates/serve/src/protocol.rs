//! The JSONL request/response protocol spoken over the daemon's Unix
//! socket.
//!
//! One request per line, one response per request; responses carry the
//! request's `id` and may arrive out of submission order (jobs run
//! concurrently). Malformed lines never kill the connection: they get a
//! structured `{"status":"error","error":"malformed"}` response with the
//! line's `id` when one could be salvaged.
//!
//! Request kinds: `tune` (the real work), `ping`, `stats`, `health`,
//! `shutdown`. The kind key is `"kind"`, with `"type"` accepted as an
//! alias for monitoring tools that speak `{"type":"stats"}`. `stats`,
//! `health`, `ping` and `shutdown` are answered inline on the
//! connection thread — they never touch the worker queue, so they keep
//! answering while the queue is saturated. See DESIGN.md §13/§14 for
//! the full field tables.

use peak_util::Json;
use peak_workloads::Dataset;

/// Test-only fault injection carried by a `tune` request (the storm
/// harness and CI smoke use these to exercise the supervisor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Panic inside the job boundary (exercises panic isolation +
    /// retry).
    Panic,
    /// Sleep cooperatively for this many milliseconds before tuning
    /// (exercises deadlines; cancellable).
    Slow(u64),
}

/// A parsed `tune` request.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRequest {
    /// Benchmark name.
    pub benchmark: String,
    /// Machine name.
    pub machine: String,
    /// Rating method name; `None` lets the consultant pick.
    pub method: Option<String>,
    /// Search strategy name (`"ie"`, `"ga"`, `"clustered"`, `"random"`);
    /// `None` runs the default serial IE, which stays bit-identical to
    /// offline tuning.
    pub strategy: Option<String>,
    /// Tuning dataset (default train).
    pub dataset: Dataset,
    /// Per-job deadline in milliseconds; `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Warm-start IE from the knowledge store's nearest neighbour
    /// (default off — off is bit-identical to offline tuning).
    pub warm_start: bool,
    /// Test-only fault injection.
    pub inject: Option<Inject>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Request id, echoed in the response.
        id: String,
    },
    /// Daemon/store/pool counters plus the live metrics snapshot.
    Stats {
        /// Request id, echoed in the response.
        id: String,
    },
    /// Cheap liveness/readiness summary (no metrics snapshot, no store
    /// lock contention beyond a length read).
    Health {
        /// Request id, echoed in the response.
        id: String,
    },
    /// Graceful shutdown (in-flight jobs finish, queued jobs are
    /// refused).
    Shutdown {
        /// Request id, echoed in the response.
        id: String,
    },
    /// Run one tuning job.
    Tune {
        /// Request id, echoed in the response.
        id: String,
        /// The job.
        job: TuneRequest,
    },
}

impl Request {
    /// The request id.
    pub fn id(&self) -> &str {
        match self {
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Health { id }
            | Request::Shutdown { id }
            | Request::Tune { id, .. } => id,
        }
    }
}

/// Best-effort id extraction from a line that failed full parsing, so
/// even a malformed request's error response can be correlated.
pub fn salvage_id(line: &str) -> Option<String> {
    let j = peak_util::from_str(line).ok()?;
    Some(j.get("id")?.as_str()?.to_owned())
}

/// Parse one request line. `Err` carries a human-readable reason for the
/// `malformed` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let j = peak_util::from_str(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let id = j
        .get("id")
        .and_then(Json::as_str)
        .ok_or("missing string field \"id\"")?
        .to_owned();
    let kind = j
        .get("kind")
        .or_else(|| j.get("type"))
        .and_then(Json::as_str)
        .ok_or("missing string field \"kind\" (or its alias \"type\")")?;
    match kind {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "health" => Ok(Request::Health { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "tune" => {
            let benchmark = j
                .get("benchmark")
                .and_then(Json::as_str)
                .ok_or("tune request missing string field \"benchmark\"")?
                .to_owned();
            let machine = j
                .get("machine")
                .and_then(Json::as_str)
                .ok_or("tune request missing string field \"machine\"")?
                .to_owned();
            let method = match j.get("method") {
                None | Some(Json::Null) => None,
                Some(m) => {
                    Some(m.as_str().ok_or("field \"method\" must be a string")?.to_owned())
                }
            };
            let strategy = match j.get("strategy") {
                None | Some(Json::Null) => None,
                Some(s) => {
                    Some(s.as_str().ok_or("field \"strategy\" must be a string")?.to_owned())
                }
            };
            let dataset = match j.get("dataset") {
                None | Some(Json::Null) => Dataset::Train,
                Some(d) => match d.as_str() {
                    Some("train") => Dataset::Train,
                    Some("ref") => Dataset::Ref,
                    _ => return Err("field \"dataset\" must be \"train\" or \"ref\"".into()),
                },
            };
            let deadline_ms = match j.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(d) => {
                    Some(d.as_u64().ok_or("field \"deadline_ms\" must be a non-negative integer")?)
                }
            };
            let warm_start = match j.get("warm_start") {
                None | Some(Json::Null) => false,
                Some(w) => w.as_bool().ok_or("field \"warm_start\" must be a boolean")?,
            };
            let inject = match j.get("inject") {
                None | Some(Json::Null) => None,
                Some(i) => {
                    let s = i.as_str().ok_or("field \"inject\" must be a string")?;
                    if s == "panic" {
                        Some(Inject::Panic)
                    } else if let Some(ms) = s.strip_prefix("slow:") {
                        let ms = ms
                            .parse::<u64>()
                            .map_err(|_| "inject \"slow:<ms>\" needs an integer".to_string())?;
                        Some(Inject::Slow(ms))
                    } else {
                        return Err(format!("unknown inject {s:?} (want \"panic\" or \"slow:<ms>\")"));
                    }
                }
            };
            Ok(Request::Tune {
                id,
                job: TuneRequest {
                    benchmark,
                    machine,
                    method,
                    strategy,
                    dataset,
                    deadline_ms,
                    warm_start,
                    inject,
                },
            })
        }
        other => Err(format!("unknown request kind {other:?}")),
    }
}

/// `{"id":…,"status":"ok",…extra}` — success response line.
pub fn ok_response(id: &str, extra: Vec<(&'static str, Json)>) -> String {
    let mut pairs = vec![
        ("id".to_owned(), Json::Str(id.to_owned())),
        ("status".to_owned(), Json::Str("ok".to_owned())),
    ];
    pairs.extend(extra.into_iter().map(|(k, v)| (k.to_owned(), v)));
    Json::Obj(pairs).compact()
}

/// `{"id":…,"status":"error","error":kind,"message":…}` — structured
/// failure response line. `id` falls back to `"?"` when the request's id
/// could not be salvaged.
pub fn error_response(id: Option<&str>, kind: &str, message: &str, retries: u32) -> String {
    let mut pairs = vec![
        ("id".to_owned(), Json::Str(id.unwrap_or("?").to_owned())),
        ("status".to_owned(), Json::Str("error".to_owned())),
        ("error".to_owned(), Json::Str(kind.to_owned())),
        ("message".to_owned(), Json::Str(message.to_owned())),
    ];
    if retries > 0 {
        pairs.push(("retries".to_owned(), Json::U(retries as u64)));
    }
    Json::Obj(pairs).compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_tune_request() {
        let line = r#"{"id":"j1","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","method":"CBR","dataset":"train","deadline_ms":5000,"warm_start":true}"#;
        let req = parse_request(line).unwrap();
        let Request::Tune { id, job } = req else { panic!("not a tune") };
        assert_eq!(id, "j1");
        assert_eq!(job.benchmark, "SWIM");
        assert_eq!(job.machine, "SPARC-II");
        assert_eq!(job.method.as_deref(), Some("CBR"));
        assert_eq!(job.strategy, None);
        assert_eq!(job.dataset, Dataset::Train);
        assert_eq!(job.deadline_ms, Some(5000));
        assert!(job.warm_start);
        assert_eq!(job.inject, None);
    }

    #[test]
    fn defaults_and_injects() {
        let req =
            parse_request(r#"{"id":"x","kind":"tune","benchmark":"ART","machine":"p4"}"#).unwrap();
        let Request::Tune { job, .. } = req else { panic!() };
        assert_eq!(job.dataset, Dataset::Train);
        assert_eq!(job.deadline_ms, None);
        assert!(!job.warm_start);
        let req = parse_request(
            r#"{"id":"x","kind":"tune","benchmark":"ART","machine":"p4","inject":"slow:250"}"#,
        )
        .unwrap();
        let Request::Tune { job, .. } = req else { panic!() };
        assert_eq!(job.inject, Some(Inject::Slow(250)));
    }

    #[test]
    fn strategy_field_parses_and_rejects_non_strings() {
        let req = parse_request(
            r#"{"id":"x","kind":"tune","benchmark":"ART","machine":"p4","strategy":"ga"}"#,
        )
        .unwrap();
        let Request::Tune { job, .. } = req else { panic!() };
        assert_eq!(job.strategy.as_deref(), Some("ga"));
        assert!(parse_request(
            r#"{"id":"x","kind":"tune","benchmark":"ART","machine":"p4","strategy":7}"#,
        )
        .is_err());
    }

    #[test]
    fn health_parses_and_type_aliases_kind() {
        assert_eq!(
            parse_request(r#"{"id":"h1","kind":"health"}"#).unwrap(),
            Request::Health { id: "h1".into() }
        );
        assert_eq!(
            parse_request(r#"{"id":"s1","type":"stats"}"#).unwrap(),
            Request::Stats { id: "s1".into() }
        );
        // "kind" wins when both are present.
        assert_eq!(
            parse_request(r#"{"id":"x","kind":"ping","type":"stats"}"#).unwrap(),
            Request::Ping { id: "x".into() }
        );
    }

    #[test]
    fn malformed_lines_fail_with_reasons_and_salvage_ids() {
        assert!(parse_request("not json at all").is_err());
        assert!(parse_request(r#"{"kind":"ping"}"#).is_err()); // no id
        assert!(parse_request(r#"{"id":"a","kind":"dance"}"#).is_err());
        assert!(parse_request(r#"{"id":"a","kind":"tune"}"#).is_err()); // no benchmark
        assert_eq!(salvage_id(r#"{"id":"j9","kind":"dance"}"#).as_deref(), Some("j9"));
        assert_eq!(salvage_id("not json at all"), None);
    }

    #[test]
    fn response_lines_are_compact_jsonl() {
        let ok = ok_response("j1", vec![("result", Json::U(7))]);
        assert_eq!(ok, r#"{"id":"j1","status":"ok","result":7}"#);
        let err = error_response(Some("j2"), "panicked", "job panicked: boom", 2);
        assert_eq!(
            err,
            r#"{"id":"j2","status":"error","error":"panicked","message":"job panicked: boom","retries":2}"#
        );
        let anon = error_response(None, "malformed", "invalid JSON", 0);
        assert!(anon.starts_with(r#"{"id":"?","#));
    }
}
