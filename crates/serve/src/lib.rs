//! # peak-serve — crash-safe tuning-as-a-service
//!
//! A long-lived daemon exposing the `peak-core` tuning job API
//! ([`peak_core::run_tuning_job`]) over a Unix socket speaking JSONL.
//! The paper's workflow (rate candidate optimizations, iteratively
//! eliminate harmful ones, report the best configuration) becomes a
//! service: submit `{"id":…,"kind":"tune","benchmark":…,"machine":…}`,
//! read back one structured response per request.
//!
//! Layers:
//!
//! * [`protocol`] — request/response line format (parse, salvage,
//!   respond);
//! * [`supervisor`] — per-job deadlines (a shared watchdog thread firing
//!   cooperative [`peak_core::CancelToken`]s), bounded retry with
//!   exponential backoff, fault injection for the harnesses;
//! * [`daemon`] — socket accept loop, bounded admission queue with
//!   load-shedding, worker threads multiplexing jobs onto the
//!   work-stealing [`peak_core::Pool`], graceful shutdown;
//! * [`features`] / [`store`] — program feature vectors and the
//!   CRC-framed, salvage-and-quarantine knowledge store that persists
//!   completed ratings and warm-starts similar jobs;
//! * [`flight`] — per-job flight recorders: bounded event rings dumped
//!   to `postmortem/` JSONL on panic, deadline-fire, or store
//!   quarantine.
//!
//! The daemon also answers `stats` (full live-metrics snapshot) and
//! `health` (cheap readiness) inline on the connection threads, so both
//! keep working while the job queue is saturated.
//!
//! The robustness contract (pinned by `serve_storm` and the e2e tests):
//! the daemon survives panicking jobs, malformed lines, blown deadlines,
//! overload, and a corrupted store — every failure answers a structured
//! error, and valid jobs' results stay bit-identical to offline tuning.
//!
//! See DESIGN.md §13 for the protocol field tables and store format,
//! and §14 for the metrics architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod features;
pub mod flight;
pub mod protocol;
pub mod store;
pub mod supervisor;

pub use daemon::{start, DaemonHandle, ServeConfig};
pub use features::FeatureVec;
pub use flight::FlightRecorder;
pub use protocol::{
    error_response, ok_response, parse_request, salvage_id, Inject, Request, TuneRequest,
};
pub use store::{KnowledgeStore, ShardHealth, StoreHealth, StoreRecord};
pub use supervisor::{run_supervised, DeadlineWatchdog, JobOutcome, RetryPolicy};
