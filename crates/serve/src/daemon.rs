//! The tuning daemon: a Unix-socket JSONL server multiplexing tuning
//! jobs onto the shared `peak-core` work-stealing pool.
//!
//! ## Crash-safety doctrine
//!
//! The daemon assumes every job wants to kill it and arranges not to
//! die:
//!
//! * jobs run under `catch_unwind` (in [`peak_core::run_tuning_job`]) —
//!   a panicking job answers `{"error":"panicked"}` after bounded
//!   retries, and the pool's poison-tolerant locks plus drop-guard token
//!   release keep the scheduler healthy for the next job;
//! * malformed request lines answer `{"error":"malformed"}` (with the
//!   line's `id` when salvageable) and never tear the connection;
//! * admission control bounds the queue — beyond
//!   [`ServeConfig::queue_cap`] pending jobs, new `tune` requests are
//!   load-shed with `{"error":"overloaded"}` and a `serve.shed` trace
//!   event instead of growing without bound;
//! * deadlines fire the job's [`CancelToken`] from the shared
//!   [`DeadlineWatchdog`]; cancellation is cooperative and answers
//!   `{"error":"deadline_exceeded"}`;
//! * graceful shutdown lets in-flight jobs finish and refuses queued and
//!   new ones with `{"error":"shutdown"}`.
//!
//! Completed results persist into the [`KnowledgeStore`]; requests with
//! `"warm_start":true` seed IE from the nearest stored neighbour
//! (same machine, closest feature vector). Warm start is opt-in because
//! a warm-started search is *not* bit-identical to the offline O3-start
//! search — the default path is.

use crate::features::FeatureVec;
use crate::flight::FlightRecorder;
use crate::protocol::{error_response, ok_response, parse_request, salvage_id, Request, TuneRequest};
use crate::store::{KnowledgeStore, StoreRecord};
use crate::supervisor::{run_supervised, DeadlineWatchdog, RetryPolicy};
use peak_core::sched::Pool;
use peak_core::{method_by_name, CancelToken, JobError, TuningJobSpec, VersionCache};
use peak_obs::metrics::{self, Counter, Gauge, MetricsRegistry};
use peak_obs::{event, span, Tracer};
use peak_util::{Json, ToJson};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path (unlinked and re-bound at startup).
    pub socket: PathBuf,
    /// Knowledge-store directory.
    pub store_dir: PathBuf,
    /// Post-mortem directory; `None` = `<store_dir>/postmortem`.
    pub postmortem_dir: Option<PathBuf>,
    /// Worker threads executing tuning jobs.
    pub workers: usize,
    /// Max queued (not yet running) jobs before load-shedding.
    pub queue_cap: usize,
    /// Retry policy for panicked jobs.
    pub retry: RetryPolicy,
}

impl ServeConfig {
    /// Defaults: 2 workers, queue of 8, default retry policy.
    pub fn new(socket: impl Into<PathBuf>, store_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            store_dir: store_dir.into(),
            postmortem_dir: None,
            workers: 2,
            queue_cap: 8,
            retry: RetryPolicy::default(),
        }
    }

    /// Where post-mortems land.
    pub fn postmortem_dir(&self) -> PathBuf {
        self.postmortem_dir.clone().unwrap_or_else(|| self.store_dir.join("postmortem"))
    }
}

/// Connection writer: responses from concurrent workers interleave
/// whole-line-atomically.
type Out = Arc<Mutex<UnixStream>>;

struct QueuedJob {
    id: String,
    job: TuneRequest,
    /// Verbatim request line, embedded in post-mortems for replay.
    line: String,
    out: Out,
}

/// Per-daemon counters, reported by the `stats` response. These stay
/// per-instance (a test process may run several daemons); the global
/// [`MetricsRegistry`] mirror below aggregates process-wide.
#[derive(Default)]
struct Stats {
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    shed: AtomicU64,
    postmortems: AtomicU64,
}

/// Process-wide metric handles the daemon feeds (registered once; every
/// increment is one relaxed `fetch_add` behind the global enable flag).
struct ServeMetrics {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    malformed: Arc<Counter>,
    jobs_ok: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    shed: Arc<Counter>,
    postmortems: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    workers_busy: Arc<Gauge>,
}

fn serve_metrics() -> &'static ServeMetrics {
    static M: OnceLock<ServeMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = MetricsRegistry::global();
        ServeMetrics {
            connections: r.counter("serve.connections", "Client connections accepted"),
            requests: r.counter("serve.requests", "Request lines parsed successfully"),
            malformed: r.counter("serve.malformed", "Request lines that failed to parse"),
            jobs_ok: r.counter("serve.jobs_ok", "Tuning jobs completed successfully"),
            jobs_failed: r.counter("serve.jobs_failed", "Tuning jobs that failed"),
            shed: r.counter("serve.shed", "Tune requests load-shed at admission"),
            postmortems: r.counter("serve.postmortems", "Post-mortem dumps written"),
            queue_depth: r.gauge("serve.queue_depth", "Jobs queued, not yet running"),
            workers_busy: r.gauge("serve.workers_busy", "Workers currently running a job"),
        }
    })
}

struct Inner {
    config: ServeConfig,
    tracer: Tracer,
    pool: Pool,
    watchdog: DeadlineWatchdog,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    store: Mutex<KnowledgeStore>,
    shutdown: AtomicBool,
    stats: Stats,
}

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle to a running daemon.
pub struct DaemonHandle {
    inner: Arc<Inner>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// Request graceful shutdown (equivalent to a `shutdown` request).
    pub fn stop(&self) {
        initiate_shutdown(&self.inner);
    }

    /// Block until the daemon has fully stopped, then remove the socket.
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.inner.config.socket);
    }

    /// The socket path the daemon is listening on.
    pub fn socket(&self) -> &std::path::Path {
        &self.inner.config.socket
    }
}

/// Cancellation unwinds are routine control flow (every blown deadline
/// fires one); keep the default panic hook from spamming stderr with
/// their backtraces. Real panics still print. Installed once per
/// process, wrapping whatever hook was there.
fn silence_cancelled_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<peak_core::Cancelled>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Start the daemon: bind the socket, open (and, where needed,
/// quarantine) the knowledge store, spawn the accept loop and worker
/// threads. Returns once the daemon is accepting connections.
pub fn start(config: ServeConfig, tracer: Tracer) -> std::io::Result<DaemonHandle> {
    silence_cancelled_panics();
    let _ = std::fs::remove_file(&config.socket);
    if let Some(parent) = config.socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let listener = UnixListener::bind(&config.socket)?;
    // Open the store under a flight recorder: if any segment gets
    // quarantined, the quarantine/salvage events become a startup
    // post-mortem artifact.
    let open_recorder = FlightRecorder::new("store-open", "");
    let store = KnowledgeStore::open(&config.store_dir, open_recorder.tracer(&tracer))?;
    if store.quarantined() > 0 {
        match open_recorder.dump(&config.postmortem_dir(), "store_quarantine") {
            Ok(path) => {
                event!(tracer, "serve.postmortem", reason = "store_quarantine", path = path.display().to_string());
            }
            Err(e) => {
                event!(tracer, "serve.postmortem_error", reason = "store_quarantine", error = e.to_string());
            }
        }
        if metrics::enabled() {
            serve_metrics().postmortems.inc();
        }
    }
    event!(
        tracer,
        "serve.start",
        socket = config.socket.display().to_string(),
        workers = config.workers as u64,
        queue_cap = config.queue_cap as u64,
        store_records = store.len() as u64,
        store_quarantined = store.quarantined() as u64,
    );
    let inner = Arc::new(Inner {
        tracer,
        pool: Pool::from_env(),
        watchdog: DeadlineWatchdog::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        stats: Stats::default(),
        config,
        store: Mutex::new(store),
    });
    if lock_ok(&inner.store).quarantined() > 0 {
        inner.stats.postmortems.fetch_add(1, Ordering::Relaxed);
    }
    let workers = (0..inner.config.workers.max(1))
        .map(|k| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("peak-serve-worker-{k}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn worker thread")
        })
        .collect();
    let accept_inner = inner.clone();
    let accept = std::thread::Builder::new()
        .name("peak-serve-accept".into())
        .spawn(move || accept_loop(&accept_inner, &listener))
        .expect("spawn accept thread");
    Ok(DaemonHandle { inner, accept: Some(accept), workers })
}

fn initiate_shutdown(inner: &Arc<Inner>) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    event!(inner.tracer, "serve.shutdown");
    inner.queue_cv.notify_all();
    // Unblock the accept loop: it re-checks the flag per connection.
    let _ = UnixStream::connect(&inner.config.socket);
}

fn accept_loop(inner: &Arc<Inner>, listener: &UnixListener) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let conn_inner = inner.clone();
                // Connection readers are detached: they exit on client
                // EOF and never block shutdown.
                let _ = std::thread::Builder::new()
                    .name("peak-serve-conn".into())
                    .spawn(move || connection_loop(&conn_inner, stream));
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn respond(out: &Out, line: &str) {
    let mut stream = lock_ok(out);
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

fn connection_loop(inner: &Arc<Inner>, stream: UnixStream) {
    if metrics::enabled() {
        serve_metrics().connections.inc();
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let out: Out = Arc::new(Mutex::new(stream));
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        handle_line(inner, &line, &out);
    }
}

/// The `stats` response: per-daemon job counters (stable since PR 6),
/// store health, and the full process-wide metrics snapshot. Answered
/// inline on the connection thread — never queued behind tuning work.
fn stats_response(inner: &Arc<Inner>, id: &str) -> String {
    let (records, quarantined, store_health) = {
        let store = lock_ok(&inner.store);
        (store.len() as u64, store.quarantined() as u64, store.health())
    };
    // Pull the lazily-synced sources into the registry before
    // snapshotting so the exposition is current, and make sure the jit
    // tier counters exist even before the first jit-tier invocation.
    VersionCache::global().publish_metrics();
    peak_core::register_jit_metrics();
    let m = serve_metrics();
    m.queue_depth.set(lock_ok(&inner.queue).len() as i64);
    let snapshot = MetricsRegistry::global().snapshot();
    ok_response(
        id,
        vec![
            ("jobs_ok", inner.stats.jobs_ok.load(Ordering::Relaxed).to_json()),
            ("jobs_failed", inner.stats.jobs_failed.load(Ordering::Relaxed).to_json()),
            ("shed", inner.stats.shed.load(Ordering::Relaxed).to_json()),
            ("queue_depth", (lock_ok(&inner.queue).len() as u64).to_json()),
            ("store_records", records.to_json()),
            ("store_quarantined", quarantined.to_json()),
            ("workers", (inner.config.workers as u64).to_json()),
            ("postmortems", inner.stats.postmortems.load(Ordering::Relaxed).to_json()),
            ("store_health", store_health.to_json()),
            ("metrics", snapshot.to_json()),
        ],
    )
}

/// The `health` response: cheap readiness summary. No registry
/// snapshot, no store iteration — safe to poll at high frequency while
/// the daemon is drowning in work.
fn health_response(inner: &Arc<Inner>, id: &str) -> String {
    let queue_depth = lock_ok(&inner.queue).len() as u64;
    let shutting_down = inner.shutdown.load(Ordering::SeqCst);
    let accepting = !shutting_down && queue_depth < inner.config.queue_cap as u64;
    ok_response(
        id,
        vec![
            ("healthy", Json::Bool(true)),
            ("accepting", Json::Bool(accepting)),
            ("shutting_down", Json::Bool(shutting_down)),
            ("queue_depth", queue_depth.to_json()),
            ("queue_cap", (inner.config.queue_cap as u64).to_json()),
            ("workers", (inner.config.workers as u64).to_json()),
        ],
    )
}

fn handle_line(inner: &Arc<Inner>, line: &str, out: &Out) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(reason) => {
            if metrics::enabled() {
                serve_metrics().malformed.inc();
            }
            let id = salvage_id(line);
            respond(out, &error_response(id.as_deref(), "malformed", &reason, 0));
            return;
        }
    };
    if metrics::enabled() {
        serve_metrics().requests.inc();
    }
    match request {
        Request::Ping { id } => {
            respond(out, &ok_response(&id, vec![("pong", Json::Bool(true))]));
        }
        Request::Stats { id } => {
            respond(out, &stats_response(inner, &id));
        }
        Request::Health { id } => {
            respond(out, &health_response(inner, &id));
        }
        Request::Shutdown { id } => {
            respond(out, &ok_response(&id, vec![("stopping", Json::Bool(true))]));
            initiate_shutdown(inner);
        }
        Request::Tune { id, job } => {
            if inner.shutdown.load(Ordering::SeqCst) {
                respond(out, &error_response(Some(&id), "shutdown", "daemon is shutting down", 0));
                return;
            }
            let mut queue = lock_ok(&inner.queue);
            if queue.len() >= inner.config.queue_cap {
                drop(queue);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                if metrics::enabled() {
                    serve_metrics().shed.inc();
                }
                event!(inner.tracer, "serve.shed", id = id.as_str(), benchmark = job.benchmark.as_str());
                respond(
                    out,
                    &error_response(
                        Some(&id),
                        "overloaded",
                        &format!("queue full ({} pending)", inner.config.queue_cap),
                        0,
                    ),
                );
                return;
            }
            queue.push_back(QueuedJob { id, job, line: line.to_owned(), out: out.clone() });
            if metrics::enabled() {
                serve_metrics().queue_depth.set(queue.len() as i64);
            }
            drop(queue);
            inner.queue_cv.notify_one();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let queued = {
            let mut queue = lock_ok(&inner.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    if metrics::enabled() {
                        serve_metrics().queue_depth.set(queue.len() as i64);
                    }
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            // Queued but never started: refuse, don't run.
            respond(
                &queued.out,
                &error_response(Some(&queued.id), "shutdown", "daemon is shutting down", 0),
            );
            continue;
        }
        if metrics::enabled() {
            serve_metrics().workers_busy.add(1);
        }
        process_tune(inner, &queued);
        if metrics::enabled() {
            serve_metrics().workers_busy.sub(1);
        }
    }
}

fn process_tune(inner: &Arc<Inner>, queued: &QueuedJob) {
    let id = &queued.id;
    let req = &queued.job;
    // Flight-record the job: its tracer tees into a bounded ring (plus
    // the daemon's own sink when tracing is on). On success the ring is
    // dropped; on panic or deadline it becomes a post-mortem.
    let recorder = FlightRecorder::new(id, &queued.line);
    let t = &recorder.tracer(&inner.tracer);
    let _span = span!(t, "serve.job", id = id.as_str(), benchmark = req.benchmark.as_str());

    // Resolve the method name here so bad names answer before any work.
    let method = match &req.method {
        None => None,
        Some(name) => match method_by_name(name) {
            Some(m) => Some(m),
            None => {
                inner.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
                if metrics::enabled() {
                    serve_metrics().jobs_failed.inc();
                }
                let e = JobError::UnknownMethod(name.clone());
                respond(&queued.out, &error_response(Some(id), e.kind(), &e.to_string(), 0));
                return;
            }
        },
    };

    // Same early resolution for the strategy name: reject typos before
    // queueing any tuning work (the job layer re-validates).
    if let Some(name) = &req.strategy {
        if peak_core::strategy_kind_by_name(name).is_none() {
            inner.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
            if metrics::enabled() {
                serve_metrics().jobs_failed.inc();
            }
            let e = JobError::UnknownStrategy(name.clone());
            respond(&queued.out, &error_response(Some(id), e.kind(), &e.to_string(), 0));
            return;
        }
    }

    // Feature vector of the requested section: the knowledge-store key,
    // both for warm-start lookup and for persisting the result.
    let features = peak_workloads::workload_by_name(&req.benchmark)
        .map(|w| FeatureVec::of_workload(w.as_ref()));
    let canonical_machine =
        peak_core::machine_spec_by_name(&req.machine).map(|s| s.kind.name().to_owned());

    let mut spec = TuningJobSpec::new(&req.benchmark, &req.machine);
    spec.method = method;
    spec.dataset = req.dataset;
    spec.strategy = req.strategy.clone();
    let mut warm_started = false;
    if req.warm_start {
        if let (Some(f), Some(machine)) = (&features, &canonical_machine) {
            if let Some(hit) = lock_ok(&inner.store).nearest(f, machine) {
                spec.start_bits = Some(hit.best_bits);
                warm_started = true;
                event!(
                    t,
                    "serve.warmstart",
                    id = id.as_str(),
                    benchmark = req.benchmark.as_str(),
                    neighbour = hit.benchmark.as_str(),
                    distance = f.distance(&hit.features),
                    start_bits = hit.best_bits,
                );
            }
        }
        // No neighbour / unknown names: silently fall back to the full
        // O3-start sweep (a cold store must not fail jobs).
    }

    let outcome = run_supervised(
        &spec,
        req.inject,
        req.deadline_ms,
        &inner.config.retry,
        &inner.watchdog,
        CancelToken::new(),
        t,
        &inner.pool,
    );
    match outcome.result {
        Ok(report) => {
            inner.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
            if metrics::enabled() {
                serve_metrics().jobs_ok.inc();
            }
            if let Some(f) = features {
                let rec = StoreRecord {
                    benchmark: report.benchmark.clone(),
                    machine: report.machine.clone(),
                    method: report.method.name().to_owned(),
                    features: f,
                    best_bits: report.search.best.bits(),
                    improvement_pct: report.improvement_pct,
                };
                if let Err(e) = lock_ok(&inner.store).record(rec) {
                    event!(t, "store.write_error", id = id.as_str(), error = e.to_string());
                }
            }
            let mut extra = vec![("result", report.to_json())];
            if outcome.retries > 0 {
                extra.push(("retries", outcome.retries.to_json()));
            }
            if warm_started {
                extra.push(("warm_started", Json::Bool(true)));
            }
            respond(&queued.out, &ok_response(id, extra));
        }
        Err(e) => {
            inner.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
            if metrics::enabled() {
                serve_metrics().jobs_failed.inc();
            }
            let (kind, message) = if e == JobError::Cancelled && outcome.deadline_hit {
                (
                    "deadline_exceeded",
                    format!("deadline of {}ms exceeded", req.deadline_ms.unwrap_or(0)),
                )
            } else {
                (e.kind(), e.to_string())
            };
            // Panics and blown deadlines leave a post-mortem; other
            // failures (unknown names, external cancels) are
            // deterministic spec errors with nothing to debug.
            let postmortem_reason = match &e {
                JobError::Panicked(_) => Some("panic"),
                JobError::Cancelled if outcome.deadline_hit => Some("deadline"),
                _ => None,
            };
            if let Some(reason) = postmortem_reason {
                match recorder.dump(&inner.config.postmortem_dir(), reason) {
                    Ok(path) => {
                        inner.stats.postmortems.fetch_add(1, Ordering::Relaxed);
                        if metrics::enabled() {
                            serve_metrics().postmortems.inc();
                        }
                        event!(
                            inner.tracer,
                            "serve.postmortem",
                            id = id.as_str(),
                            reason = reason,
                            path = path.display().to_string(),
                        );
                    }
                    Err(err) => {
                        event!(
                            inner.tracer,
                            "serve.postmortem_error",
                            id = id.as_str(),
                            reason = reason,
                            error = err.to_string(),
                        );
                    }
                }
            }
            respond(&queued.out, &error_response(Some(id), kind, &message, outcome.retries));
        }
    }
}
