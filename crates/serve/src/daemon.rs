//! The tuning daemon: a Unix-socket JSONL server multiplexing tuning
//! jobs onto the shared `peak-core` work-stealing pool.
//!
//! ## Crash-safety doctrine
//!
//! The daemon assumes every job wants to kill it and arranges not to
//! die:
//!
//! * jobs run under `catch_unwind` (in [`peak_core::run_tuning_job`]) —
//!   a panicking job answers `{"error":"panicked"}` after bounded
//!   retries, and the pool's poison-tolerant locks plus drop-guard token
//!   release keep the scheduler healthy for the next job;
//! * malformed request lines answer `{"error":"malformed"}` (with the
//!   line's `id` when salvageable) and never tear the connection;
//! * admission control bounds the queue — beyond
//!   [`ServeConfig::queue_cap`] pending jobs, new `tune` requests are
//!   load-shed with `{"error":"overloaded"}` and a `serve.shed` trace
//!   event instead of growing without bound;
//! * deadlines fire the job's [`CancelToken`] from the shared
//!   [`DeadlineWatchdog`]; cancellation is cooperative and answers
//!   `{"error":"deadline_exceeded"}`;
//! * graceful shutdown lets in-flight jobs finish and refuses queued and
//!   new ones with `{"error":"shutdown"}`.
//!
//! Completed results persist into the [`KnowledgeStore`]; requests with
//! `"warm_start":true` seed IE from the nearest stored neighbour
//! (same machine, closest feature vector). Warm start is opt-in because
//! a warm-started search is *not* bit-identical to the offline O3-start
//! search — the default path is.

use crate::features::FeatureVec;
use crate::protocol::{error_response, ok_response, parse_request, salvage_id, Request, TuneRequest};
use crate::store::{KnowledgeStore, StoreRecord};
use crate::supervisor::{run_supervised, DeadlineWatchdog, RetryPolicy};
use peak_core::sched::Pool;
use peak_core::{method_by_name, CancelToken, JobError, TuningJobSpec};
use peak_obs::{event, span, Tracer};
use peak_util::{Json, ToJson};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix socket path (unlinked and re-bound at startup).
    pub socket: PathBuf,
    /// Knowledge-store directory.
    pub store_dir: PathBuf,
    /// Worker threads executing tuning jobs.
    pub workers: usize,
    /// Max queued (not yet running) jobs before load-shedding.
    pub queue_cap: usize,
    /// Retry policy for panicked jobs.
    pub retry: RetryPolicy,
}

impl ServeConfig {
    /// Defaults: 2 workers, queue of 8, default retry policy.
    pub fn new(socket: impl Into<PathBuf>, store_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            socket: socket.into(),
            store_dir: store_dir.into(),
            workers: 2,
            queue_cap: 8,
            retry: RetryPolicy::default(),
        }
    }
}

/// Connection writer: responses from concurrent workers interleave
/// whole-line-atomically.
type Out = Arc<Mutex<UnixStream>>;

struct QueuedJob {
    id: String,
    job: TuneRequest,
    out: Out,
}

#[derive(Default)]
struct Stats {
    jobs_ok: AtomicU64,
    jobs_failed: AtomicU64,
    shed: AtomicU64,
}

struct Inner {
    config: ServeConfig,
    tracer: Tracer,
    pool: Pool,
    watchdog: DeadlineWatchdog,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    store: Mutex<KnowledgeStore>,
    shutdown: AtomicBool,
    stats: Stats,
}

fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Handle to a running daemon.
pub struct DaemonHandle {
    inner: Arc<Inner>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// Request graceful shutdown (equivalent to a `shutdown` request).
    pub fn stop(&self) {
        initiate_shutdown(&self.inner);
    }

    /// Block until the daemon has fully stopped, then remove the socket.
    pub fn wait(mut self) {
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&self.inner.config.socket);
    }

    /// The socket path the daemon is listening on.
    pub fn socket(&self) -> &std::path::Path {
        &self.inner.config.socket
    }
}

/// Cancellation unwinds are routine control flow (every blown deadline
/// fires one); keep the default panic hook from spamming stderr with
/// their backtraces. Real panics still print. Installed once per
/// process, wrapping whatever hook was there.
fn silence_cancelled_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<peak_core::Cancelled>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Start the daemon: bind the socket, open (and, where needed,
/// quarantine) the knowledge store, spawn the accept loop and worker
/// threads. Returns once the daemon is accepting connections.
pub fn start(config: ServeConfig, tracer: Tracer) -> std::io::Result<DaemonHandle> {
    silence_cancelled_panics();
    let _ = std::fs::remove_file(&config.socket);
    if let Some(parent) = config.socket.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let listener = UnixListener::bind(&config.socket)?;
    let store = KnowledgeStore::open(&config.store_dir, tracer.clone())?;
    event!(
        tracer,
        "serve.start",
        socket = config.socket.display().to_string(),
        workers = config.workers as u64,
        queue_cap = config.queue_cap as u64,
        store_records = store.len() as u64,
        store_quarantined = store.quarantined() as u64,
    );
    let inner = Arc::new(Inner {
        tracer,
        pool: Pool::from_env(),
        watchdog: DeadlineWatchdog::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        store: Mutex::new(store),
        shutdown: AtomicBool::new(false),
        stats: Stats::default(),
        config,
    });
    let workers = (0..inner.config.workers.max(1))
        .map(|k| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("peak-serve-worker-{k}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn worker thread")
        })
        .collect();
    let accept_inner = inner.clone();
    let accept = std::thread::Builder::new()
        .name("peak-serve-accept".into())
        .spawn(move || accept_loop(&accept_inner, &listener))
        .expect("spawn accept thread");
    Ok(DaemonHandle { inner, accept: Some(accept), workers })
}

fn initiate_shutdown(inner: &Arc<Inner>) {
    if inner.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    event!(inner.tracer, "serve.shutdown");
    inner.queue_cv.notify_all();
    // Unblock the accept loop: it re-checks the flag per connection.
    let _ = UnixStream::connect(&inner.config.socket);
}

fn accept_loop(inner: &Arc<Inner>, listener: &UnixListener) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let conn_inner = inner.clone();
                // Connection readers are detached: they exit on client
                // EOF and never block shutdown.
                let _ = std::thread::Builder::new()
                    .name("peak-serve-conn".into())
                    .spawn(move || connection_loop(&conn_inner, stream));
            }
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn respond(out: &Out, line: &str) {
    let mut stream = lock_ok(out);
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

fn connection_loop(inner: &Arc<Inner>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let out: Out = Arc::new(Mutex::new(stream));
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        handle_line(inner, &line, &out);
    }
}

fn handle_line(inner: &Arc<Inner>, line: &str, out: &Out) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(reason) => {
            let id = salvage_id(line);
            respond(out, &error_response(id.as_deref(), "malformed", &reason, 0));
            return;
        }
    };
    match request {
        Request::Ping { id } => {
            respond(out, &ok_response(&id, vec![("pong", Json::Bool(true))]));
        }
        Request::Stats { id } => {
            let (records, quarantined) = {
                let store = lock_ok(&inner.store);
                (store.len() as u64, store.quarantined() as u64)
            };
            respond(
                out,
                &ok_response(
                    &id,
                    vec![
                        ("jobs_ok", inner.stats.jobs_ok.load(Ordering::Relaxed).to_json()),
                        ("jobs_failed", inner.stats.jobs_failed.load(Ordering::Relaxed).to_json()),
                        ("shed", inner.stats.shed.load(Ordering::Relaxed).to_json()),
                        ("queue_depth", (lock_ok(&inner.queue).len() as u64).to_json()),
                        ("store_records", records.to_json()),
                        ("store_quarantined", quarantined.to_json()),
                        ("workers", (inner.config.workers as u64).to_json()),
                    ],
                ),
            );
        }
        Request::Shutdown { id } => {
            respond(out, &ok_response(&id, vec![("stopping", Json::Bool(true))]));
            initiate_shutdown(inner);
        }
        Request::Tune { id, job } => {
            if inner.shutdown.load(Ordering::SeqCst) {
                respond(out, &error_response(Some(&id), "shutdown", "daemon is shutting down", 0));
                return;
            }
            let mut queue = lock_ok(&inner.queue);
            if queue.len() >= inner.config.queue_cap {
                drop(queue);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                event!(inner.tracer, "serve.shed", id = id.as_str(), benchmark = job.benchmark.as_str());
                respond(
                    out,
                    &error_response(
                        Some(&id),
                        "overloaded",
                        &format!("queue full ({} pending)", inner.config.queue_cap),
                        0,
                    ),
                );
                return;
            }
            queue.push_back(QueuedJob { id, job, out: out.clone() });
            drop(queue);
            inner.queue_cv.notify_one();
        }
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let queued = {
            let mut queue = lock_ok(&inner.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_cv.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            // Queued but never started: refuse, don't run.
            respond(
                &queued.out,
                &error_response(Some(&queued.id), "shutdown", "daemon is shutting down", 0),
            );
            continue;
        }
        process_tune(inner, &queued);
    }
}

fn process_tune(inner: &Arc<Inner>, queued: &QueuedJob) {
    let id = &queued.id;
    let req = &queued.job;
    let t = &inner.tracer;
    let _span = span!(t, "serve.job", id = id.as_str(), benchmark = req.benchmark.as_str());

    // Resolve the method name here so bad names answer before any work.
    let method = match &req.method {
        None => None,
        Some(name) => match method_by_name(name) {
            Some(m) => Some(m),
            None => {
                inner.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
                let e = JobError::UnknownMethod(name.clone());
                respond(&queued.out, &error_response(Some(id), e.kind(), &e.to_string(), 0));
                return;
            }
        },
    };

    // Feature vector of the requested section: the knowledge-store key,
    // both for warm-start lookup and for persisting the result.
    let features = peak_workloads::workload_by_name(&req.benchmark)
        .map(|w| FeatureVec::of_workload(w.as_ref()));
    let canonical_machine =
        peak_core::machine_spec_by_name(&req.machine).map(|s| s.kind.name().to_owned());

    let mut spec = TuningJobSpec::new(&req.benchmark, &req.machine);
    spec.method = method;
    spec.dataset = req.dataset;
    let mut warm_started = false;
    if req.warm_start {
        if let (Some(f), Some(machine)) = (&features, &canonical_machine) {
            if let Some(hit) = lock_ok(&inner.store).nearest(f, machine) {
                spec.start_bits = Some(hit.best_bits);
                warm_started = true;
                event!(
                    t,
                    "serve.warmstart",
                    id = id.as_str(),
                    benchmark = req.benchmark.as_str(),
                    neighbour = hit.benchmark.as_str(),
                    distance = f.distance(&hit.features),
                    start_bits = hit.best_bits,
                );
            }
        }
        // No neighbour / unknown names: silently fall back to the full
        // O3-start sweep (a cold store must not fail jobs).
    }

    let outcome = run_supervised(
        &spec,
        req.inject,
        req.deadline_ms,
        &inner.config.retry,
        &inner.watchdog,
        CancelToken::new(),
        t,
        &inner.pool,
    );
    match outcome.result {
        Ok(report) => {
            inner.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
            if let Some(f) = features {
                let rec = StoreRecord {
                    benchmark: report.benchmark.clone(),
                    machine: report.machine.clone(),
                    method: report.method.name().to_owned(),
                    features: f,
                    best_bits: report.search.best.bits(),
                    improvement_pct: report.improvement_pct,
                };
                if let Err(e) = lock_ok(&inner.store).record(rec) {
                    event!(t, "store.write_error", id = id.as_str(), error = e.to_string());
                }
            }
            let mut extra = vec![("result", report.to_json())];
            if outcome.retries > 0 {
                extra.push(("retries", outcome.retries.to_json()));
            }
            if warm_started {
                extra.push(("warm_started", Json::Bool(true)));
            }
            respond(&queued.out, &ok_response(id, extra));
        }
        Err(e) => {
            inner.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let (kind, message) = if e == JobError::Cancelled && outcome.deadline_hit {
                (
                    "deadline_exceeded",
                    format!("deadline of {}ms exceeded", req.deadline_ms.unwrap_or(0)),
                )
            } else {
                (e.kind(), e.to_string())
            };
            respond(&queued.out, &error_response(Some(id), kind, &message, outcome.retries));
        }
    }
}
