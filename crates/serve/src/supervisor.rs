//! Per-job supervision: deadlines, bounded retry with exponential
//! backoff, and fault injection for the test harnesses.
//!
//! The daemon never trusts a job. Each one runs through
//! [`run_supervised`], which:
//!
//! * arms a [`DeadlineWatchdog`] entry when the request carries
//!   `deadline_ms` — a background thread fires the job's
//!   [`CancelToken`] at the deadline, and the cooperative checks inside
//!   `peak-core` (application-run starts, IE round boundaries) unwind
//!   with the `Cancelled` sentinel shortly after;
//! * retries **panicked** attempts (and only those — spec errors and
//!   cancellations are deterministic) up to [`RetryPolicy::max_retries`]
//!   times with exponential backoff;
//! * reports whether a `Cancelled` outcome was the watchdog's doing
//!   (`deadline_hit`), so the daemon can answer `deadline_exceeded`
//!   rather than a generic `cancelled`.

use crate::protocol::Inject;
use peak_core::{classify_panic, run_tuning_job, CancelToken, JobError, TuningJobSpec};
use peak_core::sched::Pool;
use peak_core::tuner::TuneReport;
use peak_obs::metrics::{self, Counter, Histogram, MetricsRegistry};
use peak_obs::{event, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Supervision metrics, registered once. The job-latency histogram is
/// wall-clock — explicitly outside the determinism doctrine (DESIGN.md
/// §14); the counters are deterministic for deterministic schedules.
struct SupMetrics {
    job_wall_ms: Arc<Histogram>,
    retries: Arc<Counter>,
    deadline_fired: Arc<Counter>,
    panics: Arc<Counter>,
}

fn sup_metrics() -> &'static SupMetrics {
    static M: OnceLock<SupMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = MetricsRegistry::global();
        SupMetrics {
            job_wall_ms: r.histogram(
                "serve.job_wall_ms",
                "Wall-clock of one supervised job, all attempts, milliseconds",
            ),
            retries: r.counter("serve.job_retries", "Panicked attempts retried"),
            deadline_fired: r.counter("serve.deadline_fired", "Jobs cancelled by their deadline"),
            panics: r.counter("serve.job_panics", "Job attempts that panicked"),
        }
    })
}

/// Bounded-retry policy for panicked jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = retries + 1).
    pub max_retries: u32,
    /// Backoff before the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff multiplier per further retry.
    pub factor: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, base_backoff_ms: 10, factor: 2 }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): `base · factorʳ`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let ms = self.base_backoff_ms.saturating_mul((self.factor as u64).saturating_pow(retry));
        Duration::from_millis(ms)
    }
}

struct WatchEntry {
    at: Instant,
    seq: u64,
    token: CancelToken,
    fired: Arc<AtomicBool>,
}

#[derive(Default)]
struct WatchState {
    entries: Vec<WatchEntry>,
    next_seq: u64,
    shutdown: bool,
}

struct WatchShared {
    state: Mutex<WatchState>,
    cv: Condvar,
}

/// Background deadline timer: one thread, many armed deadlines. Firing
/// an entry cancels its token (cooperative — the job unwinds at its next
/// check point) and marks the entry's `fired` flag so the outcome can be
/// classified as a deadline rather than an external cancel.
pub struct DeadlineWatchdog {
    shared: Arc<WatchShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Guard for one armed deadline; dropping it disarms (if not yet fired).
pub struct ArmedDeadline {
    shared: Arc<WatchShared>,
    seq: u64,
    fired: Arc<AtomicBool>,
}

impl ArmedDeadline {
    /// Whether the watchdog fired this deadline.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

impl Drop for ArmedDeadline {
    fn drop(&mut self) {
        let mut st = lock_ok(&self.shared.state);
        st.entries.retain(|e| e.seq != self.seq);
        self.shared.cv.notify_all();
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Default for DeadlineWatchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl DeadlineWatchdog {
    /// Start the watchdog thread.
    pub fn new() -> DeadlineWatchdog {
        let shared = Arc::new(WatchShared {
            state: Mutex::new(WatchState::default()),
            cv: Condvar::new(),
        });
        let worker = shared.clone();
        let thread = std::thread::Builder::new()
            .name("peak-serve-watchdog".into())
            .spawn(move || watchdog_loop(&worker))
            .expect("spawn watchdog thread");
        DeadlineWatchdog { shared, thread: Some(thread) }
    }

    /// Arm a deadline `after` from now that fires `token`.
    pub fn arm(&self, after: Duration, token: CancelToken) -> ArmedDeadline {
        let fired = Arc::new(AtomicBool::new(false));
        let mut st = lock_ok(&self.shared.state);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.entries.push(WatchEntry {
            at: Instant::now() + after,
            seq,
            token,
            fired: fired.clone(),
        });
        self.shared.cv.notify_all();
        ArmedDeadline { shared: self.shared.clone(), seq, fired }
    }
}

impl Drop for DeadlineWatchdog {
    fn drop(&mut self) {
        lock_ok(&self.shared.state).shutdown = true;
        self.shared.cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn watchdog_loop(shared: &WatchShared) {
    let mut st = lock_ok(&shared.state);
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        // Fire everything past due.
        let mut k = 0;
        while k < st.entries.len() {
            if st.entries[k].at <= now {
                let e = st.entries.swap_remove(k);
                e.fired.store(true, Ordering::Release);
                e.token.cancel();
            } else {
                k += 1;
            }
        }
        match st.entries.iter().map(|e| e.at).min() {
            Some(next) => {
                let wait = next.saturating_duration_since(now);
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, wait)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
            None => {
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

/// Sleep up to `total`, polling `token` so cancellation cuts the sleep
/// short. Returns `true` when the token fired.
fn sleep_cancellable(total: Duration, token: &CancelToken) -> bool {
    let step = Duration::from_millis(5);
    let end = Instant::now() + total;
    loop {
        if token.is_cancelled() {
            return true;
        }
        let now = Instant::now();
        if now >= end {
            return false;
        }
        std::thread::sleep(step.min(end - now));
    }
}

/// What the supervisor delivered for one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Final result after all attempts.
    pub result: Result<TuneReport, JobError>,
    /// Retries consumed (0 = first attempt settled it).
    pub retries: u32,
    /// Whether a `Cancelled` result was caused by the armed deadline.
    pub deadline_hit: bool,
}

/// One attempt: fault injection first (inside its own unwind boundary,
/// so an injected panic looks exactly like a real one), then the real
/// job.
fn run_attempt(
    spec: &TuningJobSpec,
    inject: Option<Inject>,
    tracer: &Tracer,
    pool: &Pool,
    cancel: &CancelToken,
) -> Result<TuneReport, JobError> {
    if let Some(inj) = inject {
        let injected = catch_unwind(AssertUnwindSafe(|| match inj {
            Inject::Panic => panic!("injected panic"),
            Inject::Slow(ms) => {
                if sleep_cancellable(Duration::from_millis(ms), cancel) {
                    cancel.check(); // unwind with the Cancelled sentinel
                }
            }
        }));
        if let Err(payload) = injected {
            return Err(classify_panic(payload));
        }
    }
    run_tuning_job(spec, tracer.clone(), pool, cancel.clone())
}

/// Run one job under full supervision: deadline, panic isolation (via
/// [`run_tuning_job`]), and bounded retry with exponential backoff.
/// `cancel` is the job's token — the daemon may also fire it externally
/// (shutdown); the watchdog fires it on deadline.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised(
    spec: &TuningJobSpec,
    inject: Option<Inject>,
    deadline_ms: Option<u64>,
    retry: &RetryPolicy,
    watchdog: &DeadlineWatchdog,
    cancel: CancelToken,
    tracer: &Tracer,
    pool: &Pool,
) -> JobOutcome {
    let armed =
        deadline_ms.map(|ms| watchdog.arm(Duration::from_millis(ms), cancel.clone()));
    let started = Instant::now();
    let mut retries = 0;
    loop {
        let result = run_attempt(spec, inject, tracer, pool, &cancel);
        if metrics::enabled() && matches!(result, Err(JobError::Panicked(_))) {
            sup_metrics().panics.inc();
        }
        let retryable = matches!(result, Err(JobError::Panicked(_)))
            && retries < retry.max_retries
            && !cancel.is_cancelled();
        if !retryable {
            let deadline_hit = armed.as_ref().is_some_and(ArmedDeadline::fired);
            if metrics::enabled() {
                let m = sup_metrics();
                m.job_wall_ms.observe(started.elapsed().as_millis() as u64);
                if deadline_hit {
                    m.deadline_fired.inc();
                }
            }
            return JobOutcome { result, retries, deadline_hit };
        }
        let backoff = retry.backoff(retries);
        event!(
            tracer,
            "serve.retry",
            benchmark = spec.benchmark.as_str(),
            retry = (retries + 1) as u64,
            backoff_ms = backoff.as_millis() as u64,
        );
        if metrics::enabled() {
            sup_metrics().retries.inc();
        }
        sleep_cancellable(backoff, &cancel);
        retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy { max_retries: 3, base_backoff_ms: 10, factor: 2 };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
    }

    #[test]
    fn watchdog_fires_expired_deadlines_only() {
        let dog = DeadlineWatchdog::new();
        let hot = CancelToken::new();
        let cold = CancelToken::new();
        let armed_hot = dog.arm(Duration::from_millis(20), hot.clone());
        let armed_cold = dog.arm(Duration::from_secs(60), cold.clone());
        let start = Instant::now();
        while !hot.is_cancelled() && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(hot.is_cancelled(), "20ms deadline must fire");
        assert!(armed_hot.fired());
        assert!(!cold.is_cancelled(), "60s deadline must not fire");
        assert!(!armed_cold.fired());
    }

    #[test]
    fn disarming_prevents_firing() {
        let dog = DeadlineWatchdog::new();
        let token = CancelToken::new();
        drop(dog.arm(Duration::from_millis(10), token.clone()));
        std::thread::sleep(Duration::from_millis(60));
        assert!(!token.is_cancelled(), "dropped guard must disarm");
    }

    #[test]
    fn injected_panics_are_retried_to_exhaustion() {
        let dog = DeadlineWatchdog::new();
        let pool = Pool::with_threads(1);
        let retry = RetryPolicy { max_retries: 2, base_backoff_ms: 1, factor: 2 };
        let spec = TuningJobSpec::new("SWIM", "SPARC-II");
        let out = run_supervised(
            &spec,
            Some(Inject::Panic),
            None,
            &retry,
            &dog,
            CancelToken::new(),
            &Tracer::disabled(),
            &pool,
        );
        assert_eq!(out.result.unwrap_err(), JobError::Panicked("injected panic".into()));
        assert_eq!(out.retries, 2, "both retries consumed");
        assert!(!out.deadline_hit);
    }

    #[test]
    fn deadline_cuts_a_slow_job_and_is_attributed() {
        let dog = DeadlineWatchdog::new();
        let pool = Pool::with_threads(1);
        let spec = TuningJobSpec::new("SWIM", "SPARC-II");
        let start = Instant::now();
        let out = run_supervised(
            &spec,
            Some(Inject::Slow(60_000)),
            Some(30),
            &RetryPolicy::default(),
            &dog,
            CancelToken::new(),
            &Tracer::disabled(),
            &pool,
        );
        assert_eq!(out.result.unwrap_err(), JobError::Cancelled);
        assert!(out.deadline_hit, "cancel must be attributed to the deadline");
        assert_eq!(out.retries, 0, "cancellation is not retried");
        assert!(start.elapsed() < Duration::from_secs(30), "must not sleep the full minute");
    }

    #[test]
    fn spec_errors_are_not_retried() {
        let dog = DeadlineWatchdog::new();
        let pool = Pool::with_threads(1);
        let spec = TuningJobSpec::new("NOPE", "SPARC-II");
        let out = run_supervised(
            &spec,
            None,
            None,
            &RetryPolicy::default(),
            &dog,
            CancelToken::new(),
            &Tracer::disabled(),
            &pool,
        );
        assert_eq!(out.result.unwrap_err(), JobError::UnknownBenchmark("NOPE".into()));
        assert_eq!(out.retries, 0);
    }
}
