//! Flight recorder: bounded per-job event rings that become post-mortem
//! artifacts when a job dies.
//!
//! Every tuning job the daemon runs gets a [`FlightRecorder`]: a
//! [`RingSink`] holding the job's most recent [`TraceEvent`]s (the
//! daemon's tracer is teed into it via a [`FanoutSink`], so the
//! instrumented code is unaware it is being recorded). On success the
//! recorder is simply dropped — zero I/O. On panic, deadline-fire, or a
//! store quarantine at startup, [`FlightRecorder::dump`] writes the ring
//! to `postmortem/<job>-<reason>-<n>.jsonl`: a header line carrying the
//! verbatim request (so the failure is replayable with `peak_serve
//! send`) followed by the recorded event lines. `catch_unwind` stops
//! being a silence machine — the last thing a dead job saw is on disk.

use peak_obs::{FanoutSink, RingSink, TraceSink, Tracer};
use peak_util::{Json, ToJson};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Events retained per job. Big enough for several IE rounds of spans;
/// small enough that hundreds of concurrent jobs stay cheap.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// One job's bounded event recorder.
pub struct FlightRecorder {
    ring: Arc<RingSink>,
    job_id: String,
    /// Verbatim request line, embedded in the dump header for replay.
    request_line: String,
}

impl FlightRecorder {
    /// Recorder for job `job_id`, remembering `request_line` verbatim.
    pub fn new(job_id: &str, request_line: &str) -> FlightRecorder {
        FlightRecorder {
            ring: Arc::new(RingSink::new(DEFAULT_RING_CAPACITY)),
            job_id: job_id.to_owned(),
            request_line: request_line.to_owned(),
        }
    }

    /// The job tracer: everything the job emits lands in this recorder's
    /// ring, *and* in `base`'s sink when `base` is enabled. The returned
    /// tracer is always enabled — flight recording needs events even
    /// when the daemon runs untraced (the ring bounds the cost).
    pub fn tracer(&self, base: &Tracer) -> Tracer {
        let sink: Arc<dyn TraceSink> = match base.sink() {
            Some(main) => Arc::new(FanoutSink::new(vec![main, self.ring.clone()])),
            None => self.ring.clone(),
        };
        let t = Tracer::to_sink(sink);
        if base.wall_clock() {
            t.with_wall_clock()
        } else {
            t
        }
    }

    /// Events currently retained (oldest first).
    pub fn lines(&self) -> Vec<String> {
        self.ring.lines()
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Write the post-mortem: `dir/<job>-<reason>-<n>.jsonl` (first free
    /// `n`, so repeated failures never clobber each other). Line 1 is
    /// the header object; the rest are the recorded event lines. Returns
    /// the path written.
    pub fn dump(&self, dir: &Path, reason: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let safe_job: String = self
            .job_id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let mut n = 0;
        let path = loop {
            let cand = dir.join(format!("{safe_job}-{reason}-{n}.jsonl"));
            if !cand.exists() {
                break cand;
            }
            n += 1;
        };
        let lines = self.ring.lines();
        let header = Json::obj(vec![
            ("postmortem", Json::Str(reason.to_owned())),
            ("job_id", Json::Str(self.job_id.clone())),
            ("request", Json::Str(self.request_line.clone())),
            ("events", lines.len().to_json()),
            ("events_dropped", self.ring.dropped().to_json()),
        ]);
        let mut out = header.compact();
        out.push('\n');
        for line in &lines {
            out.push_str(line);
            out.push('\n');
        }
        // Durable like the store segments: a post-mortem that a crash
        // can half-write defeats its purpose.
        peak_util::write_durable(&path, out.as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_obs::{event, BufferSink};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("peak-flight-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn job_tracer_tees_into_ring_and_base() {
        let base_sink = Arc::new(BufferSink::new());
        let base = Tracer::to_sink(base_sink.clone());
        let fr = FlightRecorder::new("job-1", r#"{"id":"job-1","kind":"tune"}"#);
        let t = fr.tracer(&base);
        event!(t, "serve.step", n = 1u64);
        event!(t, "serve.step", n = 2u64);
        assert_eq!(base_sink.len(), 2, "base sink sees the events");
        assert_eq!(fr.lines().len(), 2, "ring sees the events");
    }

    #[test]
    fn disabled_base_still_records() {
        let fr = FlightRecorder::new("job-2", "{}");
        let t = fr.tracer(&Tracer::disabled());
        assert!(t.enabled());
        event!(t, "serve.step", n = 1u64);
        assert_eq!(fr.lines().len(), 1);
    }

    #[test]
    fn dump_writes_replayable_header_plus_events() {
        let dir = tmpdir("dump");
        let request = r#"{"id":"j9","kind":"tune","benchmark":"SWIM","machine":"SPARC-II","inject":"panic"}"#;
        let fr = FlightRecorder::new("j9", request);
        let t = fr.tracer(&Tracer::disabled());
        for k in 0..3 {
            event!(t, "serve.step", n = k as u64);
        }
        let p1 = fr.dump(&dir, "panic").unwrap();
        let p2 = fr.dump(&dir, "panic").unwrap();
        assert_ne!(p1, p2, "repeated dumps never clobber");
        let text = std::fs::read_to_string(&p1).unwrap();
        let mut lines = text.lines();
        let header = peak_util::from_str(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("postmortem").unwrap().as_str(), Some("panic"));
        assert_eq!(header.get("job_id").unwrap().as_str(), Some("j9"));
        assert_eq!(header.get("request").unwrap().as_str(), Some(request));
        assert_eq!(header.get("events").unwrap().as_u64(), Some(3));
        let events: Vec<_> = lines.collect();
        assert_eq!(events.len(), 3);
        for line in events {
            peak_obs::TraceEvent::parse_line(line).expect("event lines parse");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weird_job_ids_produce_safe_filenames() {
        let dir = tmpdir("safename");
        let fr = FlightRecorder::new("../../etc/passwd", "{}");
        let path = fr.dump(&dir, "panic").unwrap();
        assert!(path.starts_with(&dir), "dump stays inside the postmortem dir");
        std::fs::remove_dir_all(&dir).ok();
    }
}
