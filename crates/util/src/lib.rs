//! Dependency-free JSON support.
//!
//! The workspace builds in a container without registry access, so result
//! emission (`table1 --json`, `figure7 --json`, `fault_matrix`) and the
//! tuning checkpoint layer share this small JSON model instead of
//! serde_json. The writer reproduces serde_json's pretty format — two-space
//! indent, object keys in insertion order, ryu-style float notation
//! (decimal with a trailing `.0` for integral values when
//! `1e-5 ≤ |v| < 1e16`, scientific otherwise) — so files regenerated here
//! stay byte-compatible with the committed golden results.

pub mod crc;
pub mod fs;
pub mod json;
pub mod parse;

pub use crc::crc32;
pub use fs::{fsync_parent_dir, write_durable};
pub use json::{to_string_compact, to_string_pretty, Json, ToJson};
pub use parse::{from_str, ParseError};
