//! The JSON value model and serde_json-compatible pretty writer.

use std::fmt::Write as _;

/// A JSON value. Integers keep their own variants so u64 counters
/// round-trip exactly; object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I(i64),
    /// Unsigned integer.
    U(u64),
    /// Floating point (must be finite to serialize).
    F(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Unsigned integer view (also accepts exact signed/float values).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U(v) => Some(v),
            Json::I(v) => u64::try_from(v).ok(),
            Json::F(v) if v >= 0.0 && v.fract() == 0.0 && v < u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I(v) => Some(v),
            Json::U(v) => i64::try_from(v).ok(),
            Json::F(v) if v.fract() == 0.0 && v.abs() < i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Float view (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F(v) => Some(v),
            Json::I(v) => Some(v as f64),
            Json::U(v) => Some(v as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with serde_json's pretty format.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out
    }

    /// Serialize on a single line with no whitespace (serde_json's
    /// `to_string` format) — the JSONL form used by trace sinks.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }
}

/// Compact-serialize any convertible value (drop-in for
/// `serde_json::to_string`).
pub fn to_string_compact<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().compact()
}

/// Conversion into the JSON model (the stand-in for `serde::Serialize`).
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Pretty-serialize any convertible value (drop-in for
/// `serde_json::to_string_pretty`, minus the `Result` wrapper — the value
/// model cannot fail to serialize).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! to_json_int {
    ($variant:ident: $($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::$variant(*self as _)
            }
        }
    )+};
}

to_json_int!(U: u8, u16, u32, u64, usize);
to_json_int!(I: i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

macro_rules! to_json_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
    };
}

to_json_tuple!(A.0, B.1);
to_json_tuple!(A.0, B.1, C.2);
to_json_tuple!(A.0, B.1, C.2, D.3);

const INDENT: &str = "  ";

fn write_value(out: &mut String, v: &Json, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::I(n) => {
            let _ = write!(out, "{n}");
        }
        Json::U(n) => {
            let _ = write!(out, "{n}");
        }
        Json::F(x) => write_f64(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push(if i == 0 { '\n' } else { ',' });
                if i > 0 {
                    out.push('\n');
                }
                push_indent(out, depth + 1);
                write_value(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push(if i == 0 { '\n' } else { ',' });
                if i > 0 {
                    out.push('\n');
                }
                push_indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value(out, val, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
    }
}

fn write_compact(out: &mut String, v: &Json) {
    match v {
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
        scalar => write_value(out, scalar, 0),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str(INDENT);
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Ryu-compatible float notation: `0.0`/`-0.0` for zero; plain decimal
/// (with a trailing `.0` when integral) for `1e-5 ≤ |v| < 1e16`;
/// scientific (Rust `{:e}`, which matches ryu's shortest digits and bare
/// exponent) outside that range. Non-finite values become `null`, as
/// serde_json refuses them.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == 0.0 {
        out.push_str(if v.is_sign_negative() { "-0.0" } else { "0.0" });
        return;
    }
    let abs = v.abs();
    if (1e-5..1e16).contains(&abs) {
        let start = out.len();
        let _ = write!(out, "{v}");
        if !out[start..].contains('.') {
            out.push_str(".0");
        }
    } else {
        let _ = write!(out, "{v:e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_match_ryu_notation() {
        let mut s = String::new();
        for (v, want) in [
            (0.0, "0.0"),
            (-0.0, "-0.0"),
            (160.0, "160.0"),
            (0.05345762719100052, "0.05345762719100052"),
            (-1.1749860343949573e-14, "-1.1749860343949573e-14"),
            (1e16, "1e16"),
            (2.5e-15, "2.5e-15"),
            (0.00001, "0.00001"),
        ] {
            s.clear();
            write_f64(&mut s, v);
            assert_eq!(s, want);
        }
    }

    #[test]
    fn pretty_matches_serde_layout() {
        let v = Json::obj(vec![
            ("name", Json::Str("x".into())),
            ("cells", Json::Arr(vec![(10usize, 0.5f64, 2.0f64).to_json()])),
            ("empty", Json::Arr(vec![])),
        ]);
        let expect = "{\n  \"name\": \"x\",\n  \"cells\": [\n    [\n      10,\n      0.5,\n      2.0\n    ]\n  ],\n  \"empty\": []\n}";
        assert_eq!(v.pretty(), expect);
    }

    #[test]
    fn compact_is_single_line_and_parses_back() {
        let v = Json::obj(vec![
            ("seq", Json::U(3)),
            ("kind", Json::Str("rating".into())),
            ("cv", Json::F(0.0125)),
            ("flags", Json::Arr(vec![Json::Str("gcse".into()), Json::Null])),
            ("empty", Json::obj::<&str>(vec![])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n') && !line.contains(": "), "{line}");
        assert_eq!(
            line,
            r#"{"seq":3,"kind":"rating","cv":0.0125,"flags":["gcse",null],"empty":{}}"#
        );
        assert_eq!(crate::from_str(&line).unwrap(), v);
    }

    #[test]
    fn roundtrip_through_parser() {
        let v = Json::obj(vec![
            ("a", Json::U(7)),
            ("b", Json::I(-3)),
            ("c", Json::F(0.25)),
            ("d", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("e", Json::Str("line\n\"quoted\"".into())),
        ]);
        let parsed = crate::from_str(&v.pretty()).unwrap();
        assert_eq!(parsed, v);
    }
}
