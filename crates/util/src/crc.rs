//! CRC-32 (ISO-HDLC / zlib polynomial) for knowledge-store record
//! framing.
//!
//! The container has no registry access, so this is the standard
//! table-driven implementation rather than a dependency on `crc32fast`.
//! The parameters are the ubiquitous ones (polynomial `0xEDB88320`
//! reflected, init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`), so values
//! written here can be checked by any external zlib-compatible tool.

/// Lazily built 256-entry lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32/ISO-HDLC of `data` (the zlib `crc32()` value).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" and a few anchors
        // computable with zlib's crc32().
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = b"PEAKKS1 {\"bits\":42}".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "byte {byte} bit {bit}");
            }
        }
    }
}
