//! Durable file writes shared by the tuner checkpoint and the serve
//! knowledge store.
//!
//! `write_durable` upgrades the classic write-temp-then-rename pattern
//! to actually survive power loss: the temp file is fsynced before the
//! rename (so the rename never exposes a file whose *contents* are still
//! in the page cache), and the parent directory is fsynced after (so the
//! rename itself — a directory mutation — is on stable storage). Without
//! the second fsync a crash shortly after a "successful" save can roll
//! the directory entry back to the old file or to nothing.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Durably replace the file at `path` with `bytes`:
/// write `path.tmp` → fsync it → rename over `path` → fsync the parent
/// directory. Crash-safe at every step: readers see either the old
/// complete file or the new complete file, and once this returns `Ok`
/// the new contents survive power loss.
pub fn write_durable(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent_dir(path)
}

/// fsync the directory containing `path`, committing renames/creates of
/// entries within it. A missing parent (bare relative filename) syncs
/// `"."`.
pub fn fsync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_durable_replaces_atomically() {
        let dir = std::env::temp_dir().join("peak-util-fs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.json");
        write_durable(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_durable(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        // No temp file left behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_parent_of_bare_filename_uses_cwd() {
        fsync_parent_dir(Path::new("just-a-name.txt")).unwrap();
    }
}
