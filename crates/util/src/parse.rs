//! Recursive-descent JSON parser (checkpoint files, replay configs).

use crate::Json;
use std::fmt;

/// Parse failure with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document.
pub fn from_str(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("surrogate in \\u escape"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Continue a UTF-8 sequence byte-by-byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F)
            .map_err(|_| ParseError { offset: start, message: format!("bad number `{text}`") })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
