//! # peak-opt — the tunable optimizing compiler
//!
//! Implements the paper's search space: 38 boolean optimization flags
//! (matching the "n = 38 optimization options implied by -O3 of GCC 3.3",
//! §5.2), each backed by a real IR transformation or codegen policy.
//!
//! * [`config`] — flags and [`OptConfig`] configurations,
//! * [`passes`] — the transformations,
//! * [`pipeline`] — pass sequencing; [`optimize`] produces a
//!   [`CompiledVersion`],
//! * [`regalloc`] — register-pressure/spill analysis parameterized by the
//!   target machine's register file (consumed by `peak-sim`),
//! * [`validate`] — translation validation: per-pass structural
//!   verification and the semantic oracle behind
//!   [`optimize_checked`](pipeline::optimize_checked),
//! * [`util`] — shared pass machinery.

#![warn(missing_docs)]

pub mod config;
pub mod passes;
pub mod pipeline;
pub mod regalloc;
pub mod util;
pub mod validate;

pub use config::{Flag, OptConfig, ALL_FLAGS, NUM_FLAGS};
pub use pipeline::{optimize, optimize_checked, CompiledVersion};
pub use regalloc::{allocate, RegBudget, SpillInfo};
pub use validate::{
    default_level, FailureKind, PassId, ValidationFailure, ValidationLevel, Validator,
    VALIDATE_ENV,
};
