//! Shared helpers for optimizer passes: operand substitution, single-def
//! queries, expression keys for CSE, and block-subgraph cloning used by the
//! loop-restructuring and inlining passes.

use peak_ir::{
    BinOp, BlockId, Function, MemBase, MemRef, Operand, Rvalue, Stmt, Terminator, Value, VarId,
};
use std::collections::HashMap;

/// Apply `f` to every operand read by `rv`.
pub fn map_rvalue_operands(rv: &mut Rvalue, f: &mut impl FnMut(&mut Operand)) {
    match rv {
        Rvalue::Use(a) | Rvalue::Unary(_, a) => f(a),
        Rvalue::Binary(_, a, b) => {
            f(a);
            f(b);
        }
        Rvalue::Load(mr) => f(&mut mr.index),
        Rvalue::AddrOf(_, i) => f(i),
        Rvalue::Select { cond, on_true, on_false } => {
            f(cond);
            f(on_true);
            f(on_false);
        }
        Rvalue::Call { args, .. } => {
            for a in args {
                f(a);
            }
        }
    }
}

/// Apply `f` to every operand read by `s` (not the defined variable).
pub fn map_stmt_operands(s: &mut Stmt, f: &mut impl FnMut(&mut Operand)) {
    match s {
        Stmt::Assign { rv, .. } => map_rvalue_operands(rv, f),
        Stmt::Store { dst, src } => {
            f(&mut dst.index);
            f(src);
        }
        Stmt::CallVoid { args, .. } => {
            for a in args {
                f(a);
            }
        }
        Stmt::Prefetch { addr } => f(&mut addr.index),
        Stmt::CounterInc { .. } => {}
    }
}

/// Apply `f` to the operand of a terminator, if any.
pub fn map_term_operands(t: &mut Terminator, f: &mut impl FnMut(&mut Operand)) {
    match t {
        Terminator::Branch { cond, .. } => f(cond),
        Terminator::Return(Some(v)) => f(v),
        _ => {}
    }
}

/// Substitute variable `from` with operand `to` in a single operand.
pub fn subst_operand(op: &mut Operand, from: VarId, to: &Operand) -> bool {
    if let Operand::Var(v) = op {
        if *v == from {
            *op = *to;
            return true;
        }
    }
    false
}

/// Number of defining assignments of each variable (params excluded; a
/// parameter counts as having an implicit entry definition, recorded
/// separately by callers when it matters).
pub fn def_counts(f: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; f.num_vars()];
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            if let Some(d) = s.def() {
                counts[d.index()] += 1;
            }
        }
    }
    counts
}

/// The unique defining site `(block, stmt)` of each single-def variable.
pub fn single_def_sites(f: &Function) -> HashMap<VarId, (BlockId, usize)> {
    let counts = def_counts(f);
    let mut sites = HashMap::new();
    for b in f.block_ids() {
        for (si, s) in f.block(b).stmts.iter().enumerate() {
            if let Some(d) = s.def() {
                if counts[d.index()] == 1 && !f.params.contains(&d) {
                    sites.insert(d, (b, si));
                }
            }
        }
    }
    sites
}

/// A hashable key identifying a value-numbered operand: constants by value
/// bits, variables by id (callers ensure single-def).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKey {
    /// Constant by type tag + bits.
    Const(u8, u64),
    /// Variable by id.
    Var(u32),
}

/// Key for an operand.
pub fn op_key(op: &Operand) -> OpKey {
    match op {
        Operand::Var(v) => OpKey::Var(v.0),
        Operand::Const(c) => {
            let (tag, bits) = match c {
                Value::I64(x) => (0u8, *x as u64),
                Value::F64(x) => (1u8, x.to_bits()),
                Value::Ptr(p) => (2u8, ((p.mem.0 as u64) << 40) ^ (p.offset as u64)),
            };
            OpKey::Const(tag, bits)
        }
    }
}

/// A hashable key for a pure rvalue, canonicalizing commutative operand
/// order. `None` for impure rvalues (loads, calls) — CSE handles those
/// separately with invalidation tracking.
pub fn pure_expr_key(rv: &Rvalue) -> Option<(u32, OpKey, OpKey, OpKey)> {
    const NONE: OpKey = OpKey::Const(255, 0);
    Some(match rv {
        Rvalue::Unary(op, a) => (0x100 + *op as u32, op_key(a), NONE, NONE),
        Rvalue::Binary(op, a, b) => {
            let (mut ka, mut kb) = (op_key(a), op_key(b));
            if op.is_commutative() && kb < ka {
                std::mem::swap(&mut ka, &mut kb);
            }
            (0x200 + *op as u32, ka, kb, NONE)
        }
        Rvalue::AddrOf(m, i) => (0x300 + m.0, op_key(i), NONE, NONE),
        Rvalue::Select { cond, on_true, on_false } => {
            (0x400, op_key(cond), op_key(on_true), op_key(on_false))
        }
        _ => return None,
    })
}

/// Whether an rvalue can be speculated (moved to where it may execute more
/// often / earlier) without changing semantics: pure and non-trapping.
pub fn is_speculatable(rv: &Rvalue) -> bool {
    match rv {
        Rvalue::Binary(BinOp::Div | BinOp::Rem, _, b) => {
            // Trapping unless the divisor is a nonzero constant.
            matches!(b, Operand::Const(Value::I64(k)) if *k != 0)
        }
        Rvalue::Use(_) | Rvalue::Unary(..) | Rvalue::Binary(..) | Rvalue::AddrOf(..)
        | Rvalue::Select { .. } => true,
        Rvalue::Load(_) | Rvalue::Call { .. } => false,
    }
}

/// Clone the blocks in `body` (a set of block ids) into fresh blocks of
/// `f`, remapping internal edges. Edges leaving `body` are redirected via
/// `exit_map` (old target → new target); unmapped external targets keep
/// their original target. Returns old→new block mapping.
pub fn clone_subgraph(
    f: &mut Function,
    body: &[BlockId],
    exit_map: &HashMap<BlockId, BlockId>,
) -> HashMap<BlockId, BlockId> {
    let mut map = HashMap::new();
    for &b in body {
        let nb = f.add_block();
        map.insert(b, nb);
    }
    for &b in body {
        let nb = map[&b];
        let mut blk = f.block(b).clone();
        let remap = |t: BlockId| -> BlockId {
            if let Some(&n) = map.get(&t) {
                n
            } else if let Some(&n) = exit_map.get(&t) {
                n
            } else {
                t
            }
        };
        match &mut blk.term {
            Terminator::Jump(t) => *t = remap(*t),
            Terminator::Branch { on_true, on_false, .. } => {
                *on_true = remap(*on_true);
                *on_false = remap(*on_false);
            }
            Terminator::Return(_) => {}
        }
        *f.block_mut(nb) = blk;
    }
    map
}

/// Whether a memory reference has a statically known address:
/// `(region, element)` for `Global(m)[const]`.
pub fn static_address(f: &Function, mr: &MemRef) -> Option<(peak_ir::MemId, i64)> {
    let _ = f;
    match (mr.base, mr.index) {
        (MemBase::Global(m), Operand::Const(Value::I64(i))) => Some((m, i)),
        _ => None,
    }
}

/// Count reachable statements (code-size proxy used by size heuristics and
/// the I-cache footprint model).
pub fn reachable_size(f: &Function) -> usize {
    let cfg = peak_ir::Cfg::build(f);
    cfg.rpo.iter().map(|&b| f.block(b).stmts.len() + 1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Type};

    #[test]
    fn pure_expr_key_canonicalizes_commutative() {
        let a = Operand::Var(VarId(1));
        let b = Operand::Var(VarId(2));
        let k1 = pure_expr_key(&Rvalue::Binary(BinOp::Add, a, b));
        let k2 = pure_expr_key(&Rvalue::Binary(BinOp::Add, b, a));
        assert_eq!(k1, k2);
        let k3 = pure_expr_key(&Rvalue::Binary(BinOp::Sub, a, b));
        let k4 = pure_expr_key(&Rvalue::Binary(BinOp::Sub, b, a));
        assert_ne!(k3, k4, "sub is not commutative");
        assert_eq!(pure_expr_key(&Rvalue::Load(MemRef::global(peak_ir::MemId(0), 0i64))), None);
    }

    #[test]
    fn speculation_safety() {
        let v = Operand::Var(VarId(0));
        assert!(is_speculatable(&Rvalue::Binary(BinOp::Add, v, v)));
        assert!(!is_speculatable(&Rvalue::Binary(BinOp::Div, v, v)));
        assert!(is_speculatable(&Rvalue::Binary(BinOp::Div, v, Operand::const_i64(4))));
        assert!(!is_speculatable(&Rvalue::Binary(BinOp::Div, v, Operand::const_i64(0))));
        assert!(!is_speculatable(&Rvalue::Load(MemRef::global(peak_ir::MemId(0), 0i64))));
    }

    #[test]
    fn def_counts_and_single_sites() {
        let mut b = FunctionBuilder::new("f", None);
        let x = b.var("x", Type::I64);
        let y = b.var("y", Type::I64);
        b.copy(x, 1i64);
        b.copy(x, 2i64);
        b.copy(y, 3i64);
        b.ret(None);
        let f = b.finish();
        let counts = def_counts(&f);
        assert_eq!(counts[x.index()], 2);
        assert_eq!(counts[y.index()], 1);
        let sites = single_def_sites(&f);
        assert!(!sites.contains_key(&x));
        assert_eq!(sites[&y], (BlockId(0), 2));
    }

    #[test]
    fn clone_subgraph_remaps_edges() {
        let mut b = FunctionBuilder::new("f", None);
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        b.for_loop(i, 0i64, n, 1, |_| {});
        b.ret(None);
        let mut f = b.finish();
        // Clone header(1), body(2), latch(3); redirect exits to block 0 for
        // the test.
        let mut exit_map = HashMap::new();
        exit_map.insert(BlockId(4), BlockId(0));
        let body = [BlockId(1), BlockId(2), BlockId(3)];
        let map = clone_subgraph(&mut f, &body, &exit_map);
        let nh = map[&BlockId(1)];
        // New header branches to new body / redirected exit.
        match &f.block(nh).term {
            Terminator::Branch { on_true, on_false, .. } => {
                assert_eq!(*on_true, map[&BlockId(2)]);
                assert_eq!(*on_false, BlockId(0));
            }
            t => panic!("unexpected terminator {t:?}"),
        }
        // New latch jumps back to new header.
        assert_eq!(f.block(map[&BlockId(3)]).term, Terminator::Jump(nh));
    }
}
