//! The optimization pipeline: runs the passes enabled by an [`OptConfig`]
//! in a GCC-3.3-like order and produces a [`CompiledVersion`].

use crate::config::{Flag, OptConfig};
use crate::passes;
use crate::util::reachable_size;
use peak_ir::{FuncId, Program};

/// One compiled version of a tuning section: the transformed program, the
/// configuration that produced it, and code-size stats consumed by the
/// machine model (I-cache footprint, alignment padding).
#[derive(Debug, Clone)]
pub struct CompiledVersion {
    /// Program with the target function optimized.
    pub program: Program,
    /// The optimized function.
    pub func: FuncId,
    /// Flags used.
    pub config: OptConfig,
    /// Reachable statement count of the optimized function (code size
    /// proxy; alignment padding included).
    pub code_size: usize,
}

/// Bound on fixpoint iterations for self-limiting passes.
const FIXPOINT_LIMIT: usize = 12;

/// Compile `func` under `config`, returning the compiled version.
/// The input program is cloned; callees are left as-is (each TS is
/// compiled separately, like the paper's per-TS compilation).
pub fn optimize(prog: &Program, func: FuncId, config: &OptConfig) -> CompiledVersion {
    let mut p = prog.clone();
    run_pipeline(&mut p, func, config);
    debug_assert_eq!(
        peak_ir::validate_program(&p).map_err(|e| e.to_string()),
        Ok(()),
        "pipeline produced invalid IR under {config}"
    );
    let mut code_size = reachable_size(p.func(func));
    // Alignment padding: aligned blocks cost a few padding slots.
    let aligned = p
        .func(func)
        .block_ids()
        .filter(|&b| p.func(func).block(b).aligned)
        .count();
    code_size += aligned * 2;
    CompiledVersion { program: p, func, config: *config, code_size }
}

fn scalar_cleanup_round(p: &mut Program, func: FuncId, config: &OptConfig) -> bool {
    let mut changed = false;
    let strict = config.enabled(Flag::StrictAliasing);
    if config.enabled(Flag::ConstantFolding) {
        changed |= passes::fold::run(p.func_mut(func));
    }
    if config.enabled(Flag::ConstantPropagation) {
        changed |= passes::cprop::run_const(p.func_mut(func));
    }
    if config.enabled(Flag::CopyPropagation) {
        changed |= passes::cprop::run_copy(p.func_mut(func));
    }
    if config.enabled(Flag::AlgebraicSimplification) {
        changed |= passes::algebraic::run(p.func_mut(func));
    }
    if config.enabled(Flag::Reassociation) {
        changed |= passes::reassoc::run(p.func_mut(func));
    }
    if config.enabled(Flag::Peephole) {
        changed |= passes::peephole::run(p.func_mut(func));
    }
    if config.enabled(Flag::CseLocal) {
        let snapshot = p.clone();
        changed |= passes::cse::run(p.func_mut(func), &snapshot);
    }
    if config.enabled(Flag::Gcse) {
        changed |= passes::gcse::run(p.func_mut(func));
    }
    if config.enabled(Flag::StoreForwarding) {
        let snapshot = p.clone();
        changed |= passes::store_forward::run(p.func_mut(func), &snapshot, strict);
    }
    if config.enabled(Flag::JumpThreading) {
        changed |= passes::jumpthread::run(p.func_mut(func));
    }
    changed
}

fn run_pipeline(p: &mut Program, func: FuncId, config: &OptConfig) {
    let strict = config.enabled(Flag::StrictAliasing);
    // 1. Inlining first: exposes everything downstream.
    if config.enabled(Flag::InlineSmall) {
        passes::inline::run(p, func, passes::inline::SMALL_THRESHOLD);
    }
    if config.enabled(Flag::InlineAggressive) {
        passes::inline::run(p, func, passes::inline::AGGRESSIVE_THRESHOLD);
    }
    // 2. Scalar cleanup to fixpoint.
    for _ in 0..3 {
        if !scalar_cleanup_round(p, func, config) {
            break;
        }
    }
    if config.enabled(Flag::ReciprocalMath) {
        passes::reciprocal::run(p.func_mut(func));
    }
    // 3. Loop optimizations.
    if config.enabled(Flag::LoopInvariantCodeMotion) {
        let snapshot = p.clone();
        passes::licm::run(p.func_mut(func), &snapshot);
    }
    if config.enabled(Flag::RegisterPromotion) {
        for _ in 0..FIXPOINT_LIMIT {
            let snapshot = p.clone();
            if !passes::regpromote::run(p.func_mut(func), &snapshot, strict) {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopUnswitch) {
        for _ in 0..FIXPOINT_LIMIT {
            if !passes::unswitch::run(p.func_mut(func)) {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopFusion) {
        for _ in 0..FIXPOINT_LIMIT {
            if !passes::fusion::run(p.func_mut(func)) {
                break;
            }
        }
    }
    // Prefetch insertion must precede the unrolling family: those passes
    // destroy the canonical counted-loop shape it recognizes (the cloned
    // units carry the inserted prefetches along).
    if config.enabled(Flag::PrefetchLoopArrays) {
        passes::prefetch::run(p.func_mut(func));
    }
    if config.enabled(Flag::LoopPeel) {
        for _ in 0..FIXPOINT_LIMIT {
            if !passes::unroll::run_peel(p.func_mut(func)) {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopUnrollSmall) {
        for _ in 0..FIXPOINT_LIMIT {
            if !passes::unroll::run_full(p.func_mut(func)) {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopUnroll) {
        for _ in 0..FIXPOINT_LIMIT {
            if !passes::unroll::run(p.func_mut(func)) {
                break;
            }
        }
    }
    if config.enabled(Flag::StrengthReduction) {
        passes::strength::run(p.func_mut(func));
        if config.enabled(Flag::InductionVariableElimination) {
            passes::strength::run_ive(p.func_mut(func));
        }
    }
    // 4. Second scalar cleanup (loop passes expose new redundancy).
    for _ in 0..2 {
        if !scalar_cleanup_round(p, func, config) {
            break;
        }
    }
    // 5. Control-flow shaping.
    if config.enabled(Flag::IfConversion) {
        passes::ifconv::run(p.func_mut(func));
    }
    if config.enabled(Flag::TailDuplication) {
        passes::taildup::run(p.func_mut(func));
    }
    if config.enabled(Flag::BranchReorder) {
        passes::branch_reorder::run(p.func_mut(func));
    }
    // 6. Cleanups.
    if config.enabled(Flag::DeadStoreElimination) {
        passes::dse::run(p.func_mut(func));
    }
    if config.enabled(Flag::DeadCodeElimination) {
        passes::dce::run(p.func_mut(func));
    }
    // 7. Scheduling and layout.
    if config.enabled(Flag::ScheduleInsns) {
        passes::schedule::run(p.func_mut(func));
    }
    if config.enabled(Flag::AlignLoops) {
        passes::align::run_align_loops(p.func_mut(func));
    }
    if config.enabled(Flag::AlignJumps) {
        passes::align::run_align_jumps(p.func_mut(func));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{
        BinOp, FunctionBuilder, Interp, MemRef, MemoryImage, Type, Value,
    };

    /// A kernel exercising many passes at once.
    fn kernel() -> (Program, FuncId) {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::F64, 128);
        let g = prog.add_mem("g", Type::F64, 4);
        let mut b = FunctionBuilder::new("kernel", Some(Type::F64));
        let n = b.param("n", Type::I64);
        let scale = b.param("scale", Type::F64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::F64, MemRef::global(a, i));
            let inv = b.binary(BinOp::FMul, scale, scale); // invariant
            let t = b.binary(BinOp::FMul, x, inv);
            let t2 = b.binary(BinOp::FDiv, t, 2.0f64); // reciprocal target
            let s = b.load(Type::F64, MemRef::global(g, 0i64)); // promotable
            let s2 = b.binary(BinOp::FAdd, s, t2);
            b.store(MemRef::global(g, 0i64), s2);
            b.binary_into(acc, BinOp::FAdd, acc, t2);
        });
        b.ret(Some(acc.into()));
        let f = prog.add_func(b.finish());
        (prog, f)
    }

    fn run_kernel(prog: &Program, f: FuncId, n: i64) -> (Option<Value>, Value) {
        let mut mem = MemoryImage::new(prog);
        let a = prog.mem_by_name("a").unwrap();
        let g = prog.mem_by_name("g").unwrap();
        for i in 0..128 {
            mem.store(a, i, Value::F64(i as f64 * 0.5));
        }
        mem.store(g, 0, Value::F64(10.0));
        let out = Interp::default()
            .run(prog, f, &[Value::I64(n), Value::F64(1.5)], &mut mem)
            .unwrap();
        (out.ret, mem.load(g, 0))
    }

    #[test]
    fn o3_preserves_semantics() {
        let (prog, f) = kernel();
        let v = optimize(&prog, f, &OptConfig::o3());
        peak_ir::validate_program(&v.program).unwrap();
        for n in [0i64, 1, 4, 17, 128] {
            assert_eq!(run_kernel(&prog, f, n), run_kernel(&v.program, v.func, n), "n={n}");
        }
    }

    #[test]
    fn o0_is_identity_modulo_nothing() {
        let (prog, f) = kernel();
        let v = optimize(&prog, f, &OptConfig::o0());
        assert_eq!(v.program.func(f), prog.func(f), "-O0 must not touch the IR");
    }

    #[test]
    fn every_single_flag_off_preserves_semantics() {
        let (prog, f) = kernel();
        for flag in crate::config::ALL_FLAGS {
            let cfg = OptConfig::o3().without(flag);
            let v = optimize(&prog, f, &cfg);
            for n in [0i64, 3, 31] {
                assert_eq!(
                    run_kernel(&prog, f, n),
                    run_kernel(&v.program, v.func, n),
                    "flag off: {flag}, n={n}"
                );
            }
        }
    }

    #[test]
    fn every_single_flag_alone_preserves_semantics() {
        let (prog, f) = kernel();
        for flag in crate::config::ALL_FLAGS {
            let cfg = OptConfig::o0().with(flag, true);
            let v = optimize(&prog, f, &cfg);
            for n in [0i64, 3, 31] {
                assert_eq!(
                    run_kernel(&prog, f, n),
                    run_kernel(&v.program, v.func, n),
                    "only flag: {flag}, n={n}"
                );
            }
        }
    }

    #[test]
    fn o3_shrinks_dynamic_step_count() {
        let (prog, f) = kernel();
        // Prefetch trades extra statements for cache locality, which the
        // reference interpreter does not model — exclude it here.
        let v = optimize(&prog, f, &OptConfig::o3().without(Flag::PrefetchLoopArrays));
        let steps = |p: &Program, fid: FuncId| {
            let mut mem = MemoryImage::new(p);
            let a = p.mem_by_name("a").unwrap();
            for i in 0..128 {
                mem.store(a, i, Value::F64(1.0));
            }
            Interp::default()
                .run(p, fid, &[Value::I64(100), Value::F64(1.5)], &mut mem)
                .unwrap()
                .steps
        };
        let s0 = steps(&prog, f);
        let s3 = steps(&v.program, v.func);
        assert!(s3 < s0, "O3 {s3} should execute fewer statements than O0 {s0}");
    }

    #[test]
    fn code_size_grows_with_unrolling() {
        let (prog, f) = kernel();
        let with = optimize(&prog, f, &OptConfig::o3());
        let without = optimize(
            &prog,
            f,
            &OptConfig::o3().without(Flag::LoopUnroll).without(Flag::LoopPeel),
        );
        assert!(with.code_size > without.code_size);
    }
}
