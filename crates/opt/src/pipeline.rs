//! The optimization pipeline: runs the passes enabled by an [`OptConfig`]
//! in a GCC-3.3-like order and produces a [`CompiledVersion`].
//!
//! Every pass invocation reports to a [`Validator`]; [`optimize`] runs
//! with validation off (the release rating path), while
//! [`optimize_checked`] verifies structural invariants — and, at
//! [`ValidationLevel::Full`], semantic equivalence on the reference
//! interpreter — after each pass, blaming the exact invocation that broke
//! the program.

use crate::config::{Flag, OptConfig};
use crate::passes;
use crate::util::reachable_size;
use crate::validate::{PassId, ValidationFailure, ValidationLevel, Validator};
use peak_ir::{FuncId, Program};

/// One compiled version of a tuning section: the transformed program, the
/// configuration that produced it, and code-size stats consumed by the
/// machine model (I-cache footprint, alignment padding).
#[derive(Debug, Clone)]
pub struct CompiledVersion {
    /// Program with the target function optimized.
    pub program: Program,
    /// The optimized function.
    pub func: FuncId,
    /// Flags used.
    pub config: OptConfig,
    /// Reachable statement count of the optimized function (code size
    /// proxy; alignment padding included).
    pub code_size: usize,
}

/// Bound on fixpoint iterations for self-limiting passes.
const FIXPOINT_LIMIT: usize = 12;

/// Compile `func` under `config`, returning the compiled version.
/// The input program is cloned; callees are left as-is (each TS is
/// compiled separately, like the paper's per-TS compilation).
pub fn optimize(prog: &Program, func: FuncId, config: &OptConfig) -> CompiledVersion {
    let mut p = prog.clone();
    let mut v = Validator::off(func, config);
    run_pipeline(&mut p, func, config, &mut v)
        .expect("validation is off; the pipeline cannot fail");
    debug_assert_eq!(
        peak_ir::validate_program(&p).map_err(|e| e.to_string()),
        Ok(()),
        "pipeline produced invalid IR under {config}"
    );
    finish(p, func, config)
}

/// [`optimize`] with translation validation at `level`: after every pass
/// that changed the IR, structural invariants are re-verified and (at
/// [`ValidationLevel::Full`]) the semantic oracle compares pre- and
/// post-pass observations. On failure the partially-optimized program is
/// discarded and the offending pass reported.
pub fn optimize_checked(
    prog: &Program,
    func: FuncId,
    config: &OptConfig,
    level: ValidationLevel,
) -> Result<CompiledVersion, ValidationFailure> {
    let mut p = prog.clone();
    let mut v = Validator::new(&p, func, config, level)?;
    run_pipeline(&mut p, func, config, &mut v)?;
    Ok(finish(p, func, config))
}

fn finish(p: Program, func: FuncId, config: &OptConfig) -> CompiledVersion {
    let mut code_size = reachable_size(p.func(func));
    // Alignment padding: aligned blocks cost a few padding slots.
    let aligned = p
        .func(func)
        .block_ids()
        .filter(|&b| p.func(func).block(b).aligned)
        .count();
    code_size += aligned * 2;
    CompiledVersion { program: p, func, config: *config, code_size }
}

fn scalar_cleanup_round(
    p: &mut Program,
    func: FuncId,
    config: &OptConfig,
    v: &mut Validator,
) -> Result<bool, ValidationFailure> {
    let mut changed = false;
    let strict = config.enabled(Flag::StrictAliasing);
    if config.enabled(Flag::ConstantFolding) {
        let ch = passes::fold::run(p.func_mut(func));
        v.after_pass(p, PassId::Fold, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::ConstantPropagation) {
        let ch = passes::cprop::run_const(p.func_mut(func));
        v.after_pass(p, PassId::CPropConst, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::CopyPropagation) {
        let ch = passes::cprop::run_copy(p.func_mut(func));
        v.after_pass(p, PassId::CPropCopy, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::AlgebraicSimplification) {
        let ch = passes::algebraic::run(p.func_mut(func));
        v.after_pass(p, PassId::Algebraic, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::Reassociation) {
        let ch = passes::reassoc::run(p.func_mut(func));
        v.after_pass(p, PassId::Reassoc, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::Peephole) {
        let ch = passes::peephole::run(p.func_mut(func));
        v.after_pass(p, PassId::Peephole, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::CseLocal) {
        let snapshot = p.clone();
        let ch = passes::cse::run(p.func_mut(func), &snapshot);
        v.after_pass(p, PassId::CseLocal, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::Gcse) {
        let ch = passes::gcse::run(p.func_mut(func));
        v.after_pass(p, PassId::Gcse, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::StoreForwarding) {
        let snapshot = p.clone();
        let ch = passes::store_forward::run(p.func_mut(func), &snapshot, strict);
        v.after_pass(p, PassId::StoreForward, ch)?;
        changed |= ch;
    }
    if config.enabled(Flag::JumpThreading) {
        let ch = passes::jumpthread::run(p.func_mut(func));
        v.after_pass(p, PassId::JumpThread, ch)?;
        changed |= ch;
    }
    Ok(changed)
}

fn run_pipeline(
    p: &mut Program,
    func: FuncId,
    config: &OptConfig,
    v: &mut Validator,
) -> Result<(), ValidationFailure> {
    let strict = config.enabled(Flag::StrictAliasing);
    // 1. Inlining first: exposes everything downstream.
    if config.enabled(Flag::InlineSmall) {
        let ch = passes::inline::run(p, func, passes::inline::SMALL_THRESHOLD);
        v.after_pass(p, PassId::InlineSmall, ch)?;
    }
    if config.enabled(Flag::InlineAggressive) {
        let ch = passes::inline::run(p, func, passes::inline::AGGRESSIVE_THRESHOLD);
        v.after_pass(p, PassId::InlineAggressive, ch)?;
    }
    // 2. Scalar cleanup to fixpoint.
    for _ in 0..3 {
        if !scalar_cleanup_round(p, func, config, v)? {
            break;
        }
    }
    if config.enabled(Flag::ReciprocalMath) {
        let ch = passes::reciprocal::run(p.func_mut(func));
        v.after_pass(p, PassId::Reciprocal, ch)?;
    }
    // 3. Loop optimizations.
    if config.enabled(Flag::LoopInvariantCodeMotion) {
        let snapshot = p.clone();
        let ch = passes::licm::run(p.func_mut(func), &snapshot);
        v.after_pass(p, PassId::Licm, ch)?;
    }
    if config.enabled(Flag::RegisterPromotion) {
        for _ in 0..FIXPOINT_LIMIT {
            let snapshot = p.clone();
            let ch = passes::regpromote::run(p.func_mut(func), &snapshot, strict);
            v.after_pass(p, PassId::RegPromote, ch)?;
            if !ch {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopUnswitch) {
        for _ in 0..FIXPOINT_LIMIT {
            let ch = passes::unswitch::run(p.func_mut(func));
            v.after_pass(p, PassId::Unswitch, ch)?;
            if !ch {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopFusion) {
        for _ in 0..FIXPOINT_LIMIT {
            let ch = passes::fusion::run(p.func_mut(func));
            v.after_pass(p, PassId::Fusion, ch)?;
            if !ch {
                break;
            }
        }
    }
    // Prefetch insertion must precede the unrolling family: those passes
    // destroy the canonical counted-loop shape it recognizes (the cloned
    // units carry the inserted prefetches along).
    if config.enabled(Flag::PrefetchLoopArrays) {
        let ch = passes::prefetch::run(p.func_mut(func));
        v.after_pass(p, PassId::Prefetch, ch)?;
    }
    if config.enabled(Flag::LoopPeel) {
        for _ in 0..FIXPOINT_LIMIT {
            let ch = passes::unroll::run_peel(p.func_mut(func));
            v.after_pass(p, PassId::Peel, ch)?;
            if !ch {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopUnrollSmall) {
        for _ in 0..FIXPOINT_LIMIT {
            let ch = passes::unroll::run_full(p.func_mut(func));
            v.after_pass(p, PassId::UnrollSmall, ch)?;
            if !ch {
                break;
            }
        }
    }
    if config.enabled(Flag::LoopUnroll) {
        for _ in 0..FIXPOINT_LIMIT {
            let ch = passes::unroll::run(p.func_mut(func));
            v.after_pass(p, PassId::Unroll, ch)?;
            if !ch {
                break;
            }
        }
    }
    if config.enabled(Flag::StrengthReduction) {
        let ch = passes::strength::run(p.func_mut(func));
        v.after_pass(p, PassId::Strength, ch)?;
        if config.enabled(Flag::InductionVariableElimination) {
            let ch = passes::strength::run_ive(p.func_mut(func));
            v.after_pass(p, PassId::StrengthIve, ch)?;
        }
    }
    // 4. Second scalar cleanup (loop passes expose new redundancy).
    for _ in 0..2 {
        if !scalar_cleanup_round(p, func, config, v)? {
            break;
        }
    }
    // 5. Control-flow shaping.
    if config.enabled(Flag::IfConversion) {
        let ch = passes::ifconv::run(p.func_mut(func));
        v.after_pass(p, PassId::IfConv, ch)?;
    }
    if config.enabled(Flag::TailDuplication) {
        let ch = passes::taildup::run(p.func_mut(func));
        v.after_pass(p, PassId::TailDup, ch)?;
    }
    if config.enabled(Flag::BranchReorder) {
        let ch = passes::branch_reorder::run(p.func_mut(func));
        v.after_pass(p, PassId::BranchReorder, ch)?;
    }
    // 6. Cleanups.
    if config.enabled(Flag::DeadStoreElimination) {
        let ch = passes::dse::run(p.func_mut(func));
        v.after_pass(p, PassId::Dse, ch)?;
    }
    if config.enabled(Flag::DeadCodeElimination) {
        let ch = passes::dce::run(p.func_mut(func));
        v.after_pass(p, PassId::Dce, ch)?;
    }
    // 7. Scheduling and layout.
    if config.enabled(Flag::ScheduleInsns) {
        let ch = passes::schedule::run(p.func_mut(func));
        v.after_pass(p, PassId::Schedule, ch)?;
    }
    if config.enabled(Flag::AlignLoops) {
        let ch = passes::align::run_align_loops(p.func_mut(func));
        v.after_pass(p, PassId::AlignLoops, ch)?;
    }
    if config.enabled(Flag::AlignJumps) {
        let ch = passes::align::run_align_jumps(p.func_mut(func));
        v.after_pass(p, PassId::AlignJumps, ch)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{
        BinOp, FunctionBuilder, Interp, MemRef, MemoryImage, Type, Value,
    };

    /// A kernel exercising many passes at once.
    fn kernel() -> (Program, FuncId) {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::F64, 128);
        let g = prog.add_mem("g", Type::F64, 4);
        let mut b = FunctionBuilder::new("kernel", Some(Type::F64));
        let n = b.param("n", Type::I64);
        let scale = b.param("scale", Type::F64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::F64, MemRef::global(a, i));
            let inv = b.binary(BinOp::FMul, scale, scale); // invariant
            let t = b.binary(BinOp::FMul, x, inv);
            let t2 = b.binary(BinOp::FDiv, t, 2.0f64); // reciprocal target
            let s = b.load(Type::F64, MemRef::global(g, 0i64)); // promotable
            let s2 = b.binary(BinOp::FAdd, s, t2);
            b.store(MemRef::global(g, 0i64), s2);
            b.binary_into(acc, BinOp::FAdd, acc, t2);
        });
        b.ret(Some(acc.into()));
        let f = prog.add_func(b.finish());
        (prog, f)
    }

    fn run_kernel(prog: &Program, f: FuncId, n: i64) -> (Option<Value>, Value) {
        let mut mem = MemoryImage::new(prog);
        let a = prog.mem_by_name("a").unwrap();
        let g = prog.mem_by_name("g").unwrap();
        for i in 0..128 {
            mem.store(a, i, Value::F64(i as f64 * 0.5));
        }
        mem.store(g, 0, Value::F64(10.0));
        let out = Interp::default()
            .run(prog, f, &[Value::I64(n), Value::F64(1.5)], &mut mem)
            .unwrap();
        (out.ret, mem.load(g, 0))
    }

    #[test]
    fn o3_preserves_semantics() {
        let (prog, f) = kernel();
        let v = optimize(&prog, f, &OptConfig::o3());
        peak_ir::validate_program(&v.program).unwrap();
        for n in [0i64, 1, 4, 17, 128] {
            assert_eq!(run_kernel(&prog, f, n), run_kernel(&v.program, v.func, n), "n={n}");
        }
    }

    #[test]
    fn o0_is_identity_modulo_nothing() {
        let (prog, f) = kernel();
        let v = optimize(&prog, f, &OptConfig::o0());
        assert_eq!(v.program.func(f), prog.func(f), "-O0 must not touch the IR");
    }

    #[test]
    fn every_single_flag_off_preserves_semantics() {
        let (prog, f) = kernel();
        for flag in crate::config::ALL_FLAGS {
            let cfg = OptConfig::o3().without(flag);
            let v = optimize(&prog, f, &cfg);
            for n in [0i64, 3, 31] {
                assert_eq!(
                    run_kernel(&prog, f, n),
                    run_kernel(&v.program, v.func, n),
                    "flag off: {flag}, n={n}"
                );
            }
        }
    }

    #[test]
    fn every_single_flag_alone_preserves_semantics() {
        let (prog, f) = kernel();
        for flag in crate::config::ALL_FLAGS {
            let cfg = OptConfig::o0().with(flag, true);
            let v = optimize(&prog, f, &cfg);
            for n in [0i64, 3, 31] {
                assert_eq!(
                    run_kernel(&prog, f, n),
                    run_kernel(&v.program, v.func, n),
                    "only flag: {flag}, n={n}"
                );
            }
        }
    }

    #[test]
    fn o3_shrinks_dynamic_step_count() {
        let (prog, f) = kernel();
        // Prefetch trades extra statements for cache locality, which the
        // reference interpreter does not model — exclude it here.
        let v = optimize(&prog, f, &OptConfig::o3().without(Flag::PrefetchLoopArrays));
        let steps = |p: &Program, fid: FuncId| {
            let mut mem = MemoryImage::new(p);
            let a = p.mem_by_name("a").unwrap();
            for i in 0..128 {
                mem.store(a, i, Value::F64(1.0));
            }
            Interp::default()
                .run(p, fid, &[Value::I64(100), Value::F64(1.5)], &mut mem)
                .unwrap()
                .steps
        };
        let s0 = steps(&prog, f);
        let s3 = steps(&v.program, v.func);
        assert!(s3 < s0, "O3 {s3} should execute fewer statements than O0 {s0}");
    }

    #[test]
    fn code_size_grows_with_unrolling() {
        let (prog, f) = kernel();
        let with = optimize(&prog, f, &OptConfig::o3());
        let without = optimize(
            &prog,
            f,
            &OptConfig::o3().without(Flag::LoopUnroll).without(Flag::LoopPeel),
        );
        assert!(with.code_size > without.code_size);
    }

    #[test]
    fn checked_o3_passes_full_validation() {
        let (prog, f) = kernel();
        let v = optimize_checked(&prog, f, &OptConfig::o3(), ValidationLevel::Full)
            .expect("O3 on the kernel must validate cleanly");
        // The checked compile must produce the identical artifact.
        let plain = optimize(&prog, f, &OptConfig::o3());
        assert_eq!(v.program.func(v.func), plain.program.func(plain.func));
        assert_eq!(v.code_size, plain.code_size);
    }

    #[test]
    fn checked_every_single_flag_passes_full_validation() {
        let (prog, f) = kernel();
        for flag in crate::config::ALL_FLAGS {
            optimize_checked(&prog, f, &OptConfig::o0().with(flag, true), ValidationLevel::Full)
                .unwrap_or_else(|e| panic!("flag {flag}: {e}"));
        }
    }
}
