//! Optimization flags and configurations.
//!
//! The paper explores "all n = 38 optimization options implied by -O3 of
//! the GCC 3.3 version" (§5.2). Our optimizer likewise exposes exactly 38
//! boolean flags, each mapping to a transformation pass or a codegen
//! policy in this crate, with semantics and names aligned with the GCC 3.3
//! flag categories. `-O3` means all 38 on; Iterative Elimination then
//! searches the 2^38 space by toggling flags off.

use std::fmt;

/// One optimization flag. The discriminant is the flag's bit index in
/// [`OptConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Flag {
    /// Evaluate constant expressions at compile time.
    ConstantFolding = 0,
    /// Propagate known-constant variable values.
    ConstantPropagation = 1,
    /// Replace uses of copies by their sources.
    CopyPropagation = 2,
    /// Algebraic identities: `x+0`, `x*1`, `x*2ᵏ → x<<k`, …
    AlgebraicSimplification = 3,
    /// Rebalance associative integer expression trees.
    Reassociation = 4,
    /// Local (in-block) common-subexpression elimination.
    CseLocal = 5,
    /// Global (dominator-based) CSE, GCC's `-fgcse`.
    Gcse = 6,
    /// Remove side-effect-free dead assignments.
    DeadCodeElimination = 7,
    /// Remove stores overwritten before any read.
    DeadStoreElimination = 8,
    /// Thread jumps to jumps; fold constant branches.
    JumpThreading = 9,
    /// Lay out likely paths as fallthrough (static heuristics).
    BranchReorder = 10,
    /// Convert small branch diamonds into `Select` (cmov-style).
    IfConversion = 11,
    /// Duplicate small join blocks into predecessors.
    TailDuplication = 12,
    /// Hoist loop-invariant computations to preheaders.
    LoopInvariantCodeMotion = 13,
    /// Rewrite `iv*c` recurrences into additive updates.
    StrengthReduction = 14,
    /// Remove redundant induction variables.
    InductionVariableElimination = 15,
    /// Unroll counted loops by a factor (with remainder loop).
    LoopUnroll = 16,
    /// Fully unroll short constant-trip loops.
    LoopUnrollSmall = 17,
    /// Peel the first iteration of loops with iteration-0 special cases.
    LoopPeel = 18,
    /// Hoist loop-invariant branches out of loops (loop unswitching).
    LoopUnswitch = 19,
    /// Fuse adjacent conformable counted loops.
    LoopFusion = 20,
    /// Inline callees below the small-size threshold.
    InlineSmall = 21,
    /// Inline callees below the aggressive threshold (GCC
    /// `-finline-functions`, enabled at -O3).
    InlineAggressive = 22,
    /// Forward stored values to later loads of the same address.
    StoreForwarding = 23,
    /// Keep repeatedly accessed memory locations in registers across
    /// loops (register promotion / scalar replacement).
    RegisterPromotion = 24,
    /// Assume pointers to differently-typed data never alias (GCC
    /// `-fstrict-aliasing`). Widens what RegisterPromotion and
    /// StoreForwarding may move, at the cost of longer live ranges —
    /// the ART / Pentium IV anecdote of paper §5.2.
    StrictAliasing = 25,
    /// Insert software prefetches for strided array accesses in loops.
    PrefetchLoopArrays = 26,
    /// Local pattern cleanups (select-of-same, double negation, …).
    Peephole = 27,
    /// Pre-register-allocation instruction scheduling.
    ScheduleInsns = 28,
    /// Post-register-allocation scheduling.
    ScheduleInsns2 = 29,
    /// Rename registers to break false dependencies.
    RenameRegisters = 30,
    /// Coalesce register copies during allocation.
    RegAllocCoalesce = 31,
    /// Free the frame-pointer register for allocation.
    OmitFramePointer = 32,
    /// Allocate call-crossing values to caller-saved registers.
    CallerSaves = 33,
    /// Align loop headers to fetch boundaries.
    AlignLoops = 34,
    /// Align branch-join targets.
    AlignJumps = 35,
    /// Fill branch delay slots (effective on the SPARC model only).
    DelayedBranch = 36,
    /// Replace float division by power-of-two constants with
    /// multiplication by the exact reciprocal.
    ReciprocalMath = 37,
}

/// Number of flags (the paper's n = 38).
pub const NUM_FLAGS: usize = 38;

/// All flags in bit order.
pub const ALL_FLAGS: [Flag; NUM_FLAGS] = [
    Flag::ConstantFolding,
    Flag::ConstantPropagation,
    Flag::CopyPropagation,
    Flag::AlgebraicSimplification,
    Flag::Reassociation,
    Flag::CseLocal,
    Flag::Gcse,
    Flag::DeadCodeElimination,
    Flag::DeadStoreElimination,
    Flag::JumpThreading,
    Flag::BranchReorder,
    Flag::IfConversion,
    Flag::TailDuplication,
    Flag::LoopInvariantCodeMotion,
    Flag::StrengthReduction,
    Flag::InductionVariableElimination,
    Flag::LoopUnroll,
    Flag::LoopUnrollSmall,
    Flag::LoopPeel,
    Flag::LoopUnswitch,
    Flag::LoopFusion,
    Flag::InlineSmall,
    Flag::InlineAggressive,
    Flag::StoreForwarding,
    Flag::RegisterPromotion,
    Flag::StrictAliasing,
    Flag::PrefetchLoopArrays,
    Flag::Peephole,
    Flag::ScheduleInsns,
    Flag::ScheduleInsns2,
    Flag::RenameRegisters,
    Flag::RegAllocCoalesce,
    Flag::OmitFramePointer,
    Flag::CallerSaves,
    Flag::AlignLoops,
    Flag::AlignJumps,
    Flag::DelayedBranch,
    Flag::ReciprocalMath,
];

impl Flag {
    /// Bit index.
    #[inline]
    pub fn bit(self) -> u8 {
        self as u8
    }

    /// GCC-style flag name.
    pub fn name(self) -> &'static str {
        match self {
            Flag::ConstantFolding => "const-fold",
            Flag::ConstantPropagation => "const-prop",
            Flag::CopyPropagation => "copy-prop",
            Flag::AlgebraicSimplification => "algebraic-simplify",
            Flag::Reassociation => "reassociate",
            Flag::CseLocal => "cse",
            Flag::Gcse => "gcse",
            Flag::DeadCodeElimination => "dce",
            Flag::DeadStoreElimination => "dse",
            Flag::JumpThreading => "jump-threading",
            Flag::BranchReorder => "reorder-blocks",
            Flag::IfConversion => "if-conversion",
            Flag::TailDuplication => "tail-duplicate",
            Flag::LoopInvariantCodeMotion => "licm",
            Flag::StrengthReduction => "strength-reduce",
            Flag::InductionVariableElimination => "iv-elim",
            Flag::LoopUnroll => "unroll-loops",
            Flag::LoopUnrollSmall => "unroll-small-loops",
            Flag::LoopPeel => "peel-loops",
            Flag::LoopUnswitch => "unswitch-loops",
            Flag::LoopFusion => "fuse-loops",
            Flag::InlineSmall => "inline-small",
            Flag::InlineAggressive => "inline-functions",
            Flag::StoreForwarding => "store-forwarding",
            Flag::RegisterPromotion => "register-promotion",
            Flag::StrictAliasing => "strict-aliasing",
            Flag::PrefetchLoopArrays => "prefetch-loop-arrays",
            Flag::Peephole => "peephole",
            Flag::ScheduleInsns => "schedule-insns",
            Flag::ScheduleInsns2 => "schedule-insns2",
            Flag::RenameRegisters => "rename-registers",
            Flag::RegAllocCoalesce => "regalloc-coalesce",
            Flag::OmitFramePointer => "omit-frame-pointer",
            Flag::CallerSaves => "caller-saves",
            Flag::AlignLoops => "align-loops",
            Flag::AlignJumps => "align-jumps",
            Flag::DelayedBranch => "delayed-branch",
            Flag::ReciprocalMath => "reciprocal-math",
        }
    }

    /// Flag from its bit index.
    pub fn from_bit(bit: u8) -> Option<Flag> {
        ALL_FLAGS.get(bit as usize).copied()
    }

    /// Flag from its GCC-style name.
    pub fn from_name(name: &str) -> Option<Flag> {
        ALL_FLAGS.iter().copied().find(|f| f.name() == name)
    }
}

impl fmt::Display for Flag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A set of enabled flags: one point in the 2^38 search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OptConfig {
    bits: u64,
}

impl OptConfig {
    /// All flags off (our `-O0`).
    pub fn o0() -> Self {
        OptConfig { bits: 0 }
    }

    /// All 38 flags on (our `-O3`, the paper's starting point).
    pub fn o3() -> Self {
        OptConfig { bits: (1u64 << NUM_FLAGS) - 1 }
    }

    /// Construct from raw bits (low 38 used).
    pub fn from_bits(bits: u64) -> Self {
        OptConfig { bits: bits & ((1u64 << NUM_FLAGS) - 1) }
    }

    /// Raw bits.
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Whether `flag` is enabled.
    #[inline]
    pub fn enabled(self, flag: Flag) -> bool {
        self.bits & (1u64 << flag.bit()) != 0
    }

    /// With `flag` set to `on`.
    #[must_use]
    pub fn with(self, flag: Flag, on: bool) -> Self {
        let mask = 1u64 << flag.bit();
        OptConfig { bits: if on { self.bits | mask } else { self.bits & !mask } }
    }

    /// With `flag` disabled (the Iterative Elimination move).
    #[must_use]
    pub fn without(self, flag: Flag) -> Self {
        self.with(flag, false)
    }

    /// Enabled flags, in bit order.
    pub fn enabled_flags(self) -> Vec<Flag> {
        ALL_FLAGS.iter().copied().filter(|f| self.enabled(*f)).collect()
    }

    /// Disabled flags, in bit order.
    pub fn disabled_flags(self) -> Vec<Flag> {
        ALL_FLAGS.iter().copied().filter(|f| !self.enabled(*f)).collect()
    }

    /// Number of enabled flags.
    pub fn count_enabled(self) -> u32 {
        self.bits.count_ones()
    }
}

impl Default for OptConfig {
    /// Defaults to `-O3`, like the paper's initial compilation.
    fn default() -> Self {
        OptConfig::o3()
    }
}

impl fmt::Display for OptConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == OptConfig::o3() {
            return write!(f, "-O3");
        }
        if *self == OptConfig::o0() {
            return write!(f, "-O0");
        }
        write!(f, "-O3")?;
        for flag in self.disabled_flags() {
            write!(f, " -fno-{}", flag.name())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_38_flags() {
        assert_eq!(NUM_FLAGS, 38, "the paper's n = 38");
        assert_eq!(ALL_FLAGS.len(), 38);
        // Bits are dense and unique.
        for (i, f) in ALL_FLAGS.iter().enumerate() {
            assert_eq!(f.bit() as usize, i);
            assert_eq!(Flag::from_bit(i as u8), Some(*f));
        }
        assert_eq!(Flag::from_bit(38), None);
    }

    #[test]
    fn names_roundtrip() {
        for f in ALL_FLAGS {
            assert_eq!(Flag::from_name(f.name()), Some(f), "{f}");
        }
        assert_eq!(Flag::from_name("no-such-flag"), None);
    }

    #[test]
    fn o3_has_everything_o0_nothing() {
        assert_eq!(OptConfig::o3().count_enabled(), 38);
        assert_eq!(OptConfig::o0().count_enabled(), 0);
        assert!(OptConfig::o3().enabled(Flag::StrictAliasing));
        assert!(!OptConfig::o0().enabled(Flag::Gcse));
    }

    #[test]
    fn with_and_without() {
        let c = OptConfig::o3().without(Flag::StrictAliasing);
        assert!(!c.enabled(Flag::StrictAliasing));
        assert_eq!(c.count_enabled(), 37);
        let c2 = c.with(Flag::StrictAliasing, true);
        assert_eq!(c2, OptConfig::o3());
    }

    #[test]
    fn display_shows_disabled() {
        let c = OptConfig::o3().without(Flag::StrictAliasing);
        assert_eq!(format!("{c}"), "-O3 -fno-strict-aliasing");
        assert_eq!(format!("{}", OptConfig::o3()), "-O3");
        assert_eq!(format!("{}", OptConfig::o0()), "-O0");
    }

    #[test]
    fn from_bits_masks_high_bits() {
        let c = OptConfig::from_bits(u64::MAX);
        assert_eq!(c, OptConfig::o3());
    }
}
