//! Register-pressure analysis and spill selection.
//!
//! A deliberately simple global allocator: compute per-program-point
//! pressure (live variables, split into integer/pointer and float
//! classes), and while any point exceeds the machine's register budget,
//! spill the cheapest live variable (fewest uses, weighted by loop depth).
//! The machine simulator charges each access to a spilled variable a stack
//! load/store through the cache hierarchy — the mechanism behind the ART
//! strict-aliasing anecdote (paper §5.2).

use peak_ir::{Cfg, Dominators, Function, Liveness, LoopForest, Type, VarId};
use std::collections::HashSet;

/// Machine register budget seen by the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegBudget {
    /// Integer/pointer registers available for allocation.
    pub int_regs: u32,
    /// Floating-point registers available.
    pub fp_regs: u32,
}

/// Allocation result.
#[derive(Debug, Clone, Default)]
pub struct SpillInfo {
    /// Spilled variables with their stack slot index.
    pub spilled: Vec<(VarId, u32)>,
    /// Maximum integer-class pressure observed (before spilling).
    pub max_int_pressure: u32,
    /// Maximum float-class pressure observed (before spilling).
    pub max_fp_pressure: u32,
    /// Number of variables live across at least one call site.
    pub live_across_calls: u32,
}

impl SpillInfo {
    /// Whether `v` was spilled.
    pub fn is_spilled(&self, v: VarId) -> bool {
        self.spilled.iter().any(|(s, _)| *s == v)
    }

    /// Stack slot of a spilled variable.
    pub fn slot(&self, v: VarId) -> Option<u32> {
        self.spilled.iter().find(|(s, _)| *s == v).map(|(_, sl)| *sl)
    }
}

fn class_of(ty: Type) -> usize {
    match ty {
        Type::I64 | Type::Ptr => 0,
        Type::F64 => 1,
    }
}

/// Run the allocator: returns spill decisions for `f` under `budget`.
///
/// `omit_frame_pointer` adds one integer register. `coalesce` is consumed
/// by the simulator's copy-cost model, not here.
#[allow(clippy::needless_range_loop)]
pub fn allocate(f: &Function, budget: RegBudget, omit_frame_pointer: bool) -> SpillInfo {
    let int_budget = budget.int_regs + u32::from(omit_frame_pointer);
    let fp_budget = budget.fp_regs;
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let liveness = Liveness::build(f, &cfg);
    // Spill weight: uses+defs, each weighted by 10^depth (capped).
    let mut weight = vec![0u64; f.num_vars()];
    let mut uses = Vec::new();
    for b in f.block_ids() {
        let w = 10u64.saturating_pow(forest.depth_of(b).min(4));
        for s in &f.block(b).stmts {
            uses.clear();
            s.uses(&mut uses);
            for &u in &uses {
                weight[u.index()] += w;
            }
            if let Some(d) = s.def() {
                weight[d.index()] += w;
            }
        }
    }
    let mut spilled: HashSet<VarId> = HashSet::new();
    let mut max_pressure = [0u32; 2];
    let mut live_across_calls: HashSet<VarId> = HashSet::new();
    loop {
        // Walk every block backwards computing point-wise pressure.
        let mut worst: Option<(usize, u32, Vec<VarId>)> = None; // (class, pressure, live set)
        let mut first_pass_max = [0u32; 2];
        for b in f.block_ids() {
            if !cfg.is_reachable(b) {
                continue;
            }
            let mut live: HashSet<VarId> = liveness.live_out[b.index()]
                .iter()
                .map(|i| VarId(i as u32))
                .collect();
            let record =
                |live: &HashSet<VarId>,
                 worst: &mut Option<(usize, u32, Vec<VarId>)>,
                 first_pass_max: &mut [u32; 2],
                 spilled: &HashSet<VarId>| {
                    for class in 0..2 {
                        let total = live
                            .iter()
                            .filter(|v| class_of(f.var_ty(**v)) == class)
                            .count() as u32;
                        first_pass_max[class] = first_pass_max[class].max(total);
                        let unspilled: Vec<VarId> = live
                            .iter()
                            .filter(|v| {
                                class_of(f.var_ty(**v)) == class && !spilled.contains(*v)
                            })
                            .copied()
                            .collect();
                        let p = unspilled.len() as u32;
                        let budget = if class == 0 { int_budget } else { fp_budget };
                        if p > budget {
                            let over = p - budget;
                            let cur_over = worst
                                .as_ref()
                                .map(|(c, pp, _)| {
                                    let wb = if *c == 0 { int_budget } else { fp_budget };
                                    pp.saturating_sub(wb)
                                })
                                .unwrap_or(0);
                            if over > cur_over {
                                *worst = Some((class, p, unspilled));
                            }
                        }
                    }
                };
            // Terminator point.
            uses.clear();
            f.block(b).term.uses(&mut uses);
            record(&live, &mut worst, &mut first_pass_max, &spilled);
            for s in f.block(b).stmts.iter().rev() {
                if let Some(d) = s.def() {
                    live.remove(&d);
                }
                uses.clear();
                s.uses(&mut uses);
                let is_call = matches!(
                    s,
                    peak_ir::Stmt::CallVoid { .. }
                        | peak_ir::Stmt::Assign { rv: peak_ir::Rvalue::Call { .. }, .. }
                );
                for &u in &uses {
                    live.insert(u);
                }
                if is_call {
                    for v in &live {
                        live_across_calls.insert(*v);
                    }
                }
                record(&live, &mut worst, &mut first_pass_max, &spilled);
            }
        }
        if max_pressure == [0, 0] {
            max_pressure = first_pass_max;
        }
        let Some((_class, _p, candidates)) = worst else { break };
        // Spill the lightest candidate.
        let victim = candidates
            .into_iter()
            .min_by_key(|v| (weight[v.index()], v.0))
            .expect("non-empty overflow set");
        spilled.insert(victim);
    }
    let mut spill_list: Vec<VarId> = spilled.into_iter().collect();
    spill_list.sort();
    SpillInfo {
        spilled: spill_list
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, i as u32))
            .collect(),
        max_int_pressure: max_pressure[0],
        max_fp_pressure: max_pressure[1],
        live_across_calls: live_across_calls.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder};

    /// Builds a function holding `k` simultaneously live values.
    fn wide_function(k: usize) -> Function {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let vars: Vec<_> = (0..k)
            .map(|j| {
                let v = b.var(format!("w{j}"), Type::I64);
                b.binary_into(v, BinOp::Add, p, j as i64);
                v
            })
            .collect();
        // Sum them all so they stay live to the end.
        let mut acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        for v in vars {
            let t = b.binary(BinOp::Add, acc, v);
            acc = t;
        }
        b.ret(Some(acc.into()));
        b.finish()
    }

    #[test]
    fn no_spills_under_generous_budget() {
        let f = wide_function(6);
        let info = allocate(&f, RegBudget { int_regs: 32, fp_regs: 32 }, false);
        assert!(info.spilled.is_empty());
        assert!(info.max_int_pressure >= 6);
    }

    #[test]
    fn spills_appear_under_tight_budget() {
        let f = wide_function(12);
        let info = allocate(&f, RegBudget { int_regs: 6, fp_regs: 8 }, false);
        assert!(!info.spilled.is_empty());
        // Spilling enough to fit: live set ≤ budget after spills.
        assert!(info.spilled.len() as u32 >= info.max_int_pressure - 6);
    }

    #[test]
    fn omit_frame_pointer_reduces_spills() {
        let f = wide_function(10);
        let tight = RegBudget { int_regs: 8, fp_regs: 8 };
        let without = allocate(&f, tight, false);
        let with = allocate(&f, tight, true);
        assert!(with.spilled.len() <= without.spilled.len());
    }

    #[test]
    fn loop_variables_spilled_last() {
        // One hot loop variable and many cold wide values: the loop var
        // must survive spilling.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let cold: Vec<_> = (0..10)
            .map(|j| {
                let v = b.var(format!("c{j}"), Type::I64);
                b.binary_into(v, BinOp::Add, n, j as i64);
                v
            })
            .collect();
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        for v in cold {
            b.binary_into(acc, BinOp::Add, acc, v);
        }
        b.ret(Some(acc.into()));
        let f = b.finish();
        let info = allocate(&f, RegBudget { int_regs: 6, fp_regs: 8 }, false);
        assert!(!info.spilled.is_empty());
        assert!(!info.is_spilled(i), "hot loop iv kept in a register");
        assert!(!info.is_spilled(acc), "hot accumulator kept in a register");
    }

    #[test]
    fn classes_are_independent() {
        // Float pressure must not trigger integer spills.
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let p = b.param("p", Type::F64);
        let vars: Vec<_> = (0..10)
            .map(|j| {
                let v = b.var(format!("w{j}"), Type::F64);
                b.binary_into(v, BinOp::FAdd, p, j as f64);
                v
            })
            .collect();
        let mut acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        for v in vars {
            let t = b.binary(BinOp::FAdd, acc, v);
            acc = t;
        }
        b.ret(Some(acc.into()));
        let f = b.finish();
        let info = allocate(&f, RegBudget { int_regs: 4, fp_regs: 32 }, false);
        assert!(info.spilled.is_empty(), "plenty of fp regs: {info:?}");
        let info2 = allocate(&f, RegBudget { int_regs: 32, fp_regs: 6 }, false);
        assert!(!info2.spilled.is_empty(), "fp squeeze spills fp vars");
        assert!(info2
            .spilled
            .iter()
            .all(|(v, _)| f.var_ty(*v) == Type::F64));
    }
}
