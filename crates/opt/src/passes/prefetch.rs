//! Software prefetch insertion (GCC `-fprefetch-loop-arrays`).
//!
//! For loads in counted loops whose index is the induction variable (or
//! iv ± const), insert `prefetch base[iv + DISTANCE]` at the top of the
//! body. The simulator warms the touched cache line without reading data
//! and silently ignores out-of-range addresses, like real prefetch
//! instructions. Pays off on streams that miss in cache; pure overhead on
//! cache-resident data — a flag the tuner should turn off for small
//! working sets.

use peak_ir::{
    BinOp, Cfg, Dominators, Function, LoopForest, MemRef, Operand, Rvalue, Stmt, Value,
};

/// Prefetch look-ahead distance, in elements.
pub const DISTANCE: i64 = 16;

/// Run prefetch insertion. Returns true if anything was inserted.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let forest = LoopForest::build(f, &cfg, &dom);
    let mut insertions: Vec<(peak_ir::BlockId, peak_ir::MemBase, peak_ir::VarId)> = Vec::new();
    for li in 0..forest.loops.len() {
        let l = &forest.loops[li];
        // Innermost loops only: prefetching outer loops thrashes.
        if forest.loops.iter().any(|o| o.parent == Some(li)) {
            continue;
        }
        let Some(cl) = peak_ir::recognize_counted(f, &cfg, l) else { continue };
        let body_entry = match f.block(l.header).term {
            peak_ir::Terminator::Branch { on_true, .. } => on_true,
            _ => continue,
        };
        // Collect distinct prefetch targets: loads indexed by iv or an
        // iv-affine variable.
        let mut seen: Vec<(peak_ir::MemBase, peak_ir::VarId)> = Vec::new();
        for &b in &l.body {
            if f.block(b).stmts.iter().any(|s| matches!(s, Stmt::Prefetch { .. })) {
                seen.clear();
                break; // already prefetched (idempotence)
            }
            // Index variables that are affine in the induction variable at
            // depth one (`idx = row + i`): prefetching `base[idx + D]` from
            // the top of the body uses the previous iteration's value of
            // `idx`, which is still a valid look-ahead hint.
            let mut affine: Vec<peak_ir::VarId> = vec![cl.iv];
            for s in &f.block(b).stmts {
                if let Stmt::Assign {
                    dst,
                    rv: Rvalue::Binary(BinOp::Add | BinOp::Sub, a, bb),
                } = s
                {
                    let uses_iv = a.as_var() == Some(cl.iv) || bb.as_var() == Some(cl.iv);
                    if uses_iv && !affine.contains(dst) {
                        affine.push(*dst);
                    }
                }
            }
            for s in &f.block(b).stmts {
                let Stmt::Assign { rv: Rvalue::Load(mr), .. } = s else { continue };
                let idx_var = match mr.index {
                    Operand::Var(v) if affine.contains(&v) => v,
                    _ => continue,
                };
                // Pointer bases must be loop-invariant to be meaningful.
                if let peak_ir::MemBase::Ptr(p) = mr.base {
                    let defined_in_loop = l
                        .body
                        .iter()
                        .any(|&bb| f.block(bb).stmts.iter().any(|s| s.def() == Some(p)));
                    if defined_in_loop {
                        continue;
                    }
                }
                if !seen.iter().any(|(bb2, _)| *bb2 == mr.base) {
                    seen.push((mr.base, idx_var));
                }
            }
        }
        for (base, idx_var) in seen {
            insertions.push((body_entry, base, idx_var));
        }
    }
    let changed = !insertions.is_empty();
    for (block, base, idx_var) in insertions {
        // addr index = idx + DISTANCE, computed inline into the prefetch
        // via a temp; `idx` holds the previous iteration's value at block
        // top, which only shifts the look-ahead window.
        let t = f.add_temp(peak_ir::Type::I64);
        let stmts = &mut f.block_mut(block).stmts;
        stmts.insert(
            0,
            Stmt::Assign {
                dst: t,
                rv: Rvalue::Binary(
                    BinOp::Add,
                    Operand::Var(idx_var),
                    Operand::Const(Value::I64(DISTANCE)),
                ),
            },
        );
        stmts.insert(1, Stmt::Prefetch { addr: MemRef { base, index: Operand::Var(t) } });
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Interp, MemoryImage, Program, Type};

    #[test]
    fn streaming_load_gets_prefetch() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::F64, 64);
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::F64);
        b.copy(acc, 0.0f64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let x = b.load(Type::F64, MemRef::global(a, i));
            b.binary_into(acc, BinOp::FAdd, acc, x);
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid)));
        assert!(!run(prog.func_mut(fid)), "idempotent");
        let f = prog.func(fid);
        let prefetches = f
            .block_ids()
            .flat_map(|bb| f.block(bb).stmts.iter())
            .filter(|s| matches!(s, Stmt::Prefetch { .. }))
            .count();
        assert_eq!(prefetches, 1);
        // Semantics unchanged (prefetch is a no-op in the interpreter),
        // even near the end of the array where the prefetch goes OOB.
        let mut m1 = MemoryImage::new(&orig);
        let mut m2 = MemoryImage::new(&prog);
        let r1 = Interp::default()
            .run(&orig, fid, &[peak_ir::Value::I64(60)], &mut m1)
            .unwrap();
        let r2 = Interp::default()
            .run(&prog, fid, &[peak_ir::Value::I64(60)], &mut m2)
            .unwrap();
        assert_eq!(r1.ret, r2.ret);
    }

    #[test]
    fn non_iv_index_not_prefetched() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 64);
        let idx_m = prog.add_mem("idx", Type::I64, 64);
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let j = b.load(Type::I64, MemRef::global(idx_m, i)); // indirect
            let x = b.load(Type::I64, MemRef::global(a, j)); // gather: skip
            b.binary_into(acc, BinOp::Add, acc, x);
        });
        b.ret(Some(acc.into()));
        let fid = prog.add_func(b.finish());
        assert!(run(prog.func_mut(fid)));
        let f = prog.func(fid);
        // Only the idx stream is prefetched, not the gather.
        let prefetches = f
            .block_ids()
            .flat_map(|bb| f.block(bb).stmts.iter())
            .filter(|s| matches!(s, Stmt::Prefetch { .. }))
            .count();
        assert_eq!(prefetches, 1);
    }
}
