//! Reassociation: `(x ⊕ c1) ⊕ c2 → x ⊕ (c1 ⊕ c2)` for associative integer
//! operators, constant-combining across single-def chains within a block.
//! Exposes more constant folding and shortens dependence chains.

use crate::util::single_def_sites;
use peak_ir::interp::eval_binop;
use peak_ir::{Function, Operand, Rvalue, Stmt, Value};

/// Run reassociation. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let sites = single_def_sites(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        for si in 0..f.block(b).stmts.len() {
            // Pattern: t2 = (t1 op c2) where t1 = (x op c1), t1 single-def
            // in this same block before si, and t1 has its const on either
            // side (op commutative ⇒ normalize).
            let Stmt::Assign { rv, .. } = &f.block(b).stmts[si] else { continue };
            let Rvalue::Binary(op, a, c2) = rv else { continue };
            if !op.is_associative() || !op.is_commutative() {
                continue;
            }
            let op = *op;
            let (inner_var, outer_const) = match (a, c2) {
                (Operand::Var(v), Operand::Const(c)) => (*v, *c),
                (Operand::Const(c), Operand::Var(v)) => (*v, *c),
                _ => continue,
            };
            let Some(&(db, dsi)) = sites.get(&inner_var) else { continue };
            if db != b || dsi >= si {
                continue; // defined elsewhere; stay block-local for safety
            }
            let Stmt::Assign { rv: Rvalue::Binary(iop, ia, ib), .. } = &f.block(db).stmts[dsi]
            else {
                continue;
            };
            if *iop != op {
                continue;
            }
            let (x, inner_const) = match (ia, ib) {
                (Operand::Var(v), Operand::Const(c)) => (Operand::Var(*v), *c),
                (Operand::Const(c), Operand::Var(v)) => (Operand::Var(*v), *c),
                (Operand::Const(c), Operand::Const(d)) => {
                    // Fully constant inner — fold pass will handle; combine
                    // here anyway.
                    let Ok(v) = eval_binop(op, *c, *d) else { continue };
                    (Operand::Const(v), Value::I64(identity(op)))
                }
                _ => continue,
            };
            // x must still hold the same value at si: since inner is
            // single-def and we only replace the *operand* with x plus a
            // combined constant, we need x unchanged between dsi and si.
            if let Operand::Var(xv) = x {
                let redefined = f.block(b).stmts[dsi + 1..si]
                    .iter()
                    .any(|s| s.def() == Some(xv));
                if redefined {
                    continue;
                }
            }
            let Ok(combined) = eval_binop(op, inner_const, outer_const) else { continue };
            let Stmt::Assign { rv, .. } = &mut f.block_mut(b).stmts[si] else { unreachable!() };
            *rv = Rvalue::Binary(op, x, Operand::Const(combined));
            changed = true;
        }
    }
    changed
}

fn identity(op: peak_ir::BinOp) -> i64 {
    use peak_ir::BinOp;
    match op {
        BinOp::Add | BinOp::Or | BinOp::Xor => 0,
        BinOp::Mul => 1,
        BinOp::And => -1,
        BinOp::Min => i64::MAX,
        BinOp::Max => i64::MIN,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Type};

    #[test]
    fn combines_constant_chain() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let t1 = b.binary(BinOp::Add, p, 3i64);
        let t2 = b.binary(BinOp::Add, t1, 4i64);
        b.ret(Some(t2.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].stmts[1] {
            Stmt::Assign { rv: Rvalue::Binary(BinOp::Add, Operand::Var(v), Operand::Const(Value::I64(7))), .. } => {
                assert_eq!(*v, p);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn combines_mul_chain() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let t1 = b.binary(BinOp::Mul, 5i64, p);
        let t2 = b.binary(BinOp::Mul, t1, 3i64);
        b.ret(Some(t2.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].stmts[1] {
            Stmt::Assign { rv: Rvalue::Binary(BinOp::Mul, Operand::Var(_), Operand::Const(Value::I64(15))), .. } => {}
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn float_chains_untouched() {
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let p = b.param("p", Type::F64);
        let t1 = b.binary(BinOp::FAdd, p, 3.0f64);
        let t2 = b.binary(BinOp::FAdd, t1, 4.0f64);
        b.ret(Some(t2.into()));
        let mut f = b.finish();
        assert!(!run(&mut f), "float add is not associative");
    }

    #[test]
    fn intervening_redefinition_blocks_rewrite() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let t1 = b.binary(BinOp::Add, p, 3i64);
        b.binary_into(p, BinOp::Add, p, 100i64); // p changes
        let t2 = b.binary(BinOp::Add, t1, 4i64);
        b.ret(Some(t2.into()));
        let mut f = b.finish();
        let _ = t1;
        assert!(!run(&mut f), "p redefined between inner and outer");
    }

    #[test]
    fn subtraction_not_reassociated() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let t1 = b.binary(BinOp::Sub, p, 3i64);
        let t2 = b.binary(BinOp::Sub, t1, 4i64);
        b.ret(Some(t2.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }
}
