//! Jump threading: fold constant-condition branches, skip empty forwarding
//! blocks, and collapse branches whose arms coincide.

use peak_ir::{BlockId, Function, Operand, Terminator};

/// Run jump threading until fixpoint. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed_any = false;
    loop {
        let mut changed = false;
        // 1. Fold constant branches and identical-arm branches.
        for b in f.block_ids().collect::<Vec<_>>() {
            let new_term = match &f.block(b).term {
                Terminator::Branch { cond: Operand::Const(c), on_true, on_false } => {
                    Some(Terminator::Jump(if c.is_true() { *on_true } else { *on_false }))
                }
                Terminator::Branch { on_true, on_false, .. } if on_true == on_false => {
                    Some(Terminator::Jump(*on_true))
                }
                _ => None,
            };
            if let Some(t) = new_term {
                f.block_mut(b).term = t;
                changed = true;
            }
        }
        // 2. Thread edges through empty jump-only blocks.
        let forward: Vec<Option<BlockId>> = f
            .block_ids()
            .map(|b| {
                let blk = f.block(b);
                match (&blk.term, blk.stmts.is_empty()) {
                    (Terminator::Jump(t), true) if *t != b => Some(*t),
                    _ => None,
                }
            })
            .collect();
        for b in f.block_ids().collect::<Vec<_>>() {
            let mut term = f.block(b).term.clone();
            let mut local = false;
            let thread = |t: &mut BlockId, local: &mut bool| {
                // Follow chains with a bound to avoid cycles of empty blocks.
                let mut hops = 0;
                while let Some(n) = forward[t.index()] {
                    if n == *t || hops > 16 {
                        break;
                    }
                    *t = n;
                    *local = true;
                    hops += 1;
                }
            };
            match &mut term {
                Terminator::Jump(t) => thread(t, &mut local),
                Terminator::Branch { on_true, on_false, .. } => {
                    thread(on_true, &mut local);
                    thread(on_false, &mut local);
                }
                Terminator::Return(_) => {}
            }
            if local {
                f.block_mut(b).term = term;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        changed_any = true;
    }
    changed_any
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Interp, MemoryImage, Program, Stmt, Type, Value};

    #[test]
    fn constant_branch_folds() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let r = b.var("r", Type::I64);
        b.if_then_else(Operand::const_i64(1), |b| b.copy(r, 10i64), |b| b.copy(r, 20i64));
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(f.blocks[0].term, Terminator::Jump(t) if t == BlockId(1)));
    }

    #[test]
    fn empty_block_threaded_through() {
        // if_then with empty body: entry -> (empty then -> join | join).
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("p", Type::I64);
        b.if_then(p, |_| {});
        b.ret(None);
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].term {
            Terminator::Branch { on_true, on_false, .. } => {
                assert_eq!(on_true, on_false, "both arms reach the join directly");
            }
            Terminator::Jump(_) => {} // identical arms then collapse
            t => panic!("{t:?}"),
        }
        // A second run collapses the identical-arm branch fully.
        run(&mut f);
        assert!(matches!(f.blocks[0].term, Terminator::Jump(_)));
    }

    #[test]
    fn semantics_preserved() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let r = b.var("r", Type::I64);
        b.copy(r, 0i64);
        b.if_then(p, |b| b.copy(r, 1i64));
        b.if_then_else(Operand::const_i64(0), |b| b.copy(r, 99i64), |_| {});
        b.ret(Some(r.into()));
        let fid = prog.add_func(b.finish());
        let mut optimized = prog.clone();
        assert!(run(optimized.func_mut(fid)));
        for input in [0i64, 5] {
            let mut m1 = MemoryImage::new(&prog);
            let mut m2 = MemoryImage::new(&optimized);
            let r1 = Interp::default().run(&prog, fid, &[Value::I64(input)], &mut m1).unwrap();
            let r2 = Interp::default()
                .run(&optimized, fid, &[Value::I64(input)], &mut m2)
                .unwrap();
            assert_eq!(r1.ret, r2.ret);
        }
    }

    #[test]
    fn self_loop_not_threaded_forever() {
        // Block jumping to itself must not hang the pass.
        let mut f = peak_ir::Function::new("f", None);
        let b1 = f.add_block();
        f.block_mut(f.entry).term = Terminator::Jump(b1);
        f.block_mut(b1).term = Terminator::Jump(b1);
        run(&mut f); // must terminate
    }

    #[test]
    fn nonempty_block_not_skipped() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let r = b.var("r", Type::I64);
        b.copy(r, 0i64);
        b.if_then(p, |b| b.copy(r, 1i64)); // then-block has a statement
        b.ret(Some(r.into()));
        let mut f = b.finish();
        let then_has_stmt = f.blocks[1].stmts.len() == 1;
        assert!(then_has_stmt);
        run(&mut f);
        // Entry still branches through the non-empty then block.
        match &f.blocks[0].term {
            Terminator::Branch { on_true, .. } => assert_eq!(*on_true, BlockId(1)),
            t => panic!("{t:?}"),
        }
        let _ = Stmt::CounterInc { counter: peak_ir::CounterId(0) }; // silence import
    }
}
