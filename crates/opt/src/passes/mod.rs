//! Optimization passes, one module per transformation. Each pass exposes a
//! `run(…) -> bool` returning whether it changed the IR; the pipeline in
//! [`crate::pipeline`] sequences them according to the enabled flags.

pub mod algebraic;
pub mod align;
pub mod branch_reorder;
pub mod cprop;
pub mod cse;
pub mod dce;
pub mod dse;
pub mod fold;
pub mod fusion;
pub mod gcse;
pub mod ifconv;
pub mod inline;
pub mod jumpthread;
pub mod licm;
pub mod peephole;
pub mod prefetch;
pub mod reassoc;
pub mod reciprocal;
pub mod regpromote;
pub mod schedule;
pub mod store_forward;
pub mod strength;
pub mod taildup;
pub mod unroll;
pub mod unswitch;
