//! Dead-code elimination: remove assignments whose results are never used.
//!
//! Liveness here is demand-driven: roots are values read by side-effecting
//! statements and terminators; an assignment is live only if its destination
//! feeds a root transitively. Loads may be removed when dead (removing a
//! potential out-of-bounds trap is a refinement the workloads never rely
//! on); calls are always kept.

use peak_ir::{Cfg, Function, Rvalue, Stmt};

/// Run DCE. Returns true if anything was removed.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let nv = f.num_vars();
    let mut needed = vec![false; nv];
    let mut uses = Vec::new();
    // Roots.
    for &b in &cfg.rpo {
        for s in &f.block(b).stmts {
            if s.has_side_effect() {
                uses.clear();
                s.uses(&mut uses);
                for u in &uses {
                    needed[u.index()] = true;
                }
            }
        }
        uses.clear();
        f.block(b).term.uses(&mut uses);
        for u in &uses {
            needed[u.index()] = true;
        }
    }
    // Transitive closure: a def of a needed var makes its operands needed.
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &cfg.rpo {
            for s in &f.block(b).stmts {
                if let Stmt::Assign { dst, rv } = s {
                    if needed[dst.index()] {
                        uses.clear();
                        rv.uses(&mut uses);
                        for u in &uses {
                            if !needed[u.index()] {
                                needed[u.index()] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
    }
    // Remove dead assignments (keep calls for their side effects).
    let mut removed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let before = f.block(b).stmts.len();
        f.block_mut(b).stmts.retain(|s| match s {
            Stmt::Assign { dst, rv } => {
                needed[dst.index()] || matches!(rv, Rvalue::Call { .. })
            }
            _ => true,
        });
        removed |= f.block(b).stmts.len() != before;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, MemRef, Type};

    #[test]
    fn removes_unused_chain() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let d1 = b.binary(BinOp::Add, p, 1i64); // dead
        let _d2 = b.binary(BinOp::Mul, d1, 2i64); // dead (feeds nothing)
        let live = b.binary(BinOp::Add, p, 3i64);
        b.ret(Some(live.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].stmts.len(), 1);
    }

    #[test]
    fn keeps_store_feeding_values() {
        let mut prog = peak_ir::Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let mut b = FunctionBuilder::new("f", None);
        let p = b.param("p", Type::I64);
        let v = b.binary(BinOp::Add, p, 1i64); // live via the store
        b.store(MemRef::global(a, 0i64), v);
        b.ret(None);
        let mut f = b.finish();
        assert!(!run(&mut f));
        assert_eq!(f.blocks[0].stmts.len(), 2);
    }

    #[test]
    fn dead_load_removed() {
        let mut prog = peak_ir::Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let mut b = FunctionBuilder::new("f", None);
        let _x = b.load(Type::I64, MemRef::global(a, 0i64));
        b.ret(None);
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(f.blocks[0].stmts.is_empty());
    }

    #[test]
    fn dead_call_result_kept_for_side_effects() {
        let mut prog = peak_ir::Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let mut cb = FunctionBuilder::new("g", Some(Type::I64));
        cb.store(MemRef::global(a, 0i64), 1i64);
        let t = cb.temp(Type::I64);
        cb.copy(t, 0i64);
        cb.ret(Some(t.into()));
        let callee = prog.add_func(cb.finish());
        let mut b = FunctionBuilder::new("f", None);
        let _r = b.call(Type::I64, callee, vec![]); // result dead, call isn't
        b.ret(None);
        let mut f = b.finish();
        assert!(!run(&mut f));
        assert_eq!(f.blocks[0].stmts.len(), 1);
    }

    #[test]
    fn loop_variables_kept() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, i);
        });
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        let before = f.num_stmts();
        assert!(!run(&mut f));
        assert_eq!(f.num_stmts(), before);
    }
}
