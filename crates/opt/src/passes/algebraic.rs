//! Algebraic simplification: identity and absorbing elements, power-of-two
//! strength tricks. Only exact rewrites — float identities are restricted
//! to those valid under IEEE semantics for all inputs we generate.

use peak_ir::{BinOp, Function, Operand, Rvalue, Stmt, Value};

fn as_i64(op: &Operand) -> Option<i64> {
    match op {
        Operand::Const(Value::I64(k)) => Some(*k),
        _ => None,
    }
}

fn simplify(rv: &Rvalue) -> Option<Rvalue> {
    let Rvalue::Binary(op, a, b) = rv else { return None };
    let (ka, kb) = (as_i64(a), as_i64(b));
    Some(match op {
        BinOp::Add => match (ka, kb) {
            (Some(0), _) => Rvalue::Use(*b),
            (_, Some(0)) => Rvalue::Use(*a),
            _ => return None,
        },
        BinOp::Sub => match kb {
            Some(0) => Rvalue::Use(*a),
            _ if a == b && matches!(a, Operand::Var(_)) => {
                Rvalue::Use(Operand::const_i64(0))
            }
            _ => return None,
        },
        BinOp::Mul => match (ka, kb) {
            (Some(1), _) => Rvalue::Use(*b),
            (_, Some(1)) => Rvalue::Use(*a),
            (Some(0), _) | (_, Some(0)) => Rvalue::Use(Operand::const_i64(0)),
            // x * 2^k → x << k (and commuted).
            (_, Some(k)) if k > 1 && (k as u64).is_power_of_two() => {
                Rvalue::Binary(BinOp::Shl, *a, Operand::const_i64(k.trailing_zeros() as i64))
            }
            (Some(k), _) if k > 1 && (k as u64).is_power_of_two() => {
                Rvalue::Binary(BinOp::Shl, *b, Operand::const_i64(k.trailing_zeros() as i64))
            }
            _ => return None,
        },
        BinOp::Div => match kb {
            Some(1) => Rvalue::Use(*a),
            _ => return None,
        },
        BinOp::And => match (ka, kb) {
            (Some(0), _) | (_, Some(0)) => Rvalue::Use(Operand::const_i64(0)),
            (Some(-1), _) => Rvalue::Use(*b),
            (_, Some(-1)) => Rvalue::Use(*a),
            _ if a == b && matches!(a, Operand::Var(_)) => Rvalue::Use(*a),
            _ => return None,
        },
        BinOp::Or => match (ka, kb) {
            (Some(0), _) => Rvalue::Use(*b),
            (_, Some(0)) => Rvalue::Use(*a),
            _ if a == b && matches!(a, Operand::Var(_)) => Rvalue::Use(*a),
            _ => return None,
        },
        BinOp::Xor => match (ka, kb) {
            (Some(0), _) => Rvalue::Use(*b),
            (_, Some(0)) => Rvalue::Use(*a),
            _ if a == b && matches!(a, Operand::Var(_)) => {
                Rvalue::Use(Operand::const_i64(0))
            }
            _ => return None,
        },
        BinOp::Shl | BinOp::Shr => match kb {
            Some(0) => Rvalue::Use(*a),
            _ => return None,
        },
        // x*1.0 and x/1.0 are exact for every IEEE double (sign of zero,
        // NaN payloads propagate identically).
        BinOp::FMul => match b {
            Operand::Const(Value::F64(k)) if *k == 1.0 => Rvalue::Use(*a),
            _ => match a {
                Operand::Const(Value::F64(k)) if *k == 1.0 => Rvalue::Use(*b),
                _ => return None,
            },
        },
        BinOp::FDiv => match b {
            Operand::Const(Value::F64(k)) if *k == 1.0 => Rvalue::Use(*a),
            _ => return None,
        },
        _ => return None,
    })
}

/// Run algebraic simplification. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        for s in &mut f.block_mut(b).stmts {
            if let Stmt::Assign { rv, .. } = s {
                if let Some(nrv) = simplify(rv) {
                    *rv = nrv;
                    changed = true;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Type, VarId};

    fn first_rv(f: &Function) -> &Rvalue {
        match &f.blocks[0].stmts[1] {
            Stmt::Assign { rv, .. } => rv,
            s => panic!("{s:?}"),
        }
    }

    fn check(op: BinOp, a: Operand, b: Operand, expect: Rvalue) {
        let mut fb = FunctionBuilder::new("f", None);
        let p = fb.param("p", Type::I64);
        let t = fb.temp(Type::I64);
        fb.copy(t, p); // stmt 0: anchors VarId for tests using vars
        let u = fb.temp(Type::I64);
        fb.assign(u, Rvalue::Binary(op, a, b));
        fb.ret(None);
        let mut f = fb.finish();
        // Statement of interest is at index 1.
        assert!(run(&mut f), "{op:?} {a:?} {b:?} should simplify");
        assert_eq!(first_rv(&f), &expect);
    }

    #[test]
    fn additive_identities() {
        let v = Operand::Var(VarId(0));
        check(BinOp::Add, v, 0i64.into(), Rvalue::Use(v));
        check(BinOp::Add, 0i64.into(), v, Rvalue::Use(v));
        check(BinOp::Sub, v, 0i64.into(), Rvalue::Use(v));
        check(BinOp::Sub, v, v, Rvalue::Use(Operand::const_i64(0)));
    }

    #[test]
    fn multiplicative_identities_and_shift() {
        let v = Operand::Var(VarId(0));
        check(BinOp::Mul, v, 1i64.into(), Rvalue::Use(v));
        check(BinOp::Mul, v, 0i64.into(), Rvalue::Use(Operand::const_i64(0)));
        check(
            BinOp::Mul,
            v,
            8i64.into(),
            Rvalue::Binary(BinOp::Shl, v, Operand::const_i64(3)),
        );
        check(BinOp::Div, v, 1i64.into(), Rvalue::Use(v));
    }

    #[test]
    fn bitwise_identities() {
        let v = Operand::Var(VarId(0));
        check(BinOp::Xor, v, v, Rvalue::Use(Operand::const_i64(0)));
        check(BinOp::And, v, v, Rvalue::Use(v));
        check(BinOp::Or, v, 0i64.into(), Rvalue::Use(v));
        check(BinOp::Shl, v, 0i64.into(), Rvalue::Use(v));
    }

    #[test]
    fn float_exact_identities_only() {
        let v = Operand::Var(VarId(0));
        check(BinOp::FMul, v, 1.0f64.into(), Rvalue::Use(v));
        check(BinOp::FDiv, v, 1.0f64.into(), Rvalue::Use(v));
        // x + 0.0 is NOT simplified: (-0.0) + 0.0 == +0.0 ≠ -0.0.
        let mut fb = FunctionBuilder::new("f", None);
        let p = fb.param("p", Type::F64);
        let _x = fb.binary(BinOp::FAdd, p, 0.0f64);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(!run(&mut f));
    }

    #[test]
    fn mul_nonpower_untouched() {
        let mut fb = FunctionBuilder::new("f", None);
        let p = fb.param("p", Type::I64);
        let _x = fb.binary(BinOp::Mul, p, 6i64);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(!run(&mut f));
    }
}
