//! Pre-register-allocation instruction scheduling (`-fschedule-insns`).
//!
//! Block-local list scheduling over the statement dependence DAG. The
//! machine simulator charges a stall whenever an instruction consumes the
//! result of the *immediately preceding* multi-cycle instruction (an
//! in-order pipeline bypass model), so separating producer-consumer pairs
//! is a genuine win — and the reordering can lengthen live ranges, which
//! is the classic scheduling/allocation tension the tuner explores.

use peak_ir::{Function, MemBase, Rvalue, Stmt};

/// Nominal producer latencies used for priority (must stay in sync with
/// the simulator's cost model for scheduling to help).
pub fn stmt_latency(s: &Stmt) -> u32 {
    match s {
        Stmt::Assign { rv, .. } => match rv {
            Rvalue::Load(_) => 3,
            Rvalue::Binary(op, ..) => match op {
                peak_ir::BinOp::Mul => 3,
                peak_ir::BinOp::Div | peak_ir::BinOp::Rem => 20,
                peak_ir::BinOp::FAdd | peak_ir::BinOp::FSub => 3,
                peak_ir::BinOp::FMul => 4,
                peak_ir::BinOp::FDiv => 18,
                _ => 1,
            },
            Rvalue::Unary(op, _) => match op {
                peak_ir::UnOp::FSqrt => 20,
                peak_ir::UnOp::IntToF | peak_ir::UnOp::FToInt => 3,
                _ => 1,
            },
            Rvalue::Call { .. } => 10,
            _ => 1,
        },
        _ => 1,
    }
}

/// Dependence edges between two statements (i before j in original order):
/// does j depend on i (order must be preserved)?
fn depends(f: &Function, i: &Stmt, j: &Stmt) -> bool {
    let _ = f;
    // Register dependences.
    let mut i_uses = Vec::new();
    let mut j_uses = Vec::new();
    i.uses(&mut i_uses);
    j.uses(&mut j_uses);
    if let Some(d) = i.def() {
        if j_uses.contains(&d) || j.def() == Some(d) {
            return true; // RAW / WAW
        }
    }
    if let Some(d) = j.def() {
        if i_uses.contains(&d) {
            return true; // WAR
        }
    }
    // Memory dependences, region-granular and conservative on pointers.
    let mem_class = |s: &Stmt| -> Option<(bool, Option<u32>)> {
        // (is_write, region or None=unknown)
        match s {
            Stmt::Assign { rv: Rvalue::Load(mr), .. } => Some((
                false,
                match mr.base {
                    MemBase::Global(m) => Some(m.0),
                    MemBase::Ptr(_) => None,
                },
            )),
            Stmt::Assign { rv: Rvalue::Call { .. }, .. } | Stmt::CallVoid { .. } => {
                Some((true, None))
            }
            Stmt::Store { dst, .. } => Some((
                true,
                match dst.base {
                    MemBase::Global(m) => Some(m.0),
                    MemBase::Ptr(_) => None,
                },
            )),
            _ => None,
        }
    };
    if let (Some((wi, ri)), Some((wj, rj))) = (mem_class(i), mem_class(j)) {
        if wi || wj {
            let alias = match (ri, rj) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            };
            if alias {
                return true;
            }
        }
    }
    false
}

/// List-schedule every block. Returns true if any statement moved.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let stmts = f.block(b).stmts.clone();
        let n = stmts.len();
        if n < 3 {
            continue;
        }
        // Build DAG (i -> j means j must come after i).
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut preds_left: Vec<usize> = vec![0; n];
        for i in 0..n {
            for j in i + 1..n {
                if depends(f, &stmts[i], &stmts[j]) {
                    succs[i].push(j);
                    preds_left[j] += 1;
                }
            }
        }
        // Heights: longest latency-weighted path to a sink.
        let mut height = vec![0u32; n];
        for i in (0..n).rev() {
            let follow = succs[i].iter().map(|&j| height[j]).max().unwrap_or(0);
            height[i] = stmt_latency(&stmts[i]) + follow;
        }
        // Greedy: among ready statements, highest height first; ties by
        // original order. Prefer not to pick the consumer of the
        // just-scheduled multi-cycle producer.
        let mut ready: Vec<usize> = (0..n).filter(|&i| preds_left[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut last: Option<usize> = None;
        while !ready.is_empty() {
            ready.sort_by_key(|&i| (std::cmp::Reverse(height[i]), i));
            // Avoid immediate dependence on `last` if an alternative exists.
            let pick_pos = ready
                .iter()
                .position(|&i| match last {
                    Some(l) => !succs[l].contains(&i) || stmt_latency(&stmts[l]) <= 1,
                    None => true,
                })
                .unwrap_or(0);
            let i = ready.remove(pick_pos);
            order.push(i);
            last = Some(i);
            for &j in &succs[i] {
                preds_left[j] -= 1;
                if preds_left[j] == 0 {
                    ready.push(j);
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        if order.iter().enumerate().any(|(pos, &i)| pos != i) {
            f.block_mut(b).stmts = order.iter().map(|&i| stmts[i].clone()).collect();
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemRef, MemoryImage, Program, Type, Value};

    #[test]
    fn producer_consumer_pairs_separated() {
        // a = x*x (3 cy); b = a+1 (consumer); c = y*y; d = c+1
        // Original order has two adjacent dependent pairs; scheduling
        // interleaves them.
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let x = fb.param("x", Type::I64);
        let y = fb.param("y", Type::I64);
        let a = fb.binary(BinOp::Mul, x, x);
        let b = fb.binary(BinOp::Add, a, 1i64);
        let c = fb.binary(BinOp::Mul, y, y);
        let d = fb.binary(BinOp::Add, c, 1i64);
        let r = fb.binary(BinOp::Add, b, d);
        fb.ret(Some(r.into()));
        let mut f = fb.finish();
        let orig = f.clone();
        assert!(run(&mut f));
        // No statement may consume the value produced immediately before it
        // by a multi-cycle op.
        let stmts = &f.blocks[0].stmts;
        let mut adjacent_stalls = 0;
        for w in stmts.windows(2) {
            if stmt_latency(&w[0]) > 1 {
                if let Some(dv) = w[0].def() {
                    let mut uses = Vec::new();
                    w[1].uses(&mut uses);
                    if uses.contains(&dv) {
                        adjacent_stalls += 1;
                    }
                }
            }
        }
        assert_eq!(adjacent_stalls, 0, "{stmts:#?}");
        // Semantics preserved.
        let mut prog = Program::new();
        let fid = prog.add_func(orig);
        let mut prog2 = Program::new();
        let fid2 = prog2.add_func(f);
        let mut m1 = MemoryImage::new(&prog);
        let mut m2 = MemoryImage::new(&prog2);
        let args = [Value::I64(3), Value::I64(4)];
        assert_eq!(
            Interp::default().run(&prog, fid, &args, &mut m1).unwrap().ret,
            Interp::default().run(&prog2, fid2, &args, &mut m2).unwrap().ret,
        );
    }

    #[test]
    fn store_load_order_preserved() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let x = fb.param("x", Type::I64);
        fb.store(MemRef::global(a, 0i64), x);
        let y = fb.load(Type::I64, MemRef::global(a, 0i64));
        let z = fb.binary(BinOp::Add, y, 1i64);
        fb.store(MemRef::global(a, 0i64), z);
        let w = fb.load(Type::I64, MemRef::global(a, 0i64));
        fb.ret(Some(w.into()));
        let fid = prog.add_func(fb.finish());
        let orig = prog.clone();
        run(prog.func_mut(fid));
        let mut m1 = MemoryImage::new(&orig);
        let mut m2 = MemoryImage::new(&prog);
        assert_eq!(
            Interp::default().run(&orig, fid, &[Value::I64(5)], &mut m1).unwrap().ret,
            Interp::default().run(&prog, fid, &[Value::I64(5)], &mut m2).unwrap().ret,
        );
    }

    #[test]
    fn disjoint_region_accesses_may_reorder() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let b = prog.add_mem("b", Type::I64, 4);
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let x = fb.param("x", Type::I64);
        // slow producer, then dependent consumer, then an independent
        // store/load pair on another region that can fill the gap.
        let p = fb.binary(BinOp::Mul, x, x);
        let q = fb.binary(BinOp::Add, p, 1i64);
        fb.store(MemRef::global(b, 0i64), x);
        let r = fb.load(Type::I64, MemRef::global(a, 0i64));
        let s = fb.binary(BinOp::Add, q, r);
        fb.ret(Some(s.into()));
        let fid = prog.add_func(fb.finish());
        let orig = prog.clone();
        assert!(run(prog.func_mut(fid)));
        let mut m1 = MemoryImage::new(&orig);
        let mut m2 = MemoryImage::new(&prog);
        assert_eq!(
            Interp::default().run(&orig, fid, &[Value::I64(5)], &mut m1).unwrap().ret,
            Interp::default().run(&prog, fid, &[Value::I64(5)], &mut m2).unwrap().ret,
        );
    }
}
