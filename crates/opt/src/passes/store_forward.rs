//! Store-to-load forwarding (block-local).
//!
//! `store m[k] = x; … ; y = load m[k]` → `y = x` when no intervening
//! statement may write the slot and `x` still holds the stored value.
//! Under `strict-aliasing`, stores through pointers whose inferred element
//! type differs from the loaded region's element type are assumed not to
//! alias — the paper's §5.2 aliasing assumption, applied to forwarding.

use crate::util::op_key;
use peak_ir::{Function, MemBase, Operand, PointsTo, Program, Rvalue, Stmt, Type};
use std::collections::HashMap;

/// Address key: (base kind, index key + generation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AddrKey {
    base: Base,
    index: crate::util::OpKey,
    index_gen: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Base {
    Global(u32),
    Ptr(u32, u32),
}

/// Run store forwarding. `strict_aliasing` widens the no-alias assumption.
pub fn run(f: &mut Function, prog: &Program, strict_aliasing: bool) -> bool {
    let pts = PointsTo::build(f);
    let ptr_elem = infer_pointer_elem_types(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        changed |= run_block(f, prog, &pts, &ptr_elem, strict_aliasing, b);
    }
    changed
}

/// Infer the element type accessed through each pointer variable from its
/// loads/stores (types are consistent in well-formed workloads; this is
/// the "declared type" strict aliasing reasons about).
fn infer_pointer_elem_types(f: &Function) -> HashMap<peak_ir::VarId, Type> {
    let mut map = HashMap::new();
    for b in f.block_ids() {
        for s in &f.block(b).stmts {
            match s {
                Stmt::Assign { dst, rv: Rvalue::Load(mr) } => {
                    if let MemBase::Ptr(p) = mr.base {
                        map.entry(p).or_insert(f.var_ty(*dst));
                    }
                }
                Stmt::Store { dst, src } => {
                    if let MemBase::Ptr(p) = dst.base {
                        let ty = match src {
                            Operand::Var(v) => f.var_ty(*v),
                            Operand::Const(c) => c.ty(),
                        };
                        map.entry(p).or_insert(ty);
                    }
                }
                _ => {}
            }
        }
    }
    map
}

#[allow(clippy::too_many_arguments)]
fn run_block(
    f: &mut Function,
    prog: &Program,
    pts: &PointsTo,
    ptr_elem: &HashMap<peak_ir::VarId, Type>,
    strict: bool,
    b: peak_ir::BlockId,
) -> bool {
    let mut gens = vec![0u32; f.num_vars()];
    // Known slot contents: addr → (operand, gens of its vars at store time).
    let mut slots: HashMap<AddrKey, (Operand, u32, Type)> = HashMap::new();
    let mut changed = false;
    for si in 0..f.block(b).stmts.len() {
        // Try to forward into a load.
        let fwd: Option<Operand> = match &f.block(b).stmts[si] {
            Stmt::Assign { rv: Rvalue::Load(mr), .. } => addr_key(mr, &gens).and_then(|k| {
                slots.get(&k).and_then(|(val, g, _)| {
                    let stable = match val {
                        Operand::Var(v) => gens[v.index()] == *g,
                        Operand::Const(_) => true,
                    };
                    stable.then_some(*val)
                })
            }),
            _ => None,
        };
        if let Some(val) = fwd {
            let Stmt::Assign { rv, .. } = &mut f.block_mut(b).stmts[si] else { unreachable!() };
            *rv = Rvalue::Use(val);
            changed = true;
        }
        // Update state.
        let s = &f.block(b).stmts[si];
        match s {
            Stmt::Assign { dst, rv } => {
                if matches!(rv, Rvalue::Call { .. }) {
                    slots.clear();
                }
                gens[dst.index()] += 1;
            }
            Stmt::Store { dst, src } => {
                let stored_ty = match src {
                    Operand::Var(v) => f.var_ty(*v),
                    Operand::Const(c) => c.ty(),
                };
                invalidate(&mut slots, f, prog, pts, ptr_elem, strict, dst);
                if let Some(k) = addr_key(dst, &gens) {
                    let g = match src {
                        Operand::Var(v) => gens[v.index()],
                        Operand::Const(_) => 0,
                    };
                    slots.insert(k, (*src, g, stored_ty));
                }
            }
            Stmt::CallVoid { .. } => slots.clear(),
            Stmt::Prefetch { .. } | Stmt::CounterInc { .. } => {}
        }
    }
    changed
}

fn addr_key(mr: &peak_ir::MemRef, gens: &[u32]) -> Option<AddrKey> {
    let base = match mr.base {
        MemBase::Global(m) => Base::Global(m.0),
        MemBase::Ptr(p) => Base::Ptr(p.0, gens[p.index()]),
    };
    let index_gen = match mr.index {
        Operand::Var(v) => gens[v.index()],
        Operand::Const(_) => 0,
    };
    Some(AddrKey { base, index: op_key(&mr.index), index_gen })
}

/// Drop slot knowledge this store may clobber.
fn invalidate(
    slots: &mut HashMap<AddrKey, (Operand, u32, Type)>,
    f: &Function,
    prog: &Program,
    pts: &PointsTo,
    ptr_elem: &HashMap<peak_ir::VarId, Type>,
    strict: bool,
    dst: &peak_ir::MemRef,
) {
    // Regions the store may touch, None = anywhere.
    let store_regions: Option<Vec<peak_ir::MemId>> = match dst.base {
        MemBase::Global(m) => Some(vec![m]),
        MemBase::Ptr(p) => {
            if pts.is_precise(p) {
                Some(pts.may_point_to(p, prog.mems.len()))
            } else {
                None
            }
        }
    };
    let store_ty: Option<Type> = match dst.base {
        MemBase::Global(m) => Some(prog.mems[m.index()].elem),
        MemBase::Ptr(p) => ptr_elem.get(&p).copied(),
    };
    slots.retain(|k, (_, _, slot_ty)| {
        // Determine the slot's region if known.
        let slot_region: Option<u32> = match &k.base {
            Base::Global(m) => Some(*m),
            Base::Ptr(pv, _) => {
                let p = peak_ir::VarId(*pv);
                if pts.is_precise(p) {
                    let r = pts.may_point_to(p, prog.mems.len());
                    (r.len() == 1).then(|| r[0].0)
                } else {
                    None
                }
            }
        };
        match (&store_regions, slot_region) {
            (Some(srs), Some(sr)) => {
                if !srs.iter().any(|m| m.0 == sr) {
                    return true; // provably disjoint regions
                }
                // Same region: exact same address key means overwritten —
                // drop (it will be re-inserted with the new value); a
                // different *constant* index in the same region is disjoint.
                if let (crate::util::OpKey::Const(_, a), Some(crate::util::OpKey::Const(_, b2))) =
                    (k.index, store_const_index(dst))
                {
                    if a != b2 && matches!(k.base, Base::Global(_)) && matches!(dst.base, MemBase::Global(_)) {
                        return true;
                    }
                }
                false
            }
            _ => {
                // Unknown on either side: under strict aliasing, different
                // element types are assumed not to alias.
                if strict {
                    if let Some(sty) = store_ty {
                        if *slot_ty != sty {
                            return true;
                        }
                    }
                }
                let _ = f;
                false
            }
        }
    });
}

fn store_const_index(mr: &peak_ir::MemRef) -> Option<crate::util::OpKey> {
    matches!(mr.index, Operand::Const(_)).then(|| op_key(&mr.index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, MemRef, Program};

    fn setup() -> (Program, peak_ir::MemId, peak_ir::MemId) {
        let mut p = Program::new();
        let a = p.add_mem("a", Type::I64, 8);
        let fm = p.add_mem("fvals", Type::F64, 8);
        (p, a, fm)
    }

    #[test]
    fn forwards_stored_value() {
        let (prog, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let x = fb.param("x", Type::I64);
        fb.store(MemRef::global(a, 2i64), x);
        let y = fb.load(Type::I64, MemRef::global(a, 2i64));
        b_ret(&mut fb, y);
        let mut f = fb.finish();
        assert!(run(&mut f, &prog, false));
        assert!(matches!(
            &f.blocks[0].stmts[1],
            Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == x
        ));
    }

    fn b_ret(fb: &mut FunctionBuilder, v: peak_ir::VarId) {
        fb.ret(Some(v.into()));
    }

    #[test]
    fn source_mutation_blocks_forwarding() {
        let (prog, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let x = fb.param("x", Type::I64);
        fb.store(MemRef::global(a, 2i64), x);
        fb.binary_into(x, BinOp::Add, x, 1i64);
        let y = fb.load(Type::I64, MemRef::global(a, 2i64));
        b_ret(&mut fb, y);
        let mut f = fb.finish();
        assert!(!run(&mut f, &prog, false), "x changed; cannot forward");
    }

    #[test]
    fn aliasing_store_blocks_forwarding() {
        let (prog, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let x = fb.param("x", Type::I64);
        let i = fb.param("i", Type::I64);
        fb.store(MemRef::global(a, 2i64), x);
        fb.store(MemRef::global(a, i), 0i64); // may hit slot 2
        let y = fb.load(Type::I64, MemRef::global(a, 2i64));
        b_ret(&mut fb, y);
        let mut f = fb.finish();
        assert!(!run(&mut f, &prog, false));
    }

    #[test]
    fn strict_aliasing_ignores_differently_typed_pointer_store() {
        let (prog, a, _) = setup();
        // ptr param q stores f64; the i64 slot survives under strict
        // aliasing, not otherwise.
        let build = || {
            let mut fb = FunctionBuilder::new("f", Some(Type::I64));
            let x = fb.param("x", Type::I64);
            let q = fb.param("q", Type::Ptr);
            let fv = fb.param("fv", Type::F64);
            fb.store(MemRef::global(a, 2i64), x);
            fb.store(MemRef::ptr(q, 0i64), fv); // unknown region, f64 type
            let y = fb.load(Type::I64, MemRef::global(a, 2i64));
            fb.ret(Some(y.into()));
            fb.finish()
        };
        let mut without = build();
        assert!(!run(&mut without, &prog, false), "without strict aliasing: blocked");
        let mut with = build();
        assert!(run(&mut with, &prog, true), "strict aliasing: forwards across f64 store");
    }

    #[test]
    fn same_region_distinct_const_slots_survive() {
        let (prog, a, _) = setup();
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let x = fb.param("x", Type::I64);
        fb.store(MemRef::global(a, 2i64), x);
        fb.store(MemRef::global(a, 3i64), 7i64);
        let y = fb.load(Type::I64, MemRef::global(a, 2i64));
        b_ret(&mut fb, y);
        let mut f = fb.finish();
        assert!(run(&mut f, &prog, false), "slot 3 store cannot clobber slot 2");
    }
}
