//! Constant folding: evaluate operations over constant operands at compile
//! time. Branch-condition folding lives in jump threading.

use peak_ir::interp::{eval_binop, eval_unop};
use peak_ir::{Function, Operand, Rvalue};

/// Run constant folding. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        for s in &mut f.block_mut(b).stmts {
            let peak_ir::Stmt::Assign { rv, .. } = s else { continue };
            let folded = match rv {
                Rvalue::Unary(op, Operand::Const(a)) => Some(eval_unop(*op, *a)),
                Rvalue::Binary(op, Operand::Const(a), Operand::Const(b)) => {
                    // Division by zero folds to nothing — keep the trap.
                    eval_binop(*op, *a, *b).ok()
                }
                Rvalue::Select { cond: Operand::Const(c), on_true, on_false } => {
                    let arm = if c.is_true() { *on_true } else { *on_false };
                    *rv = Rvalue::Use(arm);
                    changed = true;
                    None
                }
                _ => None,
            };
            if let Some(v) = folded {
                *rv = Rvalue::Use(Operand::Const(v));
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Type, UnOp, Value};

    #[test]
    fn folds_constant_arithmetic() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.binary(BinOp::Add, 2i64, 3i64);
        let y = b.binary(BinOp::Mul, x, 0i64); // not const yet (x is a var)
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].stmts[0] {
            peak_ir::Stmt::Assign { rv: Rvalue::Use(Operand::Const(Value::I64(5))), .. } => {}
            s => panic!("expected folded 5, got {s:?}"),
        }
    }

    #[test]
    fn folds_unary_and_select() {
        let mut b = FunctionBuilder::new("f", None);
        let _n = b.unary(UnOp::Neg, 7i64);
        let t = b.temp(Type::I64);
        b.assign(
            t,
            Rvalue::Select { cond: 1i64.into(), on_true: 10i64.into(), on_false: 20i64.into() },
        );
        b.ret(None);
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].stmts[0] {
            peak_ir::Stmt::Assign { rv: Rvalue::Use(Operand::Const(Value::I64(-7))), .. } => {}
            s => panic!("{s:?}"),
        }
        match &f.blocks[0].stmts[1] {
            peak_ir::Stmt::Assign { rv: Rvalue::Use(Operand::Const(Value::I64(10))), .. } => {}
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn keeps_division_by_zero() {
        let mut b = FunctionBuilder::new("f", None);
        let _d = b.binary(BinOp::Div, 1i64, 0i64);
        b.ret(None);
        let mut f = b.finish();
        assert!(!run(&mut f), "div-by-zero must not fold");
        assert!(matches!(
            &f.blocks[0].stmts[0],
            peak_ir::Stmt::Assign { rv: Rvalue::Binary(BinOp::Div, ..), .. }
        ));
    }

    #[test]
    fn float_folding() {
        let mut b = FunctionBuilder::new("f", None);
        let _x = b.binary(BinOp::FMul, 2.0f64, 4.0f64);
        b.ret(None);
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].stmts[0] {
            peak_ir::Stmt::Assign { rv: Rvalue::Use(Operand::Const(Value::F64(v))), .. } => {
                assert_eq!(*v, 8.0)
            }
            s => panic!("{s:?}"),
        }
    }
}
