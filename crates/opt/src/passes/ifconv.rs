//! If-conversion: turn small branch diamonds into straight-line `Select`
//! code (cmov on Pentium IV, movr on SPARC).
//!
//! Handled shapes, with every arm statement a *speculatable* pure assign
//! (see [`crate::util::is_speculatable`] — no loads, no trapping division):
//!
//! * full diamond `if c { v… = … } else { v… = … }` → both arm computations
//!   into fresh temps, then one `Select` per assigned variable;
//! * one-sided `if c { v… = … }` → select between new and old value.
//!
//! Removes the branch (and its misprediction cost) at the price of
//! executing both arms — exactly the trade the tuner should discover per
//! workload and machine.

use crate::util::map_rvalue_operands;
use peak_ir::{
    BlockId, Function, Operand, Rvalue, Stmt, Terminator, VarId,
};
use std::collections::HashMap;

/// Maximum statements per arm.
const MAX_ARM_STMTS: usize = 4;

/// Run if-conversion. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        changed |= try_convert(f, b);
    }
    changed
}

/// An arm is convertible when it is a single block of speculatable assigns
/// ending in a jump, and each variable is assigned at most once within it.
fn arm_ok(f: &Function, arm: BlockId) -> Option<(Vec<(VarId, Rvalue)>, BlockId)> {
    let blk = f.block(arm);
    let Terminator::Jump(join) = blk.term else { return None };
    if blk.stmts.len() > MAX_ARM_STMTS {
        return None;
    }
    let mut assigns = Vec::new();
    let mut seen = Vec::new();
    for s in &blk.stmts {
        let Stmt::Assign { dst, rv } = s else { return None };
        if !crate::util::is_speculatable(rv) {
            return None;
        }
        if seen.contains(dst) {
            return None; // keep the renaming logic simple
        }
        seen.push(*dst);
        assigns.push((*dst, rv.clone()));
    }
    Some((assigns, join))
}

fn try_convert(f: &mut Function, b: BlockId) -> bool {
    let Terminator::Branch { cond, on_true, on_false } = f.block(b).term.clone() else {
        return false;
    };
    if on_true == b || on_false == b || on_true == on_false {
        return false;
    }
    // Arms must be exclusive to this diamond (single predecessor each) —
    // checked by counting predecessors.
    let cfg = peak_ir::Cfg::build(f);
    let single_pred =
        |t: BlockId| cfg.preds[t.index()].len() == 1 && cfg.preds[t.index()][0] == b;
    // One-sided: on_false IS the join.
    let (t_assigns, e_assigns, join) = if single_pred(on_true) {
        match arm_ok(f, on_true) {
            Some((ta, tj)) if tj == on_false => (ta, Vec::new(), on_false),
            Some((ta, tj)) => {
                // Full diamond?
                if !single_pred(on_false) {
                    return false;
                }
                match arm_ok(f, on_false) {
                    Some((ea, ej)) if ej == tj && tj != b => (ta, ea, tj),
                    _ => return false,
                }
            }
            None => return false,
        }
    } else {
        return false;
    };
    if t_assigns.is_empty() && e_assigns.is_empty() {
        return false; // jump threading's job
    }
    // The join must not be one of the arms and must not loop back into b.
    if join == on_true || join == b {
        return false;
    }
    // Build the converted code in block b. Within an arm, later statements
    // may use earlier arm results; we compute arm values into fresh temps
    // (renaming arm-internal uses), then select.
    let mut new_stmts: Vec<Stmt> = Vec::new();
    let rename_arm = |f: &mut Function,
                          assigns: &[(VarId, Rvalue)],
                          new_stmts: &mut Vec<Stmt>|
     -> HashMap<VarId, VarId> {
        let mut map: HashMap<VarId, VarId> = HashMap::new();
        for (dst, rv) in assigns {
            let mut rv = rv.clone();
            map_rvalue_operands(&mut rv, &mut |op| {
                if let Operand::Var(v) = op {
                    if let Some(&nv) = map.get(v) {
                        *op = Operand::Var(nv);
                    }
                }
            });
            let tmp = f.add_temp(f.var_ty(*dst));
            new_stmts.push(Stmt::Assign { dst: tmp, rv });
            map.insert(*dst, tmp);
        }
        map
    };
    let t_map = rename_arm(f, &t_assigns, &mut new_stmts);
    let e_map = rename_arm(f, &e_assigns, &mut new_stmts);
    // Selects: for each var assigned in either arm, in deterministic order.
    let mut vars: Vec<VarId> = t_map.keys().chain(e_map.keys()).copied().collect();
    vars.sort();
    vars.dedup();
    for v in vars {
        let tv = t_map.get(&v).map(|&t| Operand::Var(t)).unwrap_or(Operand::Var(v));
        let ev = e_map.get(&v).map(|&t| Operand::Var(t)).unwrap_or(Operand::Var(v));
        new_stmts.push(Stmt::Assign {
            dst: v,
            rv: Rvalue::Select { cond, on_true: tv, on_false: ev },
        });
    }
    let blk = f.block_mut(b);
    blk.stmts.extend(new_stmts);
    blk.term = Terminator::Jump(join);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemoryImage, Program, Type, Value};

    fn exec(prog: &Program, fid: peak_ir::FuncId, x: i64) -> Option<Value> {
        let mut mem = MemoryImage::new(prog);
        Interp::default().run(prog, fid, &[Value::I64(x)], &mut mem).unwrap().ret
    }

    #[test]
    fn full_diamond_converted() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        let c = b.binary(BinOp::Gt, x, 0i64);
        b.if_then_else(
            c,
            |b| {
                let t = b.binary(BinOp::Mul, x, 2i64);
                b.copy(r, t);
            },
            |b| {
                let t = b.binary(BinOp::Sub, 0i64, x);
                b.copy(r, t);
            },
        );
        b.ret(Some(r.into()));
        let fid = prog.add_func(b.finish());
        let mut opt = prog.clone();
        assert!(run(opt.func_mut(fid)));
        // Entry block now ends in a jump (branch is gone).
        assert!(matches!(opt.func(fid).blocks[0].term, Terminator::Jump(_)));
        for v in [-3i64, 0, 5] {
            assert_eq!(exec(&prog, fid, v), exec(&opt, fid, v), "x={v}");
        }
    }

    #[test]
    fn one_sided_if_converted() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        b.copy(r, 100i64);
        let c = b.binary(BinOp::Lt, x, 10i64);
        b.if_then(c, |b| {
            b.copy(r, 1i64);
        });
        b.ret(Some(r.into()));
        let fid = prog.add_func(b.finish());
        let mut opt = prog.clone();
        assert!(run(opt.func_mut(fid)));
        for v in [5i64, 50] {
            assert_eq!(exec(&prog, fid, v), exec(&opt, fid, v), "x={v}");
        }
    }

    #[test]
    fn arm_with_load_not_converted() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        b.copy(r, 0i64);
        b.if_then(x, |b| {
            // Speculating this load could trap when x indexes out of
            // bounds on the not-taken path.
            let v = b.load(Type::I64, peak_ir::MemRef::global(a, x));
            b.copy(r, v);
        });
        b.ret(Some(r.into()));
        let fid = prog.add_func(b.finish());
        let mut opt = prog.clone();
        assert!(!run(opt.func_mut(fid)));
    }

    #[test]
    fn arm_with_store_not_converted() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let mut b = FunctionBuilder::new("f", None);
        let x = b.param("x", Type::I64);
        b.if_then(x, |b| {
            b.store(peak_ir::MemRef::global(a, 0i64), 1i64);
        });
        b.ret(None);
        let fid = prog.add_func(b.finish());
        let mut opt = prog.clone();
        assert!(!run(opt.func_mut(fid)));
    }

    #[test]
    fn arm_internal_dependence_renamed() {
        // then-arm: t = x+1; r = t*t — t must be renamed, not clobbered.
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        let t = b.var("t", Type::I64);
        b.copy(r, 7i64);
        b.copy(t, 1000i64);
        let c = b.binary(BinOp::Gt, x, 0i64);
        b.if_then(c, |b| {
            b.binary_into(t, BinOp::Add, x, 1i64);
            b.binary_into(r, BinOp::Mul, t, t);
        });
        // t's original value must survive on the not-taken path.
        let out = b.binary(BinOp::Add, r, t);
        b.ret(Some(out.into()));
        let fid = prog.add_func(b.finish());
        let mut opt = prog.clone();
        assert!(run(opt.func_mut(fid)));
        for v in [-1i64, 3] {
            assert_eq!(exec(&prog, fid, v), exec(&opt, fid, v), "x={v}");
        }
    }
}
