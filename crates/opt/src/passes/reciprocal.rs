//! Reciprocal math: replace float division by a power-of-two constant with
//! multiplication by its exact reciprocal. Restricted to powers of two so
//! the rewrite is bit-exact under IEEE-754 (both operations are exact
//! scalings of the exponent), unlike the general `-ffast-math` rewrite.

use peak_ir::{BinOp, Function, Operand, Rvalue, Stmt, Value};

fn exact_reciprocal(k: f64) -> Option<f64> {
    if !k.is_finite() || k == 0.0 {
        return None;
    }
    // A power of two has zero mantissa bits and a non-subnormal reciprocal.
    let bits = k.abs().to_bits();
    let mantissa = bits & ((1u64 << 52) - 1);
    let exp = (bits >> 52) & 0x7ff;
    if mantissa != 0 || exp == 0 {
        return None;
    }
    let r = 1.0 / k;
    // The reciprocal must itself be normal for exactness.
    if !r.is_normal() {
        return None;
    }
    Some(r)
}

/// Run the reciprocal rewrite. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        for s in &mut f.block_mut(b).stmts {
            let Stmt::Assign { rv, .. } = s else { continue };
            let Rvalue::Binary(BinOp::FDiv, a, Operand::Const(Value::F64(k))) = rv else {
                continue;
            };
            if let Some(r) = exact_reciprocal(*k) {
                *rv = Rvalue::Binary(BinOp::FMul, *a, Operand::Const(Value::F64(r)));
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{FunctionBuilder, Type};

    #[test]
    fn power_of_two_division_becomes_multiply() {
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let x = b.param("x", Type::F64);
        let y = b.binary(BinOp::FDiv, x, 8.0f64);
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].stmts[0] {
            Stmt::Assign { rv: Rvalue::Binary(BinOp::FMul, _, Operand::Const(Value::F64(r))), .. } => {
                assert_eq!(*r, 0.125)
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn negative_power_of_two_ok() {
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let x = b.param("x", Type::F64);
        let y = b.binary(BinOp::FDiv, x, -4.0f64);
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(run(&mut f));
    }

    #[test]
    fn non_power_untouched() {
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let x = b.param("x", Type::F64);
        let y = b.binary(BinOp::FDiv, x, 3.0f64);
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(!run(&mut f), "1/3 is inexact");
    }

    #[test]
    fn variable_divisor_untouched() {
        let mut b = FunctionBuilder::new("f", Some(Type::F64));
        let x = b.param("x", Type::F64);
        let d = b.param("d", Type::F64);
        let y = b.binary(BinOp::FDiv, x, d);
        b.ret(Some(y.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }

    #[test]
    fn exactness_for_all_doubles() {
        // Spot-check bit-exactness across magnitudes.
        for k in [2.0f64, 8.0, 1024.0, 0.5, -16.0] {
            let r = exact_reciprocal(k).unwrap();
            for x in [1.5f64, -3.75, 1e100, 1e-100, 0.1] {
                assert_eq!((x / k).to_bits(), (x * r).to_bits(), "x={x} k={k}");
            }
        }
        assert_eq!(exact_reciprocal(3.0), None);
        assert_eq!(exact_reciprocal(0.0), None);
        // 2^-1074 (subnormal): reciprocal is inf — rejected.
        assert_eq!(exact_reciprocal(f64::from_bits(1)), None);
    }
}
