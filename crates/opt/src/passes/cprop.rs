//! Constant and copy propagation.
//!
//! Both passes use the same dominance-based skeleton: a variable with a
//! single definition can have that definition's right-hand side propagated
//! to any use the definition dominates. For constants the RHS is a
//! constant; for copies it is another variable, which additionally must be
//! single-def itself (so its value cannot change between the copy and the
//! use).

use crate::util::{map_stmt_operands, map_term_operands, single_def_sites};
use peak_ir::{Cfg, Dominators, Function, Operand, Rvalue, Stmt, VarId};
use std::collections::HashMap;

/// What a single-def variable is known to be.
#[derive(Clone, Copy)]
enum Known {
    Const(Operand),
    Copy(VarId),
}

fn propagate(f: &mut Function, do_consts: bool, do_copies: bool) -> bool {
    let cfg = Cfg::build(f);
    let dom = Dominators::build(f, &cfg);
    let sites = single_def_sites(f);
    // Gather facts.
    let mut facts: HashMap<VarId, (Known, peak_ir::BlockId, usize)> = HashMap::new();
    for (&v, &(b, si)) in &sites {
        let Stmt::Assign { rv, .. } = &f.block(b).stmts[si] else { continue };
        match rv {
            Rvalue::Use(c @ Operand::Const(_)) if do_consts => {
                facts.insert(v, (Known::Const(*c), b, si));
            }
            Rvalue::Use(Operand::Var(src)) if do_copies => {
                // src must be single-def or a parameter that is never
                // reassigned (params have an entry def; reassignment would
                // appear in def counts).
                let src_ok = sites.contains_key(src)
                    || (f.params.contains(src) && !any_def(f, *src));
                if src_ok && *src != v {
                    facts.insert(v, (Known::Copy(*src), b, si));
                }
            }
            _ => {}
        }
    }
    if facts.is_empty() {
        return false;
    }
    // For a Copy(src) fact defined at (b, si), uses must also be dominated
    // by src's own def — true automatically since src's def dominates the
    // copy (the copy reads it) and dominance is transitive.
    let mut changed = false;
    for blk in f.block_ids().collect::<Vec<_>>() {
        if !cfg.is_reachable(blk) {
            continue;
        }
        let nstmts = f.block(blk).stmts.len();
        for si in 0..=nstmts {
            let mut subst = |op: &mut Operand| {
                let Operand::Var(v) = op else { return };
                let Some(&(known, db, dsi)) = facts.get(v) else { return };
                let dominated = if db == blk {
                    dsi < si
                } else {
                    dom.dominates(db, blk)
                };
                if !dominated {
                    return;
                }
                *op = match known {
                    Known::Const(c) => c,
                    Known::Copy(src) => Operand::Var(src),
                };
                changed = true;
            };
            if si < nstmts {
                map_stmt_operands(&mut f.block_mut(blk).stmts[si], &mut subst);
            } else {
                map_term_operands(&mut f.block_mut(blk).term, &mut subst);
            }
        }
    }
    changed
}

fn any_def(f: &Function, v: VarId) -> bool {
    f.block_ids()
        .any(|b| f.block(b).stmts.iter().any(|s| s.def() == Some(v)))
}

/// Constant propagation.
pub fn run_const(f: &mut Function) -> bool {
    propagate(f, true, false)
}

/// Copy propagation.
pub fn run_copy(f: &mut Function) -> bool {
    propagate(f, false, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Type, Value};

    #[test]
    fn const_propagates_across_blocks() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let c = b.var("c", Type::I64);
        b.copy(c, 42i64);
        let r = b.var("r", Type::I64);
        b.if_then_else(
            p,
            |b| b.binary_into(r, BinOp::Add, c, 1i64),
            |b| b.binary_into(r, BinOp::Add, c, 2i64),
        );
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(run_const(&mut f));
        // Both arms now add 42 directly.
        for blk in [1usize, 2] {
            match &f.blocks[blk].stmts[0] {
                Stmt::Assign { rv: Rvalue::Binary(BinOp::Add, Operand::Const(Value::I64(42)), _), .. } => {}
                s => panic!("arm {blk} not propagated: {s:?}"),
            }
        }
    }

    #[test]
    fn multi_def_not_propagated() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let c = b.var("c", Type::I64);
        b.copy(c, 1i64);
        b.if_then(p, |b| b.copy(c, 2i64));
        let r = b.binary(BinOp::Add, c, 0i64);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(!run_const(&mut f), "c has two defs; must not propagate");
    }

    #[test]
    fn use_before_def_in_loop_not_propagated() {
        // Loop where x is used in the header before its (single) def in the
        // body — the def does not dominate the use.
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let x = b.var("x", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            b.binary_into(acc, BinOp::Add, acc, x); // use of x (initially 0)
            b.copy(x, 5i64); // single def, but does not dominate the use
        });
        b.ret(Some(acc.into()));
        let mut f = b.finish();
        run_const(&mut f);
        // The use in the body's first stmt must still read the variable.
        match &f.blocks[2].stmts[0] {
            Stmt::Assign { rv: Rvalue::Binary(BinOp::Add, _, Operand::Var(v)), .. } => {
                assert_eq!(*v, x)
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn copy_propagates_param_alias() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let a = b.var("a", Type::I64);
        b.copy(a, p);
        let r = b.binary(BinOp::Add, a, a);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(run_copy(&mut f));
        match &f.blocks[0].stmts[1] {
            Stmt::Assign { rv: Rvalue::Binary(BinOp::Add, Operand::Var(x), Operand::Var(y)), .. } => {
                assert_eq!((*x, *y), (p, p));
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn copy_of_reassigned_param_not_propagated() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let a = b.var("a", Type::I64);
        b.copy(a, p);
        b.binary_into(p, BinOp::Add, p, 1i64); // p changes after the copy
        let r = b.binary(BinOp::Add, a, 0i64);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(!run_copy(&mut f), "a's source p is multi-def");
    }
}
