//! Function inlining: splice small callees into their callers.
//!
//! Two thresholds mirror GCC's split between always-profitable tiny
//! callees (`inline-small`) and the `-finline-functions` heuristic enabled
//! at -O3 (`inline-aggressive`).

use peak_ir::{
    Operand, Program, Rvalue, Stmt, Terminator, VarId,
};
use std::collections::HashMap;

/// Statement budget for `inline-small`.
pub const SMALL_THRESHOLD: usize = 8;
/// Statement budget for `inline-functions`.
pub const AGGRESSIVE_THRESHOLD: usize = 40;
/// Caller growth cap: stop inlining once the caller exceeds this size.
pub const CALLER_SIZE_CAP: usize = 400;

/// Inline eligible calls in `func`. `threshold` selects the callee-size
/// budget. Returns true if anything was inlined.
pub fn run(prog: &mut Program, func: peak_ir::FuncId, threshold: usize) -> bool {
    let mut changed = false;
    // Repeat until no more call sites qualify (inlined bodies may contain
    // further calls).
    loop {
        if prog.func(func).num_stmts() > CALLER_SIZE_CAP {
            return changed;
        }
        let Some((block, si, callee, args, ret_dst)) = find_call_site(prog, func, threshold)
        else {
            return changed;
        };
        inline_site(prog, func, block, si, callee, args, ret_dst);
        changed = true;
    }
}

type CallSite = (peak_ir::BlockId, usize, peak_ir::FuncId, Vec<Operand>, Option<VarId>);

fn find_call_site(
    prog: &Program,
    func: peak_ir::FuncId,
    threshold: usize,
) -> Option<CallSite> {
    let f = prog.func(func);
    for b in f.block_ids() {
        for (si, s) in f.block(b).stmts.iter().enumerate() {
            let (callee, args, ret_dst) = match s {
                Stmt::Assign { dst, rv: Rvalue::Call { func: c, args } } => {
                    (*c, args.clone(), Some(*dst))
                }
                Stmt::CallVoid { func: c, args } => (*c, args.clone(), None),
                _ => continue,
            };
            if callee == func {
                continue; // no self-inlining
            }
            let cf = prog.func(callee);
            if cf.num_stmts() > threshold {
                continue;
            }
            // Callee must not itself call the caller (cheap recursion guard:
            // reject callees containing any call — nested inlining happens
            // naturally when this pass re-runs bottom-up in the pipeline).
            let has_call = cf.block_ids().any(|cb| {
                cf.block(cb).stmts.iter().any(|s| {
                    matches!(
                        s,
                        Stmt::CallVoid { .. } | Stmt::Assign { rv: Rvalue::Call { .. }, .. }
                    )
                })
            });
            if has_call {
                continue;
            }
            return Some((b, si, callee, args, ret_dst));
        }
    }
    None
}

fn inline_site(
    prog: &mut Program,
    func: peak_ir::FuncId,
    block: peak_ir::BlockId,
    si: usize,
    callee: peak_ir::FuncId,
    args: Vec<Operand>,
    ret_dst: Option<VarId>,
) {
    let callee_fn = prog.func(callee).clone();
    let f = prog.func_mut(func);
    // 1. Split the calling block: statements after the call move to `cont`.
    let cont = f.add_block();
    let tail: Vec<Stmt> = f.block_mut(block).stmts.split_off(si + 1);
    f.block_mut(block).stmts.pop(); // remove the call itself
    let old_term = std::mem::replace(&mut f.block_mut(block).term, Terminator::Jump(cont));
    f.block_mut(cont).stmts = tail;
    f.block_mut(cont).term = old_term;
    // 2. Import callee variables.
    let mut var_map: HashMap<VarId, VarId> = HashMap::new();
    for (vi, v) in callee_fn.vars.iter().enumerate() {
        let nv = f.add_var(format!("inl_{}_{}", callee_fn.name, v.name), v.ty);
        var_map.insert(VarId(vi as u32), nv);
    }
    // 3. Parameter binding: copies at the call block's end.
    for (p, a) in callee_fn.params.iter().zip(&args) {
        f.block_mut(block).stmts.push(Stmt::Assign {
            dst: var_map[p],
            rv: Rvalue::Use(*a),
        });
    }
    // 4. Import callee blocks, remapping vars and block ids; returns become
    // (optional) result copy + jump to cont.
    let mut block_map: HashMap<peak_ir::BlockId, peak_ir::BlockId> = HashMap::new();
    for cb in callee_fn.block_ids() {
        block_map.insert(cb, f.add_block());
    }
    for cb in callee_fn.block_ids() {
        let nb = block_map[&cb];
        let mut stmts = callee_fn.block(cb).stmts.clone();
        for s in &mut stmts {
            // Remap defined var.
            if let Stmt::Assign { dst, .. } = s {
                *dst = var_map[dst];
            }
            crate::util::map_stmt_operands(s, &mut |op| {
                if let Operand::Var(v) = op {
                    *op = Operand::Var(var_map[v]);
                }
            });
        }
        let term = match callee_fn.block(cb).term.clone() {
            Terminator::Jump(t) => Terminator::Jump(block_map[&t]),
            Terminator::Branch { mut cond, on_true, on_false } => {
                if let Operand::Var(v) = &mut cond {
                    *v = var_map[v];
                }
                Terminator::Branch {
                    cond,
                    on_true: block_map[&on_true],
                    on_false: block_map[&on_false],
                }
            }
            Terminator::Return(val) => {
                if let (Some(dst), Some(mut v)) = (ret_dst, val) {
                    if let Operand::Var(rv) = &mut v {
                        *rv = var_map[rv];
                    }
                    f.block_mut(nb).stmts.push(Stmt::Assign { dst, rv: Rvalue::Use(v) });
                }
                Terminator::Jump(cont)
            }
        };
        let nbm = f.block_mut(nb);
        let mut imported = std::mem::take(&mut nbm.stmts);
        nbm.stmts = stmts;
        nbm.stmts.append(&mut imported);
        nbm.term = term;
    }
    // 5. Call block now jumps into the inlined entry.
    f.block_mut(block).term = Terminator::Jump(block_map[&callee_fn.entry]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemRef, MemoryImage, Type, Value};

    fn make_prog() -> (Program, peak_ir::FuncId, peak_ir::FuncId) {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 8);
        // callee: clamp(x, lo) = max(x, lo) with a store side effect
        let mut cb = FunctionBuilder::new("clamp", Some(Type::I64));
        let x = cb.param("x", Type::I64);
        let lo = cb.param("lo", Type::I64);
        let r = cb.binary(BinOp::Max, x, lo);
        cb.store(MemRef::global(a, 0i64), r);
        cb.ret(Some(r.into()));
        let callee = prog.add_func(cb.finish());
        // caller: sum of clamp(i, 3) for i in 0..n
        let mut b = FunctionBuilder::new("main", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let i = b.var("i", Type::I64);
        let acc = b.var("acc", Type::I64);
        b.copy(acc, 0i64);
        b.for_loop(i, 0i64, n, 1, |b| {
            let c = b.call(Type::I64, callee, vec![i.into(), 3i64.into()]);
            b.binary_into(acc, BinOp::Add, acc, c);
        });
        b.ret(Some(acc.into()));
        let main = prog.add_func(b.finish());
        (prog, main, callee)
    }

    fn eval(prog: &Program, fid: peak_ir::FuncId, n: i64) -> (Option<Value>, Value) {
        let mut mem = MemoryImage::new(prog);
        let out = Interp::default().run(prog, fid, &[Value::I64(n)], &mut mem).unwrap();
        let a = prog.mem_by_name("a").unwrap();
        (out.ret, mem.load(a, 0))
    }

    #[test]
    fn inlined_call_preserves_value_and_side_effects() {
        let (mut prog, main, _callee) = make_prog();
        let orig = prog.clone();
        assert!(run(&mut prog, main, SMALL_THRESHOLD));
        // No calls remain in main.
        let f = prog.func(main);
        let calls = f
            .block_ids()
            .flat_map(|b| f.block(b).stmts.iter())
            .filter(|s| {
                matches!(s, Stmt::CallVoid { .. } | Stmt::Assign { rv: Rvalue::Call { .. }, .. })
            })
            .count();
        assert_eq!(calls, 0);
        for n in [0i64, 1, 5] {
            assert_eq!(eval(&orig, main, n), eval(&prog, main, n), "n={n}");
        }
        peak_ir::validate_program(&prog).unwrap();
    }

    #[test]
    fn large_callee_needs_aggressive_threshold() {
        let mut prog = Program::new();
        let mut cb = FunctionBuilder::new("big", Some(Type::I64));
        let x = cb.param("x", Type::I64);
        let mut cur = x;
        for _ in 0..(SMALL_THRESHOLD + 2) {
            cur = cb.binary(BinOp::Add, cur, 1i64);
        }
        cb.ret(Some(cur.into()));
        let callee = prog.add_func(cb.finish());
        let mut b = FunctionBuilder::new("main", Some(Type::I64));
        let n = b.param("n", Type::I64);
        let r = b.call(Type::I64, callee, vec![n.into()]);
        b.ret(Some(r.into()));
        let main = prog.add_func(b.finish());
        let mut p1 = prog.clone();
        assert!(!run(&mut p1, main, SMALL_THRESHOLD));
        let mut p2 = prog.clone();
        assert!(run(&mut p2, main, AGGRESSIVE_THRESHOLD));
        let mut m1 = MemoryImage::new(&prog);
        let mut m2 = MemoryImage::new(&p2);
        assert_eq!(
            Interp::default().run(&prog, main, &[Value::I64(7)], &mut m1).unwrap().ret,
            Interp::default().run(&p2, main, &[Value::I64(7)], &mut m2).unwrap().ret,
        );
    }

    #[test]
    fn void_call_inlined() {
        let mut prog = Program::new();
        let a = prog.add_mem("a", Type::I64, 4);
        let mut cb = FunctionBuilder::new("bump", None);
        let k = cb.param("k", Type::I64);
        let old = cb.load(Type::I64, MemRef::global(a, 0i64));
        let newv = cb.binary(BinOp::Add, old, k);
        cb.store(MemRef::global(a, 0i64), newv);
        cb.ret(None);
        let callee = prog.add_func(cb.finish());
        let mut b = FunctionBuilder::new("main", None);
        b.call_void(callee, vec![5i64.into()]);
        b.call_void(callee, vec![7i64.into()]);
        b.ret(None);
        let main = prog.add_func(b.finish());
        let orig = prog.clone();
        assert!(run(&mut prog, main, SMALL_THRESHOLD));
        let am = prog.mem_by_name("a").unwrap();
        let mut m1 = MemoryImage::new(&orig);
        let mut m2 = MemoryImage::new(&prog);
        Interp::default().run(&orig, main, &[], &mut m1).unwrap();
        Interp::default().run(&prog, main, &[], &mut m2).unwrap();
        assert_eq!(m1.load(am, 0), m2.load(am, 0));
        assert_eq!(m2.load(am, 0), Value::I64(12));
        peak_ir::validate_program(&prog).unwrap();
    }

    #[test]
    fn recursive_callee_not_inlined() {
        let mut prog = Program::new();
        // f calls g; g calls f — has_call guard rejects g as a callee.
        let mut gb = FunctionBuilder::new("g", None);
        gb.ret(None);
        let g_placeholder = prog.add_func(gb.finish());
        let mut fb = FunctionBuilder::new("f", None);
        fb.call_void(g_placeholder, vec![]);
        fb.ret(None);
        let f_id = prog.add_func(fb.finish());
        // Rebuild g to call f (mutual recursion).
        let mut gb2 = FunctionBuilder::new("g", None);
        gb2.call_void(f_id, vec![]);
        gb2.ret(None);
        *prog.func_mut(g_placeholder) = gb2.finish();
        // Inlining f: callee g has a call → skipped.
        assert!(!run(&mut prog, f_id, AGGRESSIVE_THRESHOLD));
    }
}
