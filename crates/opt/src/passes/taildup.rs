//! Tail duplication: copy small join blocks into their jump-predecessors,
//! removing a jump per execution and enabling cross-block local cleanups.

use peak_ir::{Cfg, Function, Stmt, Terminator};

/// Maximum statements in a duplicated tail.
const MAX_TAIL_STMTS: usize = 4;

/// Run tail duplication. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    let cfg = Cfg::build(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        let Terminator::Jump(tail) = f.block(b).term else { continue };
        if tail == b {
            continue;
        }
        // Duplicate only real joins (≥2 predecessors) so we shrink jump
        // counts rather than just move code.
        if cfg.preds[tail.index()].len() < 2 {
            continue;
        }
        let tail_blk = f.block(tail);
        if tail_blk.stmts.len() > MAX_TAIL_STMTS {
            continue;
        }
        // Never duplicate instrumentation counters: the duplicate would
        // double-count (MBR correctness, paper §2.3).
        if tail_blk.stmts.iter().any(|s| matches!(s, Stmt::CounterInc { .. })) {
            continue;
        }
        // Avoid duplicating loop headers (their terminator jumps back into
        // a cycle that includes `b`, which would grow code without bound
        // across fixpoint reruns). Cheap check: the tail must not reach `b`
        // directly.
        if f.block(tail).term.successors().any(|s| s == b || s == tail) {
            continue;
        }
        let stmts = tail_blk.stmts.clone();
        let term = tail_blk.term.clone();
        let blk = f.block_mut(b);
        blk.stmts.extend(stmts);
        blk.term = term;
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, Interp, MemoryImage, Program, Type, Value};

    #[test]
    fn join_block_duplicated_into_both_arms() {
        let mut prog = Program::new();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        b.if_then_else(x, |b| b.copy(r, 1i64), |b| b.copy(r, 2i64));
        // join block: r = r * 10; return r
        b.binary_into(r, BinOp::Mul, r, 10i64);
        b.ret(Some(r.into()));
        let fid = prog.add_func(b.finish());
        let mut opt = prog.clone();
        assert!(run(opt.func_mut(fid)));
        // Both arms now end with the multiplied return.
        let f = opt.func(fid);
        for arm in [1usize, 2] {
            assert!(
                matches!(f.blocks[arm].term, Terminator::Return(_)),
                "arm {arm} should return directly"
            );
            assert_eq!(f.blocks[arm].stmts.len(), 2);
        }
        for v in [0i64, 1] {
            let mut m1 = MemoryImage::new(&prog);
            let mut m2 = MemoryImage::new(&opt);
            let r1 = Interp::default().run(&prog, fid, &[Value::I64(v)], &mut m1).unwrap();
            let r2 = Interp::default().run(&opt, fid, &[Value::I64(v)], &mut m2).unwrap();
            assert_eq!(r1.ret, r2.ret);
        }
    }

    #[test]
    fn large_tail_not_duplicated() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        b.if_then_else(x, |b| b.copy(r, 1i64), |b| b.copy(r, 2i64));
        for _ in 0..(MAX_TAIL_STMTS + 1) {
            b.binary_into(r, BinOp::Add, r, 1i64);
        }
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }

    #[test]
    fn counter_block_not_duplicated() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let r = b.var("r", Type::I64);
        b.if_then_else(x, |b| b.copy(r, 1i64), |b| b.copy(r, 2i64));
        b.emit(Stmt::CounterInc { counter: peak_ir::CounterId(0) });
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(!run(&mut f), "duplicating a counter would double-count");
    }

    #[test]
    fn single_pred_tail_untouched() {
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let x = b.param("x", Type::I64);
        let t = b.new_block();
        b.jump(t);
        b.ret(Some(x.into()));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }
}
