//! Local (in-block) common-subexpression elimination, including redundant
//! load elimination with conservative memory invalidation.

use crate::util::{op_key, pure_expr_key, OpKey};
use peak_ir::{Function, MemBase, Operand, PointsTo, Program, Rvalue, Stmt, VarId};
use std::collections::HashMap;

/// Key for an available expression: the structural key plus the generation
/// of every variable operand at record time.
type ExprKey = ((u32, OpKey, OpKey, OpKey), Vec<u32>);

/// Key for an available load: base (region id or pointer var+gen), index
/// operand key + gen.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct LoadKey {
    base: LoadBase,
    index: OpKey,
    index_gen: u32,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum LoadBase {
    Global(u32),
    Ptr(u32, u32), // var, gen
}

/// Run local CSE on every block. Returns true if anything changed.
pub fn run(f: &mut Function, prog: &Program) -> bool {
    let pts = PointsTo::build(f);
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        changed |= run_block(f, prog, &pts, b);
    }
    changed
}

fn operand_gens(rv: &Rvalue, gens: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let mut uses = Vec::new();
    rv.uses(&mut uses);
    for u in uses {
        out.push(gens[u.index()]);
    }
    out
}

fn run_block(f: &mut Function, prog: &Program, pts: &PointsTo, b: peak_ir::BlockId) -> bool {
    let mut gens = vec![0u32; f.num_vars()];
    // value → (holding var, var gen when recorded)
    let mut exprs: HashMap<ExprKey, (VarId, u32)> = HashMap::new();
    let mut loads: HashMap<LoadKey, (VarId, u32, Option<peak_ir::MemId>)> = HashMap::new();
    let mut changed = false;
    let nstmts = f.block(b).stmts.len();
    for si in 0..nstmts {
        // Possibly rewrite this statement first.
        let replacement: Option<Rvalue> = if let Stmt::Assign { rv, .. } = &f.block(b).stmts[si]
        {
            if let Some(k) = pure_expr_key(rv) {
                let key = (k, operand_gens(rv, &gens));
                exprs.get(&key).and_then(|&(v, g)| {
                    (gens[v.index()] == g).then_some(Rvalue::Use(Operand::Var(v)))
                })
            } else if let Rvalue::Load(mr) = rv {
                load_key(mr, &gens).and_then(|k| {
                    loads.get(&k).and_then(|&(v, g, _)| {
                        (gens[v.index()] == g).then_some(Rvalue::Use(Operand::Var(v)))
                    })
                })
            } else {
                None
            }
        } else {
            None
        };
        if let Some(nrv) = replacement {
            let Stmt::Assign { rv, .. } = &mut f.block_mut(b).stmts[si] else { unreachable!() };
            *rv = nrv;
            changed = true;
        }
        // Now update state from the (possibly rewritten) statement.
        let s = &f.block(b).stmts[si];
        match s {
            Stmt::Assign { dst, rv } => {
                let record_expr = pure_expr_key(rv).map(|k| (k, operand_gens(rv, &gens)));
                let record_load = if let Rvalue::Load(mr) = rv {
                    load_key(mr, &gens).map(|k| (k, load_region(mr, pts, prog)))
                } else {
                    None
                };
                if matches!(rv, Rvalue::Call { .. }) {
                    loads.clear();
                }
                gens[dst.index()] += 1;
                let g = gens[dst.index()];
                if let Some(key) = record_expr {
                    exprs.insert(key, (*dst, g));
                }
                if let Some((key, region)) = record_load {
                    loads.insert(key, (*dst, g, region));
                }
            }
            Stmt::Store { dst, .. } => {
                invalidate_loads(&mut loads, load_region(dst, pts, prog));
            }
            Stmt::CallVoid { .. } => loads.clear(),
            Stmt::Prefetch { .. } | Stmt::CounterInc { .. } => {}
        }
    }
    changed
}

fn load_key(mr: &peak_ir::MemRef, gens: &[u32]) -> Option<LoadKey> {
    let base = match mr.base {
        MemBase::Global(m) => LoadBase::Global(m.0),
        MemBase::Ptr(p) => LoadBase::Ptr(p.0, gens[p.index()]),
    };
    let index_gen = match mr.index {
        Operand::Var(v) => gens[v.index()],
        Operand::Const(_) => 0,
    };
    Some(LoadKey { base, index: op_key(&mr.index), index_gen })
}

/// Region a memref certainly refers to, `None` when unknown (⊤ pointer).
fn load_region(
    mr: &peak_ir::MemRef,
    pts: &PointsTo,
    prog: &Program,
) -> Option<peak_ir::MemId> {
    match mr.base {
        MemBase::Global(m) => Some(m),
        MemBase::Ptr(p) => {
            if pts.is_precise(p) {
                let regions = pts.may_point_to(p, prog.mems.len());
                if regions.len() == 1 {
                    return Some(regions[0]);
                }
            }
            None
        }
    }
}

fn invalidate_loads(
    loads: &mut HashMap<LoadKey, (VarId, u32, Option<peak_ir::MemId>)>,
    store_region: Option<peak_ir::MemId>,
) {
    match store_region {
        // Store to a known region: drop loads of that region and loads
        // whose region is unknown.
        Some(m) => loads.retain(|_, (_, _, r)| matches!(r, Some(lr) if *lr != m)),
        // Store through an unknown pointer: drop everything.
        None => loads.clear(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peak_ir::{BinOp, FunctionBuilder, MemRef, Type};

    fn prog1() -> Program {
        let mut p = Program::new();
        p.add_mem("a", Type::I64, 16);
        p.add_mem("b", Type::I64, 16);
        p
    }

    #[test]
    fn redundant_pure_expr_reused() {
        let prog = prog1();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let x = b.binary(BinOp::Mul, p, p);
        let y = b.binary(BinOp::Mul, p, p);
        let r = b.binary(BinOp::Add, x, y);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(run(&mut f, &prog));
        assert!(matches!(
            &f.blocks[0].stmts[1],
            Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == x
        ));
        let _ = y;
    }

    #[test]
    fn operand_redefinition_blocks_reuse() {
        let prog = prog1();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let p = b.param("p", Type::I64);
        let _x = b.binary(BinOp::Mul, p, p);
        b.binary_into(p, BinOp::Add, p, 1i64);
        let _y = b.binary(BinOp::Mul, p, p); // different value now
        b.ret(Some(p.into()));
        let mut f = b.finish();
        assert!(!run(&mut f, &prog));
    }

    #[test]
    fn redundant_load_eliminated() {
        let prog = prog1();
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let i = b.param("i", Type::I64);
        let x = b.load(Type::I64, MemRef::global(a, i));
        let y = b.load(Type::I64, MemRef::global(a, i));
        let r = b.binary(BinOp::Add, x, y);
        b.ret(Some(r.into()));
        let mut f = b.finish();
        assert!(run(&mut f, &prog));
        assert!(matches!(
            &f.blocks[0].stmts[1],
            Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == x
        ));
    }

    #[test]
    fn store_to_same_region_invalidates() {
        let prog = prog1();
        let a = prog.mem_by_name("a").unwrap();
        let mut b = FunctionBuilder::new("f", Some(Type::I64));
        let i = b.param("i", Type::I64);
        let _x = b.load(Type::I64, MemRef::global(a, i));
        b.store(MemRef::global(a, 0i64), 9i64);
        let _y = b.load(Type::I64, MemRef::global(a, i)); // may be the stored slot
        b.ret(Some(i.into()));
        let mut f = b.finish();
        assert!(!run(&mut f, &prog));
    }

    #[test]
    fn store_to_other_region_preserves_load() {
        let prog = prog1();
        let a = prog.mem_by_name("a").unwrap();
        let bm = prog.mem_by_name("b").unwrap();
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let i = fb.param("i", Type::I64);
        let x = fb.load(Type::I64, MemRef::global(a, i));
        fb.store(MemRef::global(bm, 0i64), 9i64);
        let _y = fb.load(Type::I64, MemRef::global(a, i));
        fb.ret(Some(i.into()));
        let mut f = fb.finish();
        assert!(run(&mut f, &prog), "disjoint regions: load still available");
        assert!(matches!(
            &f.blocks[0].stmts[2],
            Stmt::Assign { rv: Rvalue::Use(Operand::Var(v)), .. } if *v == x
        ));
    }

    #[test]
    fn call_invalidates_loads() {
        let mut prog = prog1();
        let mut cb = FunctionBuilder::new("g", None);
        cb.ret(None);
        let callee = prog.add_func(cb.finish());
        let a = prog.mem_by_name("a").unwrap();
        let mut fb = FunctionBuilder::new("f", Some(Type::I64));
        let i = fb.param("i", Type::I64);
        let _x = fb.load(Type::I64, MemRef::global(a, i));
        fb.call_void(callee, vec![]);
        let _y = fb.load(Type::I64, MemRef::global(a, i));
        fb.ret(Some(i.into()));
        let mut f = fb.finish();
        assert!(!run(&mut f, &prog));
    }
}
